//! Skyline (profile) storage and LDLᵀ factorization — the other classic
//! sparse-direct scheme of the paper's era (Bathe's COLSOL). Where band
//! storage keeps a fixed-width diagonal strip, the skyline keeps each
//! column only from its first nonzero down to the diagonal, so a good
//! renumbering pays off through the *profile* even when the worst-case
//! bandwidth is stuck (reverse Cuthill–McKee's specialty).

use crate::FemError;

/// A symmetric matrix in skyline storage: column `j` holds rows
/// `first_row[j] ..= j`.
///
/// # Examples
///
/// ```
/// use cafemio_fem::SkylineMatrix;
/// // Tridiagonal 3×3: each column reaches one above the diagonal.
/// let mut a = SkylineMatrix::new(&[0, 0, 1]);
/// a.add(0, 0, 2.0);
/// a.add(1, 1, 2.0);
/// a.add(2, 2, 2.0);
/// a.add(0, 1, -1.0);
/// a.add(1, 2, -1.0);
/// let x = a.solve(&[1.0, 0.0, 1.0]).unwrap();
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SkylineMatrix {
    n: usize,
    first_row: Vec<usize>,
    /// `columns[j][k]` is entry `(first_row[j] + k, j)`.
    columns: Vec<Vec<f64>>,
}

impl SkylineMatrix {
    /// Creates a zero matrix with the given column profile
    /// (`first_row[j]` = topmost stored row of column `j`).
    ///
    /// # Panics
    ///
    /// Panics when the profile is empty or `first_row[j] > j`.
    pub fn new(first_row: &[usize]) -> SkylineMatrix {
        assert!(!first_row.is_empty(), "matrix order must be positive");
        for (j, &f) in first_row.iter().enumerate() {
            assert!(f <= j, "column {j} profile {f} reaches below the diagonal");
        }
        let columns = first_row
            .iter()
            .enumerate()
            .map(|(j, &f)| vec![0.0; j - f + 1])
            .collect();
        SkylineMatrix {
            n: first_row.len(),
            first_row: first_row.to_vec(),
            columns,
        }
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Number of stored entries — the *profile*, the storage metric RCM
    /// minimizes.
    pub fn stored_entries(&self) -> usize {
        self.columns.iter().map(Vec::len).sum()
    }

    /// Adds `value` at `(i, j)` (symmetric single entry).
    ///
    /// # Panics
    ///
    /// Panics when the entry lies above the column's profile.
    pub fn add(&mut self, i: usize, j: usize, value: f64) {
        let (row, col) = if j >= i { (i, j) } else { (j, i) };
        assert!(col < self.n, "index out of range");
        let f = self.first_row[col];
        assert!(
            row >= f,
            "entry ({i}, {j}) above the skyline of column {col}"
        );
        self.columns[col][row - f] += value;
    }

    /// Reads `(i, j)` (zero above the skyline).
    ///
    /// # Panics
    ///
    /// Panics when out of the matrix.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (row, col) = if j >= i { (i, j) } else { (j, i) };
        assert!(col < self.n, "index out of range");
        let f = self.first_row[col];
        if row < f {
            0.0
        } else {
            self.columns[col][row - f]
        }
    }

    /// Zeroes row and column `k`, sets the diagonal to 1, and returns the
    /// former couplings (for constraint handling, mirroring
    /// [`BandMatrix::constrain`](crate::BandMatrix::constrain)).
    pub fn constrain(&mut self, k: usize) -> Vec<(usize, f64)> {
        assert!(k < self.n, "index out of range");
        let mut column = Vec::new();
        // Entries above the diagonal in column k.
        let f = self.first_row[k];
        for row in f..k {
            let v = self.columns[k][row - f];
            if v != 0.0 {
                column.push((row, v));
                self.columns[k][row - f] = 0.0;
            }
        }
        // Entries right of the diagonal: row k of later columns.
        for col in k + 1..self.n {
            let fc = self.first_row[col];
            if k >= fc {
                let v = self.columns[col][k - fc];
                if v != 0.0 {
                    column.push((col, v));
                    self.columns[col][k - fc] = 0.0;
                }
            }
        }
        let fk = self.first_row[k];
        self.columns[k][k - fk] = 1.0;
        column
    }

    /// Factorizes (LDLᵀ, Bathe's COLSOL) and solves, consuming the
    /// matrix.
    ///
    /// # Errors
    ///
    /// [`FemError::SingularMatrix`] when a pivot vanishes or turns
    /// negative (the structural matrices here are positive definite),
    /// [`FemError::NonFinite`] when a NaN or infinity reaches a pivot,
    /// and [`FemError::RhsLength`] when `b` has the wrong length.
    pub fn solve(mut self, b: &[f64]) -> Result<Vec<f64>, FemError> {
        if b.len() != self.n {
            return Err(FemError::RhsLength {
                expected: self.n,
                actual: b.len(),
            });
        }
        self.factorize()?;
        Ok(self.solve_factored(b))
    }

    /// In-place LDLᵀ: columns end up holding `l_ij` above the diagonal
    /// and `d_j` on it.
    fn factorize(&mut self) -> Result<(), FemError> {
        for j in 0..self.n {
            let fj = self.first_row[j];
            // Reduce the off-diagonal entries g_ij (top-down), then the
            // diagonal.
            for i in fj..j {
                let fi = self.first_row[i];
                let start = fi.max(fj);
                let mut sum = self.columns[j][i - fj];
                for k in start..i {
                    // l_ki (already reduced) * g_kj (already reduced,
                    // still unscaled in column j storage).
                    sum -= self.columns[i][k - fi] * self.columns[j][k - fj];
                }
                self.columns[j][i - fj] = sum; // g_ij
            }
            // d_j = a_jj − Σ g_ij² / d_i, and convert g to l = g / d.
            let mut diag = self.columns[j][j - fj];
            for i in fj..j {
                let fi = self.first_row[i];
                let d_i = self.columns[i][i - fi];
                let g = self.columns[j][i - fj];
                let l = g / d_i;
                diag -= g * l;
                self.columns[j][i - fj] = l;
            }
            // NaN fails every comparison, so test finiteness explicitly
            // rather than letting a poisoned pivot sail past `<= 0.0`.
            if !diag.is_finite() {
                return Err(FemError::NonFinite { equation: j });
            }
            if diag <= 0.0 {
                return Err(FemError::SingularMatrix { equation: j });
            }
            self.columns[j][j - fj] = diag;
        }
        Ok(())
    }

    fn solve_factored(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        // Forward: L z = b.
        let mut x = b.to_vec();
        for j in 0..n {
            let fj = self.first_row[j];
            let mut sum = x[j];
            for i in fj..j {
                sum -= self.columns[j][i - fj] * x[i];
            }
            x[j] = sum;
        }
        // Diagonal: z / d.
        for j in 0..n {
            let fj = self.first_row[j];
            x[j] /= self.columns[j][j - fj];
        }
        // Back: Lᵀ y = z (column sweep).
        for j in (0..n).rev() {
            let fj = self.first_row[j];
            for i in fj..j {
                x[i] -= self.columns[j][i - fj] * x[j];
            }
        }
        x
    }
}

/// Computes the dof skyline profile of a structural mesh (two dofs per
/// node): `first_row[dof] = min` coupled dof.
pub fn dof_profile(mesh: &cafemio_mesh::TriMesh) -> Vec<usize> {
    let ndof = mesh.node_count() * 2;
    let mut first: Vec<usize> = (0..ndof).collect();
    for (_, el) in mesh.elements() {
        let min_dof = el
            .nodes
            .iter()
            .map(|n| 2 * n.index())
            .min()
            // invariant: a triangle always has exactly three nodes.
            .expect("elements have nodes");
        for node in el.nodes {
            for dof in [2 * node.index(), 2 * node.index() + 1] {
                first[dof] = first[dof].min(min_dof);
            }
        }
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseMatrix;

    fn full_profile(n: usize) -> Vec<usize> {
        vec![0; n]
    }

    #[test]
    fn agrees_with_dense_on_random_spd() {
        let n = 25;
        let mut seed = 11u64;
        let mut rand = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(7);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut sky = SkylineMatrix::new(&full_profile(n));
        let mut dense = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = if i == j { 20.0 + rand().abs() } else { rand() };
                sky.add(i, j, v);
                dense[(i, j)] = sky.get(i, j);
                dense[(j, i)] = sky.get(i, j);
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let x_sky = sky.solve(&b).unwrap();
        let x_dense = dense.solve(&b).unwrap();
        for i in 0..n {
            assert!((x_sky[i] - x_dense[i]).abs() < 1e-9, "at {i}");
        }
    }

    #[test]
    fn ragged_profile_solves() {
        // Arrow-like matrix: last column is full, others tridiagonal.
        let n = 12;
        let mut first: Vec<usize> = (0..n).map(|j: usize| j.saturating_sub(1)).collect();
        first[n - 1] = 0;
        let mut sky = SkylineMatrix::new(&first);
        let mut dense = DenseMatrix::zeros(n, n);
        for j in 0..n {
            sky.add(j, j, 10.0);
            dense[(j, j)] = 10.0;
            if j > 0 && j < n - 1 {
                sky.add(j - 1, j, -2.0);
                dense[(j - 1, j)] = -2.0;
                dense[(j, j - 1)] = -2.0;
            }
        }
        for i in 0..n - 1 {
            sky.add(i, n - 1, -1.0);
            dense[(i, n - 1)] += -1.0;
            dense[(n - 1, i)] += -1.0;
        }
        let b = vec![1.0; n];
        let x_sky = sky.solve(&b).unwrap();
        let x_dense = dense.solve(&b).unwrap();
        for i in 0..n {
            assert!((x_sky[i] - x_dense[i]).abs() < 1e-9, "at {i}");
        }
    }

    #[test]
    fn above_skyline_is_zero_and_write_panics() {
        let sky = SkylineMatrix::new(&[0, 1, 2]); // diagonal only beyond col 0
        assert_eq!(sky.get(0, 2), 0.0);
        let result = std::panic::catch_unwind(move || {
            let mut sky = SkylineMatrix::new(&[0, 1, 2]);
            sky.add(0, 2, 1.0);
        });
        assert!(result.is_err());
    }

    #[test]
    fn indefinite_rejected() {
        let mut sky = SkylineMatrix::new(&full_profile(2));
        sky.add(0, 0, 1.0);
        sky.add(1, 1, -2.0);
        assert!(matches!(
            sky.solve(&[1.0, 1.0]),
            Err(FemError::SingularMatrix { equation: 1 })
        ));
    }

    #[test]
    fn constrain_matches_band_semantics() {
        let mut sky = SkylineMatrix::new(&[0, 0, 1]);
        sky.add(0, 0, 2.0);
        sky.add(1, 1, 2.0);
        sky.add(2, 2, 2.0);
        sky.add(0, 1, -1.0);
        sky.add(1, 2, -1.0);
        let column = sky.constrain(1);
        assert_eq!(sky.get(1, 1), 1.0);
        assert_eq!(sky.get(0, 1), 0.0);
        assert_eq!(sky.get(1, 2), 0.0);
        assert_eq!(column.len(), 2);
    }

    #[test]
    fn profile_smaller_than_band_for_ragged_meshes() {
        use cafemio_geom::Point;
        use cafemio_mesh::{BoundaryKind, TriMesh};
        // A mesh with one long-range element (simulating a tie): the band
        // must cover the worst pair everywhere, the skyline only in the
        // affected columns.
        let mut mesh = TriMesh::new();
        let ids: Vec<_> = (0..10)
            .map(|i| {
                mesh.add_node(
                    Point::new(i as f64, (i % 2) as f64),
                    BoundaryKind::Boundary,
                )
            })
            .collect();
        for i in 0..8 {
            mesh.add_element([ids[i], ids[i + 1], ids[i + 2]]).unwrap();
        }
        let profile = dof_profile(&mesh);
        let sky = SkylineMatrix::new(&profile);
        let bw = 2 * mesh.bandwidth() + 1;
        let band = crate::BandMatrix::new(20, bw);
        assert!(sky.stored_entries() <= band.stored_entries());
    }
}

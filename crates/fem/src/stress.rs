//! Stress recovery: element stresses and nodal averaging.
//!
//! OSPL plots *nodal* values ("Output from a finite element analysis
//! generally includes, at every node, one or more … values of stress"),
//! so after computing the constant element stresses this module averages
//! them to the nodes with element-area weights — the standard practice of
//! the Reference-1 era codes whose output the paper's Figures 13 and 15–18
//! contour.

use cafemio_mesh::{ElementId, NodalField, NodeId};

use crate::element::element_stiffness;
use crate::model::{AnalysisKind, FemModel, Solution};
use crate::FemError;

/// The stress state of one constant-strain element.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ElementStress {
    /// Radial stress σr (σx in plane problems).
    pub radial: f64,
    /// Axial / meridional stress σz (σy in plane problems).
    pub meridional: f64,
    /// Circumferential (hoop) stress σθ (out-of-plane σz in plane
    /// problems: zero for plane stress, ν(σx+σy)-like for plane strain).
    pub circumferential: f64,
    /// In-plane shear τrz (τxy).
    pub shear: f64,
}

impl ElementStress {
    /// Von Mises effective stress — the quantity contoured in the paper's
    /// Figure 13 ("CONTOUR PLOT * EFFECTIVE STRESS").
    pub fn effective(&self) -> f64 {
        let (sr, sz, st, t) = (
            self.radial,
            self.meridional,
            self.circumferential,
            self.shear,
        );
        (0.5 * ((sr - sz).powi(2) + (sz - st).powi(2) + (st - sr).powi(2)) + 3.0 * t * t).sqrt()
    }
}

/// Per-element stresses plus their nodal averages, packaged as the
/// [`NodalField`]s OSPL consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct StressField {
    element_stresses: Vec<ElementStress>,
    nodal: Vec<ElementStress>,
}

impl StressField {
    /// Recovers stresses for a solved model.
    ///
    /// # Errors
    ///
    /// Material/element errors as in assembly (the same matrices are
    /// rebuilt for recovery).
    pub fn compute(model: &FemModel, solution: &Solution) -> Result<StressField, FemError> {
        let _span = cafemio_instrument::span("fem.stress_recovery");
        let mesh = model.mesh();
        let mut element_stresses = Vec::with_capacity(mesh.element_count());
        let mut nodal_acc = vec![(ElementStress::default(), 0.0f64); mesh.node_count()];
        for (id, el) in mesh.elements() {
            let material = model.element_material(id);
            let d = match model.kind() {
                AnalysisKind::PlaneStress { .. } => material.d_plane_stress()?,
                AnalysisKind::PlaneStrain => material.d_plane_strain()?,
                AnalysisKind::Axisymmetric => material.d_axisymmetric()?,
            };
            let tri = mesh.triangle(id);
            let matrices =
                element_stiffness(&tri, &d, model.kind()).map_err(|e| e.for_element(id.index()))?;
            let mut u = [0.0; 6];
            for (local, node) in el.nodes.iter().enumerate() {
                let (ux, uy) = solution.displacement(*node);
                u[2 * local] = ux;
                u[2 * local + 1] = uy;
            }
            let mut strain = matrices.b.mul_vec(&u);
            // Thermal loading: stress comes from the *mechanical* strain,
            // ε − ε₀, so free expansion is stress-free.
            if let Some(thermal) = model.thermal_load() {
                let initial = thermal.initial_strain(
                    [
                        el.nodes[0].index(),
                        el.nodes[1].index(),
                        el.nodes[2].index(),
                    ],
                    model.kind(),
                    &material,
                );
                for (s, e0) in strain.iter_mut().zip(&initial) {
                    *s -= e0;
                }
            }
            let stress_vec = d.mul_vec(&strain);
            let stress = match model.kind() {
                AnalysisKind::PlaneStress { .. } => ElementStress {
                    radial: stress_vec[0],
                    meridional: stress_vec[1],
                    circumferential: 0.0,
                    shear: stress_vec[2],
                },
                AnalysisKind::PlaneStrain => {
                    // Out-of-plane normal stress from the 4×4 law with
                    // εθ = 0.
                    let d4 = material.d_axisymmetric()?;
                    let s_theta = d4[(2, 0)] * strain[0] + d4[(2, 1)] * strain[1];
                    ElementStress {
                        radial: stress_vec[0],
                        meridional: stress_vec[1],
                        circumferential: s_theta,
                        shear: stress_vec[2],
                    }
                }
                AnalysisKind::Axisymmetric => ElementStress {
                    radial: stress_vec[0],
                    meridional: stress_vec[1],
                    circumferential: stress_vec[2],
                    shear: stress_vec[3],
                },
            };
            element_stresses.push(stress);
            let weight = tri.area();
            for node in el.nodes {
                let (acc, w) = &mut nodal_acc[node.index()];
                acc.radial += stress.radial * weight;
                acc.meridional += stress.meridional * weight;
                acc.circumferential += stress.circumferential * weight;
                acc.shear += stress.shear * weight;
                *w += weight;
            }
        }
        let nodal = nodal_acc
            .into_iter()
            .map(|(acc, w)| {
                if w > 0.0 {
                    ElementStress {
                        radial: acc.radial / w,
                        meridional: acc.meridional / w,
                        circumferential: acc.circumferential / w,
                        shear: acc.shear / w,
                    }
                } else {
                    ElementStress::default()
                }
            })
            .collect();
        Ok(StressField {
            element_stresses,
            nodal,
        })
    }

    /// The constant stress of one element.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn element(&self, id: ElementId) -> ElementStress {
        self.element_stresses[id.index()]
    }

    /// The averaged stress at one node.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn node(&self, id: NodeId) -> ElementStress {
        self.nodal[id.index()]
    }

    /// Nodal radial stress field (`σr` / `σx`).
    pub fn radial(&self) -> NodalField {
        self.field("RADIAL STRESS", |s| s.radial)
    }

    /// Nodal meridional / axial stress field (`σz` / `σy`).
    pub fn meridional(&self) -> NodalField {
        self.field("MERIDIONAL STRESS", |s| s.meridional)
    }

    /// Nodal circumferential (hoop) stress field.
    pub fn circumferential(&self) -> NodalField {
        self.field("CIRCUMFERENTIAL STRESS", |s| s.circumferential)
    }

    /// Nodal in-plane shear stress field.
    pub fn shear(&self) -> NodalField {
        self.field("SHEAR STRESS", |s| s.shear)
    }

    /// Nodal von Mises effective stress field.
    pub fn effective(&self) -> NodalField {
        self.field("EFFECTIVE STRESS", |s| s.effective())
    }

    fn field<F: Fn(&ElementStress) -> f64>(&self, name: &str, f: F) -> NodalField {
        NodalField::new(name, self.nodal.iter().map(f).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Material;
    use cafemio_geom::Point;
    use cafemio_mesh::{BoundaryKind, TriMesh};

    fn tension_strip() -> (FemModel, Solution) {
        // 2×1 strip of 4 elements under uniform σx = 1000 (plane stress,
        // t = 1).
        let mut mesh = TriMesh::new();
        let mut ids = Vec::new();
        for j in 0..=1 {
            for i in 0..=2 {
                ids.push(mesh.add_node(
                    Point::new(i as f64, j as f64),
                    BoundaryKind::Boundary,
                ));
            }
        }
        let at = |i: usize, j: usize| ids[j * 3 + i];
        for i in 0..2 {
            mesh.add_element([at(i, 0), at(i + 1, 0), at(i + 1, 1)]).unwrap();
            mesh.add_element([at(i, 0), at(i + 1, 1), at(i, 1)]).unwrap();
        }
        let mut model = FemModel::new(
            mesh,
            AnalysisKind::PlaneStress { thickness: 1.0 },
            Material::isotropic(1.0e7, 0.3),
        );
        model.fix_x(at(0, 0));
        model.fix_x(at(0, 1));
        model.fix_y(at(0, 0));
        let sigma = 1000.0;
        model.add_force(at(2, 0), sigma * 0.5, 0.0);
        model.add_force(at(2, 1), sigma * 0.5, 0.0);
        let solution = model.solve().unwrap();
        (model, solution)
    }

    #[test]
    fn uniform_tension_recovers_exact_stress() {
        let (model, solution) = tension_strip();
        let stresses = StressField::compute(&model, &solution).unwrap();
        for (id, _) in model.mesh().elements() {
            let s = stresses.element(id);
            assert!((s.radial - 1000.0).abs() < 1e-6, "σx in {id}");
            assert!(s.meridional.abs() < 1e-6);
            assert!(s.shear.abs() < 1e-6);
            assert_eq!(s.circumferential, 0.0);
        }
        // Nodal averages equal the constant element value.
        for (id, _) in model.mesh().nodes() {
            assert!((stresses.node(id).radial - 1000.0).abs() < 1e-6);
        }
    }

    #[test]
    fn effective_stress_of_uniaxial_state() {
        let s = ElementStress {
            radial: 1000.0,
            meridional: 0.0,
            circumferential: 0.0,
            shear: 0.0,
        };
        assert!((s.effective() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn effective_stress_of_pure_shear() {
        let s = ElementStress {
            radial: 0.0,
            meridional: 0.0,
            circumferential: 0.0,
            shear: 100.0,
        };
        assert!((s.effective() - 100.0 * 3.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn hydrostatic_state_has_zero_effective() {
        let s = ElementStress {
            radial: -500.0,
            meridional: -500.0,
            circumferential: -500.0,
            shear: 0.0,
        };
        assert!(s.effective().abs() < 1e-9);
    }

    #[test]
    fn fields_named_for_plot_titles() {
        let (model, solution) = tension_strip();
        let stresses = StressField::compute(&model, &solution).unwrap();
        assert_eq!(stresses.effective().name(), "EFFECTIVE STRESS");
        assert_eq!(
            stresses.circumferential().name(),
            "CIRCUMFERENTIAL STRESS"
        );
        assert_eq!(stresses.effective().len(), model.mesh().node_count());
    }

    #[test]
    fn plane_strain_hoop_stress_nonzero() {
        // Same strip but plane strain: σθ = ν(σx + σy) ≠ 0.
        let (model, _) = tension_strip();
        let mut pe_model = FemModel::new(
            model.mesh().clone(),
            AnalysisKind::PlaneStrain,
            Material::isotropic(1.0e7, 0.3),
        );
        pe_model.fix_x(NodeId(0));
        pe_model.fix_x(NodeId(3));
        pe_model.fix_y(NodeId(0));
        pe_model.add_force(NodeId(2), 500.0, 0.0);
        pe_model.add_force(NodeId(5), 500.0, 0.0);
        let solution = pe_model.solve().unwrap();
        let stresses = StressField::compute(&pe_model, &solution).unwrap();
        let s = stresses.element(ElementId(0));
        let expected = 0.3 * (s.radial + s.meridional);
        assert!((s.circumferential - expected).abs() < 1e-6);
        assert!(s.circumferential.abs() > 1.0);
    }
}

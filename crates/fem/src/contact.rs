//! Unilateral contact by active-set iteration.
//!
//! Figure 13 of the report is titled "DSSV BOTTOM HATCH MODIFIED FOR
//! CONTACT. SECOND IDEALIZATION" — the Reference-1 analysis handled
//! hatch-to-seat contact, and its captions count load "INCREMENT"s. The
//! classic linear-era treatment is the active-set method implemented
//! here: a frictionless rigid support under selected nodes that can push
//! but never pull, found by iterating the set of engaged supports.

use cafemio_mesh::NodeId;

use crate::model::{FemModel, Solution};
use crate::FemError;

/// Tolerance on penetrations and tensile reactions when updating the
/// active set.
const CONTACT_TOL: f64 = 1e-9;

/// One candidate contact: a rigid frictionless support below `node`,
/// `gap` away in the −y direction (the node may move down by at most
/// `gap`, and the support can only push back upward).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactSupport {
    /// The supported node.
    pub node: NodeId,
    /// Initial clearance (≥ 0; zero means initially touching).
    pub gap: f64,
}

impl ContactSupport {
    /// A support touching the node at rest.
    pub fn touching(node: NodeId) -> ContactSupport {
        ContactSupport { node, gap: 0.0 }
    }
}

/// The converged contact solution.
#[derive(Debug, Clone)]
pub struct ContactResult {
    /// The displacement solution with the final active set imposed.
    pub solution: Solution,
    /// Which candidate supports ended up engaged.
    pub active: Vec<bool>,
    /// Active-set iterations used.
    pub iterations: usize,
}

impl ContactResult {
    /// Number of engaged supports.
    pub fn engaged(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }
}

/// Solves `model` with unilateral vertical supports, iterating the
/// active set until no support penetrates and none pulls.
///
/// The base `model` carries all ordinary loads and bilateral constraints;
/// the candidate supports are applied on top. Up to `max_iterations`
/// active-set updates are attempted (each costs one linear solve).
///
/// # Errors
///
/// Solver errors from the inner solves (the base model must be
/// well-posed at least once the supports engage), or
/// [`FemError::NoConvergence`] when the active set keeps changing past
/// the iteration budget.
///
/// # Examples
///
/// See `contact::tests::beam_lifts_off_one_support`.
pub fn solve_with_contact(
    model: &FemModel,
    supports: &[ContactSupport],
    max_iterations: usize,
) -> Result<ContactResult, FemError> {
    let mut active = vec![false; supports.len()];
    for iteration in 1..=max_iterations {
        // Impose the engaged supports as prescribed displacements.
        let mut trial = model.clone();
        for (support, engaged) in supports.iter().zip(&active) {
            if *engaged {
                trial.prescribe_y(support.node, -support.gap);
            }
        }
        let solution = match trial.solve() {
            Ok(solution) => solution,
            Err(e) => {
                // An under-constrained trial (no supports engaged yet on a
                // floating body) is legal mid-iteration: engage the next
                // candidate and retry.
                if let Some(idx) = active.iter().position(|a| !a) {
                    active[idx] = true;
                    continue;
                }
                return Err(e);
            }
        };
        let reactions = trial.reactions(&solution)?;
        let mut changed = false;
        for (idx, support) in supports.iter().enumerate() {
            let dof_y = 2 * support.node.index() + 1;
            if active[idx] {
                // Engaged support must push up (+y); release if pulling.
                if reactions[dof_y] < -CONTACT_TOL {
                    active[idx] = false;
                    changed = true;
                }
            } else {
                // Disengaged node must not penetrate the support.
                let v = solution.displacement(support.node).1;
                if v < -support.gap - CONTACT_TOL {
                    active[idx] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            return Ok(ContactResult {
                solution,
                active,
                iterations: iteration,
            });
        }
    }
    Err(FemError::NoConvergence {
        iterations: max_iterations,
        what: "contact active set",
    })
}

/// One step of an incremental contact solution.
#[derive(Debug, Clone)]
pub struct ContactIncrement {
    /// One-based increment number (as the OSPL captions print it).
    pub number: usize,
    /// Load factor applied (`number / total`).
    pub factor: f64,
    /// The converged contact state at this load level.
    pub result: ContactResult,
}

/// Solves the model at `increments` proportional load levels
/// (`1/n, 2/n, …, 1`), re-converging the contact active set at each —
/// the load-increment sweep behind captions like "EFFECTIVE STRESS *
/// INCREMENT NUMBER 100". With contact in play the active set can change
/// between increments, making the response genuinely piecewise linear.
///
/// # Errors
///
/// As for [`solve_with_contact`]; `increments` must be at least 1 or
/// [`FemError::NoConvergence`] is returned immediately.
pub fn solve_contact_increments(
    model: &FemModel,
    supports: &[ContactSupport],
    increments: usize,
    max_iterations_each: usize,
) -> Result<Vec<ContactIncrement>, FemError> {
    if increments == 0 {
        return Err(FemError::NoConvergence {
            iterations: 0,
            what: "zero-increment schedule",
        });
    }
    let mut out = Vec::with_capacity(increments);
    for number in 1..=increments {
        let factor = number as f64 / increments as f64;
        let scaled = model.with_load_factor(factor);
        let result = solve_with_contact(&scaled, supports, max_iterations_each)?;
        out.push(ContactIncrement {
            number,
            factor,
            result,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalysisKind, Material};
    use cafemio_geom::Point;
    use cafemio_mesh::{BoundaryKind, TriMesh};

    /// A slender horizontal beam, 2 rows of elements.
    fn beam(nx: usize) -> TriMesh {
        let mut mesh = TriMesh::new();
        let mut ids = Vec::new();
        for j in 0..=1 {
            for i in 0..=nx {
                ids.push(mesh.add_node(
                    Point::new(i as f64, j as f64 * 0.5),
                    BoundaryKind::Boundary,
                ));
            }
        }
        let at = |i: usize, j: usize| ids[j * (nx + 1) + i];
        for i in 0..nx {
            mesh.add_element([at(i, 0), at(i + 1, 0), at(i + 1, 1)]).unwrap();
            mesh.add_element([at(i, 0), at(i + 1, 1), at(i, 1)]).unwrap();
        }
        mesh
    }

    fn base_model(mesh: &TriMesh) -> FemModel {
        let mut model = FemModel::new(
            mesh.clone(),
            AnalysisKind::PlaneStress { thickness: 1.0 },
            Material::isotropic(1.0e7, 0.3),
        );
        // Pin the left end fully (bilateral), so the trial solves are
        // well-posed even with no contacts engaged.
        model.fix_both(NodeId(0));
        model.fix_x(NodeId(mesh.node_count() / 2)); // left end, top row
        model.fix_y(NodeId(mesh.node_count() / 2));
        model
    }

    #[test]
    fn downward_load_engages_the_support() {
        let mesh = beam(8);
        let mut model = base_model(&mesh);
        let tip_bottom = NodeId(8);
        model.add_force(tip_bottom, 0.0, -500.0);
        let support = ContactSupport::touching(tip_bottom);
        let result = solve_with_contact(&model, &[support], 10).unwrap();
        assert_eq!(result.engaged(), 1);
        // The supported node sits exactly at the support.
        let (_, v) = result.solution.displacement(tip_bottom);
        assert!(v.abs() < 1e-9, "v = {v}");
    }

    #[test]
    fn upward_load_releases_the_support() {
        let mesh = beam(8);
        let mut model = base_model(&mesh);
        let tip_bottom = NodeId(8);
        model.add_force(tip_bottom, 0.0, 500.0); // lifting the tip
        let support = ContactSupport::touching(tip_bottom);
        let result = solve_with_contact(&model, &[support], 10).unwrap();
        assert_eq!(result.engaged(), 0);
        let (_, v) = result.solution.displacement(tip_bottom);
        assert!(v > 0.0, "tip should lift, v = {v}");
    }

    #[test]
    fn beam_lifts_off_one_support() {
        // Supports under mid and tip; the load pushes down *between* the
        // clamp and the mid support, hogging the beam over it — the tip
        // levers up and its support must release.
        let mesh = beam(12);
        let mut model = base_model(&mesh);
        let mid_bottom = NodeId(6);
        let tip_bottom = NodeId(12);
        model.add_force(NodeId(3), 0.0, -2000.0);
        let supports = [
            ContactSupport::touching(mid_bottom),
            ContactSupport::touching(tip_bottom),
        ];
        let result = solve_with_contact(&model, &supports, 20).unwrap();
        assert!(result.active[0], "mid support engaged");
        assert!(!result.active[1], "tip support released");
        let (_, v_tip) = result.solution.displacement(tip_bottom);
        assert!(v_tip > -1e-9, "tip must not penetrate, v = {v_tip}");
    }

    #[test]
    fn gap_must_close_before_contact() {
        let mesh = beam(8);
        let mut model = base_model(&mesh);
        let tip_bottom = NodeId(8);
        // A small load that deflects less than the gap: no contact.
        model.add_force(tip_bottom, 0.0, -1.0);
        let wide_gap = ContactSupport {
            node: tip_bottom,
            gap: 1.0,
        };
        let result = solve_with_contact(&model, &[wide_gap], 10).unwrap();
        assert_eq!(result.engaged(), 0);
        // A large load closes the gap and engages.
        model.add_force(tip_bottom, 0.0, -1.0e6);
        let result = solve_with_contact(&model, &[wide_gap], 10).unwrap();
        assert_eq!(result.engaged(), 1);
        let (_, v) = result.solution.displacement(tip_bottom);
        assert!((v + 1.0).abs() < 1e-9, "rests at the gap, v = {v}");
    }

    #[test]
    fn increments_cross_the_gap_engagement_threshold() {
        // A gapped support engages only once the load is big enough: the
        // active set changes partway through the increment sweep, and
        // the response is piecewise linear around that increment.
        let mesh = beam(8);
        let mut model = base_model(&mesh);
        let tip_bottom = NodeId(8);
        model.add_force(tip_bottom, 0.0, -4000.0);
        // Gap sized so roughly half the full load closes it.
        let free_tip = {
            let solution = model.solve().unwrap();
            solution.displacement(tip_bottom).1
        };
        let gap = 0.5 * free_tip.abs();
        let support = ContactSupport {
            node: tip_bottom,
            gap,
        };
        let increments = solve_contact_increments(&model, &[support], 10, 20).unwrap();
        let engaged: Vec<bool> = increments
            .iter()
            .map(|inc| inc.result.engaged() == 1)
            .collect();
        assert!(!engaged[0], "first increment stays clear of the gap");
        assert!(*engaged.last().unwrap(), "full load engages");
        // Engagement is monotone: once closed, it stays closed under
        // growing proportional load.
        let first_engaged = engaged.iter().position(|&e| e).unwrap();
        assert!(engaged[first_engaged..].iter().all(|&e| e));
        // After engagement the tip displacement saturates at the gap.
        for inc in &increments[first_engaged..] {
            let v = inc.result.solution.displacement(tip_bottom).1;
            assert!((v + gap).abs() < 1e-9, "v = {v}, gap = {gap}");
        }
    }

    #[test]
    fn with_load_factor_scales_linearly() {
        let mesh = beam(6);
        let mut model = base_model(&mesh);
        model.add_force(NodeId(6), 0.0, -900.0);
        let full = model.solve().unwrap();
        let third = model.with_load_factor(1.0 / 3.0).solve().unwrap();
        for (a, b) in full.dofs().iter().zip(third.dofs()) {
            assert!((a / 3.0 - b).abs() < 1e-12 * a.abs().max(1e-12));
        }
    }

    #[test]
    fn reactions_balance_applied_load() {
        let mesh = beam(8);
        let mut model = base_model(&mesh);
        model.add_force(NodeId(8), 0.0, -500.0);
        let solution = model.solve().unwrap();
        let reactions = model.reactions(&solution).unwrap();
        // The supports push +500 upward to balance the applied −500.
        let total_y: f64 = reactions.iter().skip(1).step_by(2).sum();
        assert!((total_y - 500.0).abs() < 1e-6, "sum = {total_y}");
        // Free dofs (including the loaded one) carry no residual.
        for (dof, r) in reactions.iter().enumerate() {
            let node = dof / 2;
            let constrained = node == 0 || node == mesh.node_count() / 2;
            if !constrained {
                assert!(r.abs() < 1e-6, "residual {r} at dof {dof}");
            }
        }
    }
}

//! Error type for the analysis substrate.

use std::fmt;

/// Errors raised by model assembly and solution.
#[derive(Debug, Clone, PartialEq)]
pub enum FemError {
    /// The global stiffness matrix is singular or not positive definite —
    /// almost always an under-constrained model (rigid-body motion left
    /// free).
    SingularMatrix {
        /// Equation (degree-of-freedom) index where factorization failed.
        equation: usize,
    },
    /// The model has no elements to assemble.
    EmptyModel,
    /// The model has no displacement constraints at all, so the stiffness
    /// matrix carries every rigid-body mode and is singular by
    /// construction. Caught before factorization: rounding can smear the
    /// exact zero pivots into tiny values that factor into a garbage
    /// "solution".
    Unconstrained,
    /// A material is physically inadmissible (e.g. Poisson ratio ≥ 0.5 in
    /// plane strain, non-positive modulus).
    BadMaterial {
        /// Human-readable description.
        reason: String,
    },
    /// A referenced node does not exist in the mesh.
    UnknownNode {
        /// The offending index.
        index: usize,
    },
    /// An axisymmetric model reaches to negative radius (a node left of
    /// the axis, or an element whose centroid crosses it).
    NegativeRadius {
        /// The offending node or element index.
        index: usize,
        /// The radius found.
        radius: f64,
    },
    /// A time-stepping parameter is out of range.
    BadTimeStep {
        /// Human-readable description.
        reason: String,
    },
    /// An iterative procedure (e.g. the contact active set) failed to
    /// settle within its iteration budget.
    NoConvergence {
        /// Iterations attempted.
        iterations: usize,
        /// What was iterating.
        what: &'static str,
    },
    /// The conjugate-gradient solver exhausted its iteration budget
    /// before reaching its residual tolerance — typically a very
    /// ill-conditioned system (extreme material contrast, degenerate
    /// geometry). Carries the residual actually achieved so callers can
    /// distinguish "nearly there" from divergence.
    CgNoConvergence {
        /// Iterations performed (the whole budget).
        iterations: usize,
        /// Relative residual `‖b − A·x‖ / ‖b‖` at exit.
        residual: f64,
        /// The tolerance that was not met.
        tolerance: f64,
    },
    /// A non-finite coefficient (NaN or infinity) entered the system —
    /// usually degenerate geometry poisoning a stiffness term. Solvers
    /// refuse to propagate it into a garbage "solution".
    NonFinite {
        /// Equation (degree-of-freedom) index where it was detected.
        equation: usize,
    },
    /// An element's triangle has (numerically) zero area, so its
    /// stiffness is undefined.
    DegenerateElement {
        /// Zero-based element index.
        element: usize,
    },
    /// A pressure was applied to an edge whose two nodes coincide.
    DegenerateEdge {
        /// Zero-based index of the first node.
        a: usize,
        /// Zero-based index of the second node.
        b: usize,
    },
    /// A right-hand side vector does not match the system's order. Every
    /// solver (band, skyline, dense) reports this identically instead of
    /// panicking, so batch drivers can attribute it like any other
    /// stage error.
    RhsLength {
        /// The system order the solver expected.
        expected: usize,
        /// The length actually supplied.
        actual: usize,
    },
}

impl FemError {
    /// Re-attributes an element-level failure (from
    /// [`element_stiffness`](crate::element_stiffness), which does not
    /// know its element's index) to the element being assembled.
    pub(crate) fn for_element(self, element: usize) -> FemError {
        match self {
            FemError::SingularMatrix { .. } => FemError::DegenerateElement { element },
            FemError::NegativeRadius { radius, .. } => FemError::NegativeRadius {
                index: element,
                radius,
            },
            other => other,
        }
    }
}

impl fmt::Display for FemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FemError::SingularMatrix { equation } => write!(
                f,
                "stiffness matrix not positive definite at equation {equation} \
                 (model may be under-constrained)"
            ),
            FemError::EmptyModel => write!(f, "model has no elements"),
            FemError::Unconstrained => write!(
                f,
                "model has no displacement constraints (stiffness matrix is \
                 singular: all rigid-body modes are free)"
            ),
            FemError::BadMaterial { reason } => write!(f, "inadmissible material: {reason}"),
            FemError::UnknownNode { index } => write!(f, "node {index} does not exist"),
            FemError::NegativeRadius { index, radius } => write!(
                f,
                "axisymmetric node {index} lies at negative radius {radius}"
            ),
            FemError::BadTimeStep { reason } => write!(f, "bad time step: {reason}"),
            FemError::NoConvergence { iterations, what } => {
                write!(f, "{what} did not converge in {iterations} iterations")
            }
            FemError::CgNoConvergence {
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "conjugate gradient did not converge in {iterations} iterations \
                 (relative residual {residual:.3e}, tolerance {tolerance:.0e})"
            ),
            FemError::NonFinite { equation } => write!(
                f,
                "non-finite coefficient at equation {equation} (degenerate \
                 geometry or invalid material data)"
            ),
            FemError::DegenerateElement { element } => {
                write!(f, "element {element} has zero area")
            }
            FemError::DegenerateEdge { a, b } => {
                write!(f, "pressure edge from node {a} to node {b} has zero length")
            }
            FemError::RhsLength { expected, actual } => write!(
                f,
                "right-hand side has {actual} entries but the system order is {expected}"
            ),
        }
    }
}

impl std::error::Error for FemError {}

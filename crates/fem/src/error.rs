//! Error type for the analysis substrate.

use std::fmt;

/// Errors raised by model assembly and solution.
#[derive(Debug, Clone, PartialEq)]
pub enum FemError {
    /// The global stiffness matrix is singular or not positive definite —
    /// almost always an under-constrained model (rigid-body motion left
    /// free).
    SingularMatrix {
        /// Equation (degree-of-freedom) index where factorization failed.
        equation: usize,
    },
    /// The model has no elements to assemble.
    EmptyModel,
    /// A material is physically inadmissible (e.g. Poisson ratio ≥ 0.5 in
    /// plane strain, non-positive modulus).
    BadMaterial {
        /// Human-readable description.
        reason: String,
    },
    /// A referenced node does not exist in the mesh.
    UnknownNode {
        /// The offending index.
        index: usize,
    },
    /// An axisymmetric model contains a node at negative radius.
    NegativeRadius {
        /// The offending node index.
        index: usize,
        /// The radius found.
        radius: f64,
    },
    /// A time-stepping parameter is out of range.
    BadTimeStep {
        /// Human-readable description.
        reason: String,
    },
    /// An iterative procedure (e.g. the contact active set) failed to
    /// settle within its iteration budget.
    NoConvergence {
        /// Iterations attempted.
        iterations: usize,
        /// What was iterating.
        what: &'static str,
    },
}

impl fmt::Display for FemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FemError::SingularMatrix { equation } => write!(
                f,
                "stiffness matrix not positive definite at equation {equation} \
                 (model may be under-constrained)"
            ),
            FemError::EmptyModel => write!(f, "model has no elements"),
            FemError::BadMaterial { reason } => write!(f, "inadmissible material: {reason}"),
            FemError::UnknownNode { index } => write!(f, "node {index} does not exist"),
            FemError::NegativeRadius { index, radius } => write!(
                f,
                "axisymmetric node {index} lies at negative radius {radius}"
            ),
            FemError::BadTimeStep { reason } => write!(f, "bad time step: {reason}"),
            FemError::NoConvergence { iterations, what } => {
                write!(f, "{what} did not converge in {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for FemError {}

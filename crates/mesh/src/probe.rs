//! Point probing of a nodal field — `field.sample(x, y)`.
//!
//! A [`NodalField`] stores one scalar per node and knows nothing about
//! geometry; [`FieldProbe`] binds one field to one mesh so arbitrary
//! plane points can be evaluated by barycentric interpolation over the
//! owning element. Point location runs on a [`MeshIndex`] BVH, but the
//! result is *defined* by the brute-force scan (and tested against it,
//! see [`FieldProbe::sample_reference`]): the first element in id order
//! that contains the point and has well-defined barycentric
//! coordinates.
//!
//! Probing opens line-graph extraction along arbitrary cut paths —
//! stress along a weld line, temperature across a wall — as a workload
//! the 1970 plotter never had: see [`FieldProbe::line_graph`].

use cafemio_geom::{lerp_point, Point};
use std::fmt;

use crate::element::ElementId;
use crate::field::NodalField;
use crate::index::MeshIndex;
use crate::mesh::TriMesh;

/// Why a [`FieldProbe`] could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeError {
    /// The field's value count does not match the mesh's node count.
    FieldSizeMismatch {
        /// Nodes in the mesh.
        nodes: usize,
        /// Values in the field.
        values: usize,
    },
}

impl fmt::Display for ProbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeError::FieldSizeMismatch { nodes, values } => write!(
                f,
                "field has {values} values but the mesh has {nodes} nodes"
            ),
        }
    }
}

impl std::error::Error for ProbeError {}

/// One field evaluation at a plane point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Barycentric-interpolated field value.
    pub value: f64,
    /// The element the point was located in.
    pub element: ElementId,
    /// Barycentric weights with respect to that element's corners.
    pub weights: [f64; 3],
}

/// A [`NodalField`] bound to its mesh for point evaluation.
///
/// # Examples
///
/// ```
/// use cafemio_geom::Point;
/// use cafemio_mesh::{BoundaryKind, FieldProbe, NodalField, TriMesh};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mesh = TriMesh::new();
/// let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
/// let b = mesh.add_node(Point::new(2.0, 0.0), BoundaryKind::Boundary);
/// let c = mesh.add_node(Point::new(0.0, 2.0), BoundaryKind::Boundary);
/// mesh.add_element([a, b, c])?;
/// // A linear field f(x, y) = 10 x.
/// let field = NodalField::new("SIGX", vec![0.0, 20.0, 0.0]);
/// let probe = FieldProbe::new(&mesh, &field)?;
/// let s = probe.sample(0.5, 0.5).expect("inside the mesh");
/// assert!((s.value - 5.0).abs() < 1e-12);
/// assert!(probe.sample(9.0, 9.0).is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FieldProbe {
    index: MeshIndex,
    /// Field values at each element's three corners, in element id order.
    corner_values: Vec<[f64; 3]>,
}

impl FieldProbe {
    /// Binds `field` to `mesh`, building the spatial index.
    ///
    /// Fails when the field was produced for a different mesh (value
    /// count differs from the node count).
    pub fn new(mesh: &TriMesh, field: &NodalField) -> Result<FieldProbe, ProbeError> {
        if field.values().len() != mesh.node_count() {
            return Err(ProbeError::FieldSizeMismatch {
                nodes: mesh.node_count(),
                values: field.values().len(),
            });
        }
        let corner_values = (0..mesh.element_count())
            .map(|i| {
                let el = mesh.element(ElementId(i));
                [
                    field.value(el.nodes[0]),
                    field.value(el.nodes[1]),
                    field.value(el.nodes[2]),
                ]
            })
            .collect();
        Ok(FieldProbe {
            index: MeshIndex::new(mesh),
            corner_values,
        })
    }

    /// The spatial index the probe runs on (shared with other contour
    /// consumers so the mesh is indexed once).
    pub fn index(&self) -> &MeshIndex {
        &self.index
    }

    /// Evaluates the field at `(x, y)`: the owning element is the first
    /// element in id order containing the point with well-defined
    /// barycentric coordinates; `None` outside the mesh. Accelerated,
    /// but bit-identical to [`sample_reference`](Self::sample_reference).
    pub fn sample(&self, x: f64, y: f64) -> Option<Sample> {
        let p = Point::new(x, y);
        let mut result = None;
        // Stab candidates come back ascending; the first that passes the
        // exact containment + barycentric test is the scan's answer.
        for i in self.index.element_candidates(p) {
            if let Some(sample) = self.evaluate_in(i, p) {
                result = Some(sample);
                break;
            }
        }
        result
    }

    /// The brute-force definition of [`sample`](Self::sample): scan all
    /// elements front to back. Kept public as the parity oracle for
    /// tests and benchmarks.
    pub fn sample_reference(&self, x: f64, y: f64) -> Option<Sample> {
        let p = Point::new(x, y);
        (0..self.index.element_count()).find_map(|i| self.evaluate_in(i, p))
    }

    /// Evaluates the field along the straight cut from `from` to `to` at
    /// `samples` evenly spaced stations (endpoints included once
    /// `samples >= 2`). Each entry is the arc-length position along the
    /// cut and the field sample there — `None` where the cut leaves the
    /// mesh, so gaps across holes stay visible in the extracted graph.
    pub fn line_graph(&self, from: Point, to: Point, samples: usize) -> Vec<(f64, Option<Sample>)> {
        let length = from.distance_to(to);
        (0..samples)
            .map(|i| {
                let t = if samples > 1 {
                    i as f64 / (samples - 1) as f64
                } else {
                    0.0
                };
                let p = lerp_point(from, to, t);
                (t * length, self.sample(p.x, p.y))
            })
            .collect()
    }

    /// Containment + interpolation against one element.
    fn evaluate_in(&self, element: usize, p: Point) -> Option<Sample> {
        let tri = self.index.triangle(ElementId(element));
        if !tri.contains(p) {
            return None;
        }
        let weights = tri.barycentric(p)?;
        let v = self.corner_values[element];
        Some(Sample {
            value: weights[0] * v[0] + weights[1] * v[1] + weights[2] * v[2],
            element: ElementId(element),
            weights,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::BoundaryKind;

    fn two_element_square() -> TriMesh {
        let mut mesh = TriMesh::new();
        let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
        let b = mesh.add_node(Point::new(1.0, 0.0), BoundaryKind::Boundary);
        let c = mesh.add_node(Point::new(1.0, 1.0), BoundaryKind::Boundary);
        let d = mesh.add_node(Point::new(0.0, 1.0), BoundaryKind::Boundary);
        mesh.add_element([a, b, c]).unwrap();
        mesh.add_element([a, c, d]).unwrap();
        mesh
    }

    #[test]
    fn sample_interpolates_a_linear_field_exactly_in_form() {
        let mesh = two_element_square();
        // f(x, y) = 3x + 4y: barycentric interpolation reproduces
        // linear fields.
        let field = NodalField::new("F", vec![0.0, 3.0, 7.0, 4.0]);
        let probe = FieldProbe::new(&mesh, &field).unwrap();
        for (x, y) in [(0.2, 0.1), (0.9, 0.9), (0.5, 0.5), (0.0, 1.0)] {
            let s = probe.sample(x, y).unwrap();
            assert!(
                (s.value - (3.0 * x + 4.0 * y)).abs() < 1e-12,
                "({x}, {y}) -> {}",
                s.value
            );
            assert_eq!(Some(s), probe.sample_reference(x, y));
        }
    }

    #[test]
    fn sample_outside_is_none() {
        let mesh = two_element_square();
        let field = NodalField::zeros("F", 4);
        let probe = FieldProbe::new(&mesh, &field).unwrap();
        assert!(probe.sample(2.0, 2.0).is_none());
        assert!(probe.sample_reference(2.0, 2.0).is_none());
    }

    #[test]
    fn shared_edge_points_belong_to_the_lower_element_id() {
        let mesh = two_element_square();
        let field = NodalField::zeros("F", 4);
        let probe = FieldProbe::new(&mesh, &field).unwrap();
        // The diagonal a-c is shared: the scan finds element 0 first.
        let s = probe.sample(0.5, 0.5).unwrap();
        assert_eq!(s.element, ElementId(0));
        assert_eq!(
            probe.sample_reference(0.5, 0.5).unwrap().element,
            ElementId(0)
        );
    }

    #[test]
    fn mismatched_field_is_rejected() {
        let mesh = two_element_square();
        let field = NodalField::zeros("F", 3);
        let err = FieldProbe::new(&mesh, &field).unwrap_err();
        assert_eq!(err, ProbeError::FieldSizeMismatch { nodes: 4, values: 3 });
    }

    #[test]
    fn line_graph_spans_the_cut_and_marks_gaps() {
        let mesh = two_element_square();
        let field = NodalField::new("F", vec![0.0, 3.0, 7.0, 4.0]); // 3x + 4y
        let probe = FieldProbe::new(&mesh, &field).unwrap();
        // Cut from inside the square out past its right edge.
        let graph = probe.line_graph(Point::new(0.0, 0.5), Point::new(2.0, 0.5), 5);
        assert_eq!(graph.len(), 5);
        assert_eq!(graph[0].0, 0.0);
        assert_eq!(graph[4].0, 2.0);
        // Stations at x = 0, 0.5, 1 are inside; 1.5 and 2 are out.
        assert!(graph[0].1.is_some() && graph[1].1.is_some() && graph[2].1.is_some());
        assert!(graph[3].1.is_none() && graph[4].1.is_none());
        let mid = graph[1].1.unwrap();
        assert!((mid.value - (3.0 * 0.5 + 4.0 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn single_station_line_graph_sits_at_the_start() {
        let mesh = two_element_square();
        let field = NodalField::zeros("F", 4);
        let probe = FieldProbe::new(&mesh, &field).unwrap();
        let graph = probe.line_graph(Point::new(0.5, 0.5), Point::new(0.9, 0.9), 1);
        assert_eq!(graph.len(), 1);
        assert_eq!(graph[0].0, 0.0);
        assert!(graph[0].1.is_some());
        assert!(probe.line_graph(Point::ORIGIN, Point::new(1.0, 0.0), 0).is_empty());
    }
}

//! Three-node elements.

use std::fmt;

use crate::node::NodeId;

/// Zero-based element identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElementId(pub usize);

impl ElementId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A triangular element: three node references.
///
/// "Elements are created by grouping three adjacent nodes together" — the
/// only element type in the paper (and in the analysis programs it feeds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Element {
    /// The three corner nodes.
    pub nodes: [NodeId; 3],
}

impl Element {
    /// Creates an element from its corner nodes.
    pub fn new(nodes: [NodeId; 3]) -> Element {
        Element { nodes }
    }

    /// True when the element references `node`.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// The three directed edges in corner order.
    pub fn edges(&self) -> [(NodeId, NodeId); 3] {
        let [a, b, c] = self.nodes;
        [(a, b), (b, c), (c, a)]
    }

    /// The corner opposite to the directed edge `(a, b)`, if the element
    /// has that edge in either direction.
    pub fn opposite(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        if !self.contains(a) || !self.contains(b) || a == b {
            return None;
        }
        self.nodes.iter().copied().find(|n| *n != a && *n != b)
    }

    /// Replaces node `from` by `to`, returning whether a replacement
    /// happened (used by the diagonal-swap reformer).
    pub fn replace(&mut self, from: NodeId, to: NodeId) -> bool {
        for n in &mut self.nodes {
            if *n == from {
                *n = to;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e() -> Element {
        Element::new([NodeId(0), NodeId(1), NodeId(2)])
    }

    #[test]
    fn contains_and_opposite() {
        let el = e();
        assert!(el.contains(NodeId(1)));
        assert!(!el.contains(NodeId(3)));
        assert_eq!(el.opposite(NodeId(0), NodeId(1)), Some(NodeId(2)));
        assert_eq!(el.opposite(NodeId(1), NodeId(0)), Some(NodeId(2)));
        assert_eq!(el.opposite(NodeId(0), NodeId(3)), None);
        assert_eq!(el.opposite(NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn edges_cycle_corners() {
        let edges = e().edges();
        assert_eq!(edges[0], (NodeId(0), NodeId(1)));
        assert_eq!(edges[2], (NodeId(2), NodeId(0)));
    }

    #[test]
    fn replace_swaps_first_match() {
        let mut el = e();
        assert!(el.replace(NodeId(1), NodeId(9)));
        assert_eq!(el.nodes, [NodeId(0), NodeId(9), NodeId(2)]);
        assert!(!el.replace(NodeId(1), NodeId(5)));
    }
}

//! Spatial index over a mesh's elements and edges.
//!
//! [`MeshIndex`] snapshots a [`TriMesh`]'s triangles and unique edges
//! into two [`Bvh`] hierarchies, turning the contour path's
//! point-against-mesh scans into logarithmic queries. Every query is
//! defined in terms of the brute-force scan it replaces and returns the
//! same result bit for bit:
//!
//! * [`locate`](MeshIndex::locate) — the first element *in id order*
//!   whose triangle contains the point, exactly like scanning
//!   `mesh.elements()` front to back;
//! * [`nearest_edge_distance`](MeshIndex::nearest_edge_distance) — the
//!   same value as folding [`Segment::distance_to_point`] over
//!   `mesh.edges()` with `f64::min` from an `INFINITY` seed;
//! * [`elements_in_box`](MeshIndex::elements_in_box) — ascending element
//!   ids whose triangle bounding box overlaps the query box (callers
//!   refine with the exact triangle test).
//!
//! The index is **derived state**: it is rebuilt from the mesh on
//! demand and never participates in content hashing or stage-cache
//! keys (see `docs/CACHING.md`).

use cafemio_geom::{BoundingBox, Bvh, Point, Segment, Triangle};

use crate::element::ElementId;
use crate::mesh::{Edge, TriMesh};

/// A bounding-volume index over one mesh's elements and edges.
///
/// # Examples
///
/// ```
/// use cafemio_geom::Point;
/// use cafemio_mesh::{BoundaryKind, MeshIndex, TriMesh};
/// # fn main() -> Result<(), cafemio_mesh::MeshError> {
/// let mut mesh = TriMesh::new();
/// let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
/// let b = mesh.add_node(Point::new(2.0, 0.0), BoundaryKind::Boundary);
/// let c = mesh.add_node(Point::new(0.0, 2.0), BoundaryKind::Boundary);
/// mesh.add_element([a, b, c])?;
/// let index = MeshIndex::new(&mesh);
/// assert_eq!(index.locate(Point::new(0.5, 0.5)), Some(cafemio_mesh::ElementId(0)));
/// assert!(index.locate(Point::new(5.0, 5.0)).is_none());
/// assert!((index.nearest_edge_distance(Point::new(-1.0, 0.0)) - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MeshIndex {
    triangles: Vec<Triangle>,
    element_bvh: Bvh,
    edges: Vec<Edge>,
    segments: Vec<Segment>,
    edge_bvh: Bvh,
}

impl MeshIndex {
    /// Builds the index: one BVH over element triangles (in element id
    /// order) and one over the mesh's unique edges (in the canonical
    /// ascending [`Edge`] order that `mesh.edges()` yields).
    pub fn new(mesh: &TriMesh) -> MeshIndex {
        let triangles: Vec<Triangle> = (0..mesh.element_count())
            .map(|i| mesh.triangle(ElementId(i)))
            .collect();
        let element_boxes: Vec<BoundingBox> = triangles
            .iter()
            .map(|t| BoundingBox::from_points(t.vertices))
            .collect();
        let edges: Vec<Edge> = mesh.edges().into_keys().collect();
        let segments: Vec<Segment> = edges
            .iter()
            .map(|e| Segment::new(mesh.node(e.0).position, mesh.node(e.1).position))
            .collect();
        let edge_boxes: Vec<BoundingBox> = segments
            .iter()
            .map(|s| BoundingBox::from_points([s.start, s.end]))
            .collect();
        MeshIndex {
            element_bvh: Bvh::build(&element_boxes),
            edge_bvh: Bvh::build(&edge_boxes),
            triangles,
            edges,
            segments,
        }
    }

    /// Number of elements indexed.
    pub fn element_count(&self) -> usize {
        self.triangles.len()
    }

    /// Number of unique edges indexed.
    pub fn edge_count(&self) -> usize {
        self.segments.len()
    }

    /// The indexed triangle of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the indexed mesh.
    pub fn triangle(&self, id: ElementId) -> &Triangle {
        // invariant: ids come from this index's own query results.
        &self.triangles[id.index()]
    }

    /// The unique edges in canonical ascending order, with their
    /// geometry — the exact sequence `mesh.edges()` produced at build
    /// time.
    pub fn edges(&self) -> impl Iterator<Item = (&Edge, &Segment)> {
        self.edges.iter().zip(self.segments.iter())
    }

    /// Ascending indices of the elements whose triangle bounding box
    /// contains `p` — the candidate set [`locate`](Self::locate) refines
    /// with the exact containment test.
    pub fn element_candidates(&self, p: Point) -> Vec<usize> {
        self.element_bvh.stabbing(p)
    }

    /// The first element in id order whose triangle contains `p`
    /// (boundary inclusive) — identical to scanning `mesh.elements()`
    /// front to back with [`Triangle::contains`].
    pub fn locate(&self, p: Point) -> Option<ElementId> {
        self.element_candidates(p)
            .into_iter()
            .find(|&i| self.triangles[i].contains(p))
            .map(ElementId)
    }

    /// Ascending ids of the elements whose triangle bounding box
    /// overlaps `query` (sharing an edge counts). A superset of the
    /// elements whose triangle truly intersects the box — refine with
    /// [`Triangle::intersects_box`] when exactness matters.
    pub fn elements_in_box(&self, query: &BoundingBox) -> Vec<ElementId> {
        self.element_bvh
            .overlapping(query)
            .into_iter()
            .map(ElementId)
            .collect()
    }

    /// True when some element's triangle truly intersects `query`
    /// (touching counts) — the exact separating-axis test, reached only
    /// for the few bounding-box candidates.
    pub fn any_element_intersects(&self, query: &BoundingBox) -> bool {
        self.element_bvh
            .overlapping(query)
            .into_iter()
            .any(|i| self.triangles[i].intersects_box(query))
    }

    /// Distance from `p` to the nearest mesh edge — the same value as
    /// `edges.iter().map(|e| e.distance_to_point(p)).fold(f64::INFINITY,
    /// f64::min)` over the canonical edge order, including the
    /// `INFINITY` seed when the mesh has no edges.
    pub fn nearest_edge_distance(&self, p: Point) -> f64 {
        self.edge_bvh
            .nearest_by(p, |i| self.segments[i].distance_to_point(p))
            .map(|(_, d)| d)
            .unwrap_or(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::BoundaryKind;

    /// A small structured grid of right triangles on [0, n] x [0, n].
    fn grid(n: usize) -> TriMesh {
        let mut mesh = TriMesh::new();
        let mut ids = Vec::new();
        for j in 0..=n {
            for i in 0..=n {
                let kind = if i == 0 || j == 0 || i == n || j == n {
                    BoundaryKind::Boundary
                } else {
                    BoundaryKind::Interior
                };
                ids.push(mesh.add_node(Point::new(i as f64, j as f64), kind));
            }
        }
        let at = |i: usize, j: usize| ids[j * (n + 1) + i];
        for j in 0..n {
            for i in 0..n {
                mesh.add_element([at(i, j), at(i + 1, j), at(i + 1, j + 1)])
                    .unwrap();
                mesh.add_element([at(i, j), at(i + 1, j + 1), at(i, j + 1)])
                    .unwrap();
            }
        }
        mesh
    }

    #[test]
    fn locate_matches_first_containing_scan() {
        let mesh = grid(6);
        let index = MeshIndex::new(&mesh);
        let probes = [
            Point::new(0.25, 0.75),
            Point::new(3.0, 3.0), // grid vertex shared by several elements
            Point::new(5.5, 0.5),
            Point::new(2.0, 4.5),
            Point::new(-0.5, 2.0), // outside
            Point::new(6.0, 6.0),  // corner vertex
        ];
        for p in probes {
            let brute = mesh
                .elements()
                .map(|(id, _)| id)
                .find(|&id| mesh.triangle(id).contains(p));
            assert_eq!(index.locate(p), brute, "probe {p:?}");
        }
    }

    #[test]
    fn nearest_edge_distance_matches_fold() {
        let mesh = grid(5);
        let index = MeshIndex::new(&mesh);
        let segments: Vec<Segment> = mesh
            .edges()
            .keys()
            .map(|e| Segment::new(mesh.node(e.0).position, mesh.node(e.1).position))
            .collect();
        for p in [
            Point::new(0.3, 0.3),
            Point::new(2.5, 2.5),
            Point::new(-3.0, 7.0),
            Point::new(5.0, 5.0),
            Point::new(1.9, 0.05),
        ] {
            let brute = segments
                .iter()
                .map(|s| s.distance_to_point(p))
                .fold(f64::INFINITY, f64::min);
            assert_eq!(index.nearest_edge_distance(p), brute, "probe {p:?}");
        }
    }

    #[test]
    fn empty_mesh_yields_infinity_and_no_location() {
        let index = MeshIndex::new(&TriMesh::new());
        assert_eq!(index.element_count(), 0);
        assert_eq!(index.edge_count(), 0);
        assert!(index.locate(Point::ORIGIN).is_none());
        assert_eq!(index.nearest_edge_distance(Point::ORIGIN), f64::INFINITY);
        let window = BoundingBox::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0));
        assert!(!index.any_element_intersects(&window));
    }

    #[test]
    fn elements_in_box_are_ascending_and_complete() {
        let mesh = grid(4);
        let index = MeshIndex::new(&mesh);
        let window = BoundingBox::new(Point::new(0.5, 0.5), Point::new(2.5, 1.5));
        let got = index.elements_in_box(&window);
        let brute: Vec<ElementId> = mesh
            .elements()
            .map(|(id, _)| id)
            .filter(|&id| {
                BoundingBox::from_points(mesh.triangle(id).vertices).intersects(&window)
            })
            .collect();
        assert_eq!(got, brute);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn window_intersection_is_exact_not_bbox_approximate() {
        // One triangle; a window inside its bounding box but fully
        // beyond the hypotenuse must not count as intersecting.
        let mut mesh = TriMesh::new();
        let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
        let b = mesh.add_node(Point::new(4.0, 0.0), BoundaryKind::Boundary);
        let c = mesh.add_node(Point::new(0.0, 4.0), BoundaryKind::Boundary);
        mesh.add_element([a, b, c]).unwrap();
        let index = MeshIndex::new(&mesh);
        let beyond = BoundingBox::new(Point::new(3.0, 3.0), Point::new(3.9, 3.9));
        assert!(!index.any_element_intersects(&beyond));
        let inside = BoundingBox::new(Point::new(0.1, 0.1), Point::new(0.4, 0.4));
        assert!(index.any_element_intersects(&inside));
    }
}

//! Nodes and their boundary classification.

use std::fmt;

use cafemio_geom::Point;

/// Zero-based node identifier.
///
/// The paper's listings use one-based FORTRAN numbering; conversion happens
/// only at the card boundary (`cafemio-cards` decks), never inside the
/// library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// OSPL's boundary flag for a node (Type-3 card, field `N(I)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BoundaryKind {
    /// `N = 0`: node is not on the boundary.
    #[default]
    Interior,
    /// `N = 1`: node is on the boundary and belongs to more than one
    /// element.
    Boundary,
    /// `N = 2`: node is on the boundary and belongs to exactly one element
    /// (a sharp corner of the outline).
    BoundaryCorner,
}

impl BoundaryKind {
    /// True for either boundary variant.
    pub fn is_boundary(self) -> bool {
        !matches!(self, BoundaryKind::Interior)
    }

    /// The card integer for this flag.
    pub fn to_flag(self) -> i64 {
        match self {
            BoundaryKind::Interior => 0,
            BoundaryKind::Boundary => 1,
            BoundaryKind::BoundaryCorner => 2,
        }
    }

    /// Parses the card integer. Unknown flags map to `Interior` like the
    /// original program's arithmetic IF would fall through — callers that
    /// want strictness validate the deck beforehand.
    pub fn from_flag(flag: i64) -> BoundaryKind {
        match flag {
            1 => BoundaryKind::Boundary,
            2 => BoundaryKind::BoundaryCorner,
            _ => BoundaryKind::Interior,
        }
    }
}

/// A mesh node: position plus boundary classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node {
    /// Location in problem coordinates.
    pub position: Point,
    /// Boundary flag.
    pub boundary: BoundaryKind,
}

impl Node {
    /// Creates a node.
    pub fn new(position: Point, boundary: BoundaryKind) -> Node {
        Node { position, boundary }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_round_trip() {
        for kind in [
            BoundaryKind::Interior,
            BoundaryKind::Boundary,
            BoundaryKind::BoundaryCorner,
        ] {
            assert_eq!(BoundaryKind::from_flag(kind.to_flag()), kind);
        }
    }

    #[test]
    fn unknown_flag_is_interior() {
        assert_eq!(BoundaryKind::from_flag(9), BoundaryKind::Interior);
        assert_eq!(BoundaryKind::from_flag(-1), BoundaryKind::Interior);
    }

    #[test]
    fn is_boundary_covers_both_variants() {
        assert!(!BoundaryKind::Interior.is_boundary());
        assert!(BoundaryKind::Boundary.is_boundary());
        assert!(BoundaryKind::BoundaryCorner.is_boundary());
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(NodeId(7).index(), 7);
    }
}

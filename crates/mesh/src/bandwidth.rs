//! Bandwidth-reducing node orderings.
//!
//! IDLZ first numbers nodes "arbitrarily from left to right and bottom to
//! top with programming convenience being the prime consideration", then —
//! "if the user desires, the numbering scheme of Reference 2 is applied to
//! ensure a narrow bandwidth". The canonical scheme of that era is
//! Cuthill–McKee (1969): breadth-first numbering from a peripheral node,
//! visiting neighbours in increasing-degree order. Both the direct and the
//! reversed (RCM) orderings are provided; RCM typically gives an equal
//! bandwidth and a smaller profile.

use std::collections::VecDeque;

use crate::mesh::TriMesh;
use crate::node::NodeId;

/// Computes the Cuthill–McKee permutation for a mesh.
///
/// Returns `perm` with `perm[old] = new`; apply with
/// [`TriMesh::renumber_nodes`]. Disconnected components are numbered one
/// after another, each from its own pseudo-peripheral start node. An empty
/// mesh yields an empty permutation.
///
/// # Examples
///
/// ```
/// use cafemio_geom::Point;
/// use cafemio_mesh::{cuthill_mckee, BoundaryKind, TriMesh};
/// # fn main() -> Result<(), cafemio_mesh::MeshError> {
/// let mut mesh = TriMesh::new();
/// // A strip of 4 triangles numbered badly on purpose.
/// let ids: Vec<_> = (0..6)
///     .map(|i| mesh.add_node(Point::new((i / 2) as f64, (i % 2) as f64),
///                            BoundaryKind::Boundary))
///     .collect();
/// mesh.add_element([ids[0], ids[2], ids[1]])?;
/// mesh.add_element([ids[1], ids[2], ids[3]])?;
/// mesh.add_element([ids[2], ids[4], ids[3]])?;
/// mesh.add_element([ids[3], ids[4], ids[5]])?;
/// let before = mesh.bandwidth();
/// let perm = cuthill_mckee(&mesh);
/// mesh.renumber_nodes(&perm);
/// assert!(mesh.bandwidth() <= before);
/// # Ok(())
/// # }
/// ```
pub fn cuthill_mckee(mesh: &TriMesh) -> Vec<usize> {
    ordering(mesh, false)
}

/// The reverse Cuthill–McKee permutation (`perm[old] = new`).
///
/// Same contract as [`cuthill_mckee`]; the visit order is reversed, which
/// never increases the bandwidth and usually shrinks the matrix profile.
pub fn reverse_cuthill_mckee(mesh: &TriMesh) -> Vec<usize> {
    ordering(mesh, true)
}

fn ordering(mesh: &TriMesh, reverse: bool) -> Vec<usize> {
    let n = mesh.node_count();
    let adjacency = mesh.node_adjacency();
    let degree: Vec<usize> = adjacency.iter().map(Vec::len).collect();
    let mut visited = vec![false; n];
    let mut visit_order: Vec<usize> = Vec::with_capacity(n);

    // Process components in order of their lowest-index node for
    // determinism.
    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        let start = pseudo_peripheral(seed, &adjacency, &degree);
        let mut queue = VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            visit_order.push(v);
            let mut neighbours: Vec<usize> = adjacency[v]
                .iter()
                .map(|id| id.index())
                .filter(|&u| !visited[u])
                .collect();
            neighbours.sort_by_key(|&u| (degree[u], u));
            for u in neighbours {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }

    if reverse {
        visit_order.reverse();
    }
    // visit_order[k] = old index visited k-th; invert to perm[old] = new.
    let mut perm = vec![0usize; n];
    for (new, &old) in visit_order.iter().enumerate() {
        perm[old] = new;
    }
    perm
}

/// George–Liu style pseudo-peripheral node search: repeated BFS, moving to
/// a minimum-degree node of the deepest level until eccentricity stops
/// growing.
fn pseudo_peripheral(seed: usize, adjacency: &[Vec<NodeId>], degree: &[usize]) -> usize {
    let mut current = seed;
    let mut best_depth = 0usize;
    loop {
        let (levels, depth) = bfs_levels(current, adjacency);
        if depth <= best_depth && best_depth != 0 {
            return current;
        }
        best_depth = depth;
        // Deepest level, minimum degree.
        let candidate = levels
            .iter()
            .enumerate()
            .filter(|(_, &lvl)| lvl == Some(depth))
            .min_by_key(|(u, _)| (degree[*u], *u))
            .map(|(u, _)| u);
        match candidate {
            Some(next) if next != current => current = next,
            _ => return current,
        }
    }
}

fn bfs_levels(start: usize, adjacency: &[Vec<NodeId>]) -> (Vec<Option<usize>>, usize) {
    let mut levels: Vec<Option<usize>> = vec![None; adjacency.len()];
    levels[start] = Some(0);
    let mut queue = VecDeque::from([start]);
    let mut depth = 0;
    while let Some(v) = queue.pop_front() {
        // invariant: every node is assigned a level before being queued.
        let lvl = levels[v].expect("queued nodes have levels");
        depth = depth.max(lvl);
        for u in &adjacency[v] {
            if levels[u.index()].is_none() {
                levels[u.index()] = Some(lvl + 1);
                queue.push_back(u.index());
            }
        }
    }
    (levels, depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::BoundaryKind;
    use cafemio_geom::Point;

    /// A long strip of triangles whose nodes are numbered in a
    /// pathological interleaved order.
    fn bad_strip(cells: usize) -> TriMesh {
        let mut m = TriMesh::new();
        let n = cells + 1;
        // Bottom nodes first, then all top nodes: pairs (i, i+n) are far
        // apart in the numbering, giving bandwidth about n.
        let bottom: Vec<_> = (0..n)
            .map(|i| m.add_node(Point::new(i as f64, 0.0), BoundaryKind::Boundary))
            .collect();
        let top: Vec<_> = (0..n)
            .map(|i| m.add_node(Point::new(i as f64, 1.0), BoundaryKind::Boundary))
            .collect();
        for i in 0..cells {
            m.add_element([bottom[i], bottom[i + 1], top[i]]).unwrap();
            m.add_element([bottom[i + 1], top[i + 1], top[i]]).unwrap();
        }
        m
    }

    #[test]
    fn cm_shrinks_strip_bandwidth() {
        let mut m = bad_strip(20);
        let before = m.bandwidth();
        assert!(before >= 21);
        let perm = cuthill_mckee(&m);
        m.renumber_nodes(&perm);
        let after = m.bandwidth();
        assert!(after <= 3, "after = {after}");
        m.validate().unwrap();
    }

    #[test]
    fn rcm_no_worse_than_cm() {
        let m0 = bad_strip(15);
        let mut cm = m0.clone();
        cm.renumber_nodes(&cuthill_mckee(&m0));
        let mut rcm = m0.clone();
        rcm.renumber_nodes(&reverse_cuthill_mckee(&m0));
        assert!(rcm.bandwidth() <= cm.bandwidth());
    }

    #[test]
    fn permutation_is_valid() {
        let m = bad_strip(10);
        let perm = cuthill_mckee(&m);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..m.node_count()).collect::<Vec<_>>());
    }

    #[test]
    fn empty_mesh_gives_empty_permutation() {
        assert!(cuthill_mckee(&TriMesh::new()).is_empty());
    }

    #[test]
    fn disconnected_components_all_numbered() {
        let mut m = bad_strip(3);
        // Second, disconnected strip.
        let a = m.add_node(Point::new(100.0, 0.0), BoundaryKind::Boundary);
        let b = m.add_node(Point::new(101.0, 0.0), BoundaryKind::Boundary);
        let c = m.add_node(Point::new(100.0, 1.0), BoundaryKind::Boundary);
        m.add_element([a, b, c]).unwrap();
        let perm = cuthill_mckee(&m);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..m.node_count()).collect::<Vec<_>>());
    }

    #[test]
    fn single_triangle_keeps_bandwidth_two() {
        let mut m = TriMesh::new();
        let a = m.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
        let b = m.add_node(Point::new(1.0, 0.0), BoundaryKind::Boundary);
        let c = m.add_node(Point::new(0.0, 1.0), BoundaryKind::Boundary);
        m.add_element([a, b, c]).unwrap();
        let perm = cuthill_mckee(&m);
        m.renumber_nodes(&perm);
        assert_eq!(m.bandwidth(), 2);
    }
}

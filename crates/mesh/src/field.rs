//! Nodal scalar fields — the unit of OSPL input.

use std::fmt;

use crate::node::NodeId;

/// One scalar value per node of a mesh: a stress component, a temperature,
/// a displacement magnitude — whatever the analysis produced and the
/// analyst wants contoured ("at every node, one or more … values of
/// stress, strain, etc.").
///
/// # Examples
///
/// ```
/// use cafemio_mesh::{NodalField, NodeId};
/// let field = NodalField::new("EFFECTIVE STRESS", vec![10.0, 20.0, 35.0]);
/// assert_eq!(field.value(NodeId(2)), 35.0);
/// assert_eq!(field.min_max(), Some((10.0, 35.0)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NodalField {
    name: String,
    values: Vec<f64>,
}

impl NodalField {
    /// Creates a named field from per-node values (index = node id).
    pub fn new(name: &str, values: Vec<f64>) -> NodalField {
        NodalField {
            name: name.to_owned(),
            values,
        }
    }

    /// A zero field over `n` nodes.
    pub fn zeros(name: &str, n: usize) -> NodalField {
        NodalField::new(name, vec![0.0; n])
    }

    /// The field's display name (used as the plot title line).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodal values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the field holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at a node.
    ///
    /// # Panics
    ///
    /// Panics when the node id is out of range.
    pub fn value(&self, node: NodeId) -> f64 {
        self.values[node.index()]
    }

    /// Sets the value at a node.
    ///
    /// # Panics
    ///
    /// Panics when the node id is out of range.
    pub fn set(&mut self, node: NodeId, value: f64) {
        self.values[node.index()] = value;
    }

    /// All values in node order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Smallest and largest value, or `None` for an empty field. NaN
    /// values are ignored (they would poison the contour interval).
    pub fn min_max(&self) -> Option<(f64, f64)> {
        let mut it = self.values.iter().copied().filter(|v| !v.is_nan());
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Applies a node renumbering `permutation[old] = new`, keeping values
    /// attached to their nodes when the mesh is renumbered.
    ///
    /// # Panics
    ///
    /// Panics when `permutation` length differs from the field length or
    /// is not a permutation.
    pub fn renumber(&mut self, permutation: &[usize]) {
        assert_eq!(permutation.len(), self.values.len());
        let mut new_values = vec![f64::NAN; self.values.len()];
        for (old, &v) in self.values.iter().enumerate() {
            let slot = permutation[old];
            assert!(
                slot < new_values.len() && new_values[slot].is_nan(),
                "not a permutation"
            );
            new_values[slot] = v;
        }
        self.values = new_values;
    }
}

impl fmt::Display for NodalField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} values)", self.name, self.values.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_skips_nan() {
        let f = NodalField::new("T", vec![3.0, f64::NAN, -1.0]);
        assert_eq!(f.min_max(), Some((-1.0, 3.0)));
    }

    #[test]
    fn empty_field_has_no_extent() {
        assert_eq!(NodalField::new("T", vec![]).min_max(), None);
        assert!(NodalField::new("T", vec![]).is_empty());
    }

    #[test]
    fn zeros_constructor() {
        let f = NodalField::zeros("Z", 4);
        assert_eq!(f.len(), 4);
        assert_eq!(f.min_max(), Some((0.0, 0.0)));
    }

    #[test]
    fn set_and_get() {
        let mut f = NodalField::zeros("T", 3);
        f.set(NodeId(1), 7.5);
        assert_eq!(f.value(NodeId(1)), 7.5);
        assert_eq!(f.value(NodeId(0)), 0.0);
    }

    #[test]
    fn renumber_moves_values_with_nodes() {
        let mut f = NodalField::new("T", vec![10.0, 20.0, 30.0]);
        f.renumber(&[2, 0, 1]);
        assert_eq!(f.values(), &[20.0, 30.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn renumber_rejects_duplicates() {
        NodalField::new("T", vec![1.0, 2.0]).renumber(&[0, 0]);
    }

    #[test]
    fn display_includes_name_and_count() {
        let f = NodalField::zeros("SHEAR STRESS", 2);
        assert_eq!(f.to_string(), "SHEAR STRESS (2 values)");
    }
}

//! The triangle mesh container and its adjacency queries.

use std::collections::BTreeMap;
use std::fmt;

use cafemio_geom::{BoundingBox, Point, Triangle};

use crate::element::{Element, ElementId};
use crate::node::{BoundaryKind, Node, NodeId};
use crate::quality::QualityReport;

/// An undirected edge, stored with its node indices in ascending order so
/// it can key adjacency maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge(pub NodeId, pub NodeId);

impl Edge {
    /// Creates the canonical (sorted) form of an edge.
    ///
    /// # Panics
    ///
    /// Panics when both ends are the same node.
    pub fn new(a: NodeId, b: NodeId) -> Edge {
        assert!(a != b, "an edge needs two distinct nodes");
        if a < b {
            Edge(a, b)
        } else {
            Edge(b, a)
        }
    }
}

/// Errors raised by mesh construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// An element references a node index that does not exist.
    NodeOutOfRange {
        /// The offending reference.
        node: NodeId,
        /// Number of nodes in the mesh.
        node_count: usize,
    },
    /// An element references the same node more than once.
    RepeatedNode {
        /// The repeated node.
        node: NodeId,
    },
    /// Validation found an element with (numerically) zero area.
    DegenerateElement {
        /// The degenerate element.
        element: ElementId,
    },
    /// Validation found a node used by no element.
    OrphanNode {
        /// The unused node.
        node: NodeId,
    },
    /// An edge is shared by more than two elements (non-manifold mesh).
    NonManifoldEdge {
        /// The over-shared edge.
        edge: (NodeId, NodeId),
        /// How many elements share it.
        count: usize,
    },
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::NodeOutOfRange { node, node_count } => {
                write!(f, "element references {node} but mesh has {node_count} nodes")
            }
            MeshError::RepeatedNode { node } => {
                write!(f, "element references {node} more than once")
            }
            MeshError::DegenerateElement { element } => {
                write!(f, "{element} has zero area")
            }
            MeshError::OrphanNode { node } => {
                write!(f, "{node} is used by no element")
            }
            MeshError::NonManifoldEdge { edge, count } => {
                write!(
                    f,
                    "edge {}-{} is shared by {count} elements",
                    edge.0, edge.1
                )
            }
        }
    }
}

impl std::error::Error for MeshError {}

/// A triangle mesh: nodes (with positions and boundary flags) plus
/// three-node elements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TriMesh {
    nodes: Vec<Node>,
    elements: Vec<Element>,
}

impl TriMesh {
    /// An empty mesh.
    pub fn new() -> TriMesh {
        TriMesh::default()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, position: Point, boundary: BoundaryKind) -> NodeId {
        self.nodes.push(Node::new(position, boundary));
        NodeId(self.nodes.len() - 1)
    }

    /// Adds an element over existing nodes.
    ///
    /// # Errors
    ///
    /// [`MeshError::NodeOutOfRange`] or [`MeshError::RepeatedNode`] when
    /// the references are invalid. (Geometric degeneracy is *not* checked
    /// here — IDLZ legitimately creates badly shaped elements first and
    /// reforms them afterwards; call [`validate`](Self::validate) when the
    /// mesh should be final.)
    pub fn add_element(&mut self, nodes: [NodeId; 3]) -> Result<ElementId, MeshError> {
        for &n in &nodes {
            if n.index() >= self.nodes.len() {
                return Err(MeshError::NodeOutOfRange {
                    node: n,
                    node_count: self.nodes.len(),
                });
            }
        }
        if nodes[0] == nodes[1] || nodes[1] == nodes[2] || nodes[0] == nodes[2] {
            let repeated = if nodes[0] == nodes[1] || nodes[0] == nodes[2] {
                nodes[0]
            } else {
                nodes[1]
            };
            return Err(MeshError::RepeatedNode { node: repeated });
        }
        self.elements.push(Element::new(nodes));
        Ok(ElementId(self.elements.len() - 1))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node (shaping moves nodes in place).
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// The element with the given id.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.index()]
    }

    /// Mutable access to an element (the reformer rewrites corner lists).
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn element_mut(&mut self, id: ElementId) -> &mut Element {
        &mut self.elements[id.index()]
    }

    /// Iterator over `(NodeId, &Node)` in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Iterator over `(ElementId, &Element)` in id order.
    pub fn elements(&self) -> impl Iterator<Item = (ElementId, &Element)> {
        self.elements
            .iter()
            .enumerate()
            .map(|(i, e)| (ElementId(i), e))
    }

    /// Geometry of an element as a [`Triangle`].
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn triangle(&self, id: ElementId) -> Triangle {
        let el = self.element(id);
        Triangle::new(
            self.node(el.nodes[0]).position,
            self.node(el.nodes[1]).position,
            self.node(el.nodes[2]).position,
        )
    }

    /// Sum of element areas.
    pub fn total_area(&self) -> f64 {
        (0..self.elements.len())
            .map(|i| self.triangle(ElementId(i)).area())
            .sum()
    }

    /// Bounding box of all node positions.
    pub fn bounding_box(&self) -> BoundingBox {
        BoundingBox::from_points(self.nodes.iter().map(|n| n.position))
    }

    /// For every edge, the elements sharing it (1 on the boundary, 2 in
    /// the interior of a manifold mesh).
    pub fn edges(&self) -> BTreeMap<Edge, Vec<ElementId>> {
        let mut map: BTreeMap<Edge, Vec<ElementId>> = BTreeMap::new();
        for (id, el) in self.elements() {
            for (a, b) in el.edges() {
                map.entry(Edge::new(a, b)).or_default().push(id);
            }
        }
        map
    }

    /// Edges belonging to exactly one element — the mesh outline OSPL
    /// draws by "connecting adjacent boundary nodes by straight lines".
    pub fn boundary_edges(&self) -> Vec<Edge> {
        self.edges()
            .into_iter()
            .filter(|(_, els)| els.len() == 1)
            .map(|(e, _)| e)
            .collect()
    }

    /// For every node, the elements using it.
    pub fn node_elements(&self) -> Vec<Vec<ElementId>> {
        let mut map = vec![Vec::new(); self.nodes.len()];
        for (id, el) in self.elements() {
            for n in el.nodes {
                map[n.index()].push(id);
            }
        }
        map
    }

    /// Node-to-node adjacency (nodes sharing an element edge), sorted.
    pub fn node_adjacency(&self) -> Vec<Vec<NodeId>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for (edge, _) in self.edges() {
            adj[edge.0.index()].push(edge.1);
            adj[edge.1.index()].push(edge.0);
        }
        for list in &mut adj {
            list.sort();
            list.dedup();
        }
        adj
    }

    /// Semi-bandwidth of the node numbering: `max |i - j|` over all element
    /// node pairs. This is the quantity the paper's renumbering minimizes
    /// ("the size of the coefficient matrix bandwidth … is directly
    /// related to the numbering scheme").
    pub fn bandwidth(&self) -> usize {
        self.elements
            .iter()
            .flat_map(|el| {
                let [a, b, c] = el.nodes;
                [
                    a.index().abs_diff(b.index()),
                    b.index().abs_diff(c.index()),
                    a.index().abs_diff(c.index()),
                ]
            })
            .max()
            .unwrap_or(0)
    }

    /// Applies a node renumbering: `permutation[old] = new`. Node storage
    /// is reordered and every element reference rewritten.
    ///
    /// # Panics
    ///
    /// Panics when `permutation` is not a permutation of `0..node_count`.
    pub fn renumber_nodes(&mut self, permutation: &[usize]) {
        assert_eq!(
            permutation.len(),
            self.nodes.len(),
            "permutation length must equal node count"
        );
        let mut seen = vec![false; permutation.len()];
        for &p in permutation {
            assert!(p < permutation.len() && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let mut new_nodes = vec![
            Node::new(Point::ORIGIN, BoundaryKind::Interior);
            self.nodes.len()
        ];
        for (old, node) in self.nodes.iter().enumerate() {
            new_nodes[permutation[old]] = *node;
        }
        self.nodes = new_nodes;
        for el in &mut self.elements {
            for n in &mut el.nodes {
                *n = NodeId(permutation[n.index()]);
            }
        }
    }

    /// Element-shape statistics (see [`QualityReport`]).
    pub fn quality(&self) -> QualityReport {
        QualityReport::measure(self)
    }

    /// Recomputes every node's [`BoundaryKind`] from the current
    /// connectivity: nodes on single-element edges are `Boundary`,
    /// downgraded to `BoundaryCorner` when they belong to exactly one
    /// element, everything else `Interior` — the flags OSPL's Type-3
    /// cards carry.
    pub fn classify_boundary(&mut self) {
        let boundary_edges = self.boundary_edges();
        let node_elements = self.node_elements();
        let mut on_boundary = vec![false; self.node_count()];
        for edge in boundary_edges {
            on_boundary[edge.0.index()] = true;
            on_boundary[edge.1.index()] = true;
        }
        for i in 0..self.node_count() {
            self.nodes[i].boundary = if !on_boundary[i] {
                BoundaryKind::Interior
            } else if node_elements[i].len() == 1 {
                BoundaryKind::BoundaryCorner
            } else {
                BoundaryKind::Boundary
            };
        }
    }

    /// Merges nodes whose positions coincide within `tol`, rewriting
    /// element references, dropping the duplicates, and re-classifying
    /// the boundary. Returns the number of nodes removed.
    ///
    /// This is how a seam left by a closed-loop idealization (the
    /// circular ring of Figure 11 is built as an open strip of four
    /// quarters) is sealed before analysis.
    ///
    /// # Panics
    ///
    /// Panics when `tol` is negative.
    pub fn merge_coincident_nodes(&mut self, tol: f64) -> usize {
        assert!(tol >= 0.0, "merge tolerance must be non-negative");
        let n = self.node_count();
        // Quantized spatial buckets; compare within the 3×3 neighbourhood
        // so near-boundary pairs are not missed.
        let cell = tol.max(1e-300);
        let mut buckets: BTreeMap<(i64, i64), Vec<usize>> = BTreeMap::new();
        let key = |p: Point| ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64);
        let mut canon: Vec<usize> = Vec::with_capacity(n);
        for i in 0..n {
            let p = self.nodes[i].position;
            let (kx, ky) = key(p);
            let mut found = None;
            'search: for dx in -1..=1 {
                for dy in -1..=1 {
                    if let Some(candidates) = buckets.get(&(kx + dx, ky + dy)) {
                        for &j in candidates {
                            if self.nodes[j].position.approx_eq(p, tol) {
                                found = Some(j);
                                break 'search;
                            }
                        }
                    }
                }
            }
            match found {
                Some(j) => canon.push(j),
                None => {
                    buckets.entry((kx, ky)).or_default().push(i);
                    canon.push(i);
                }
            }
        }
        // Compact the survivors.
        let mut new_index = vec![usize::MAX; n];
        let mut survivors = Vec::new();
        for i in 0..n {
            if canon[i] == i {
                new_index[i] = survivors.len();
                survivors.push(self.nodes[i]);
            }
        }
        for i in 0..n {
            if canon[i] != i {
                new_index[i] = new_index[canon[i]];
            }
        }
        let removed = n - survivors.len();
        if removed == 0 {
            return 0;
        }
        self.nodes = survivors;
        for el in &mut self.elements {
            for node in &mut el.nodes {
                *node = NodeId(new_index[node.index()]);
            }
        }
        self.classify_boundary();
        removed
    }

    /// One level of uniform refinement: every triangle splits into four
    /// at its edge midpoints (shared edges share their midpoint node).
    /// Boundary flags are recomputed. Node positions interpolate
    /// linearly, so refined boundaries stay on the coarse mesh's
    /// polygonal outline — use it for h-convergence studies, not to
    /// recover curved geometry.
    pub fn refined(&self) -> TriMesh {
        let mut fine = TriMesh::new();
        for node in &self.nodes {
            fine.add_node(node.position, node.boundary);
        }
        let mut midpoints: BTreeMap<Edge, NodeId> = BTreeMap::new();
        let mut midpoint = |fine: &mut TriMesh, a: NodeId, b: NodeId| -> NodeId {
            let edge = Edge::new(a, b);
            if let Some(&id) = midpoints.get(&edge) {
                return id;
            }
            let p = self.nodes[a.index()]
                .position
                .midpoint(self.nodes[b.index()].position);
            let id = fine.add_node(p, BoundaryKind::Interior);
            midpoints.insert(edge, id);
            id
        };
        for el in &self.elements {
            let [a, b, c] = el.nodes;
            let ab = midpoint(&mut fine, a, b);
            let bc = midpoint(&mut fine, b, c);
            let ca = midpoint(&mut fine, c, a);
            for tri in [[a, ab, ca], [ab, b, bc], [ca, bc, c], [ab, bc, ca]] {
                fine.add_element(tri)
                    // invariant: the corner and midpoint ids were all just
                    // added to `fine`.
                    .expect("refinement references existing nodes");
            }
        }
        fine.classify_boundary();
        fine
    }

    /// Full structural validation for a finished mesh.
    ///
    /// # Errors
    ///
    /// The first problem found among: out-of-range or repeated node
    /// references, zero-area elements, orphan nodes, non-manifold edges.
    pub fn validate(&self) -> Result<(), MeshError> {
        let mut used = vec![false; self.nodes.len()];
        for (id, el) in self.elements() {
            for &n in &el.nodes {
                if n.index() >= self.nodes.len() {
                    return Err(MeshError::NodeOutOfRange {
                        node: n,
                        node_count: self.nodes.len(),
                    });
                }
                used[n.index()] = true;
            }
            if el.nodes[0] == el.nodes[1]
                || el.nodes[1] == el.nodes[2]
                || el.nodes[0] == el.nodes[2]
            {
                return Err(MeshError::RepeatedNode { node: el.nodes[0] });
            }
            if self.triangle(id).area() <= f64::EPSILON {
                return Err(MeshError::DegenerateElement { element: id });
            }
        }
        if let Some(orphan) = used.iter().position(|u| !u) {
            if !self.elements.is_empty() {
                return Err(MeshError::OrphanNode {
                    node: NodeId(orphan),
                });
            }
        }
        for (edge, els) in self.edges() {
            if els.len() > 2 {
                return Err(MeshError::NonManifoldEdge {
                    edge: (edge.0, edge.1),
                    count: els.len(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles sharing the diagonal of a unit square.
    fn square() -> TriMesh {
        let mut m = TriMesh::new();
        let a = m.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
        let b = m.add_node(Point::new(1.0, 0.0), BoundaryKind::Boundary);
        let c = m.add_node(Point::new(1.0, 1.0), BoundaryKind::Boundary);
        let d = m.add_node(Point::new(0.0, 1.0), BoundaryKind::Boundary);
        m.add_element([a, b, c]).unwrap();
        m.add_element([a, c, d]).unwrap();
        m
    }

    #[test]
    fn counts_and_area() {
        let m = square();
        assert_eq!(m.node_count(), 4);
        assert_eq!(m.element_count(), 2);
        assert!((m.total_area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_edges_of_square() {
        let m = square();
        let boundary = m.boundary_edges();
        assert_eq!(boundary.len(), 4);
        // The diagonal a-c is interior.
        assert!(!boundary.contains(&Edge::new(NodeId(0), NodeId(2))));
    }

    #[test]
    fn bandwidth_of_square() {
        let m = square();
        // Element [0,1,2] has pair 0-2; element [0,2,3] has pair 0-3.
        assert_eq!(m.bandwidth(), 3);
    }

    #[test]
    fn renumber_preserves_geometry_and_bandwidth_changes() {
        let mut m = square();
        let before_area = m.total_area();
        // Reverse the numbering.
        m.renumber_nodes(&[3, 2, 1, 0]);
        assert!((m.total_area() - before_area).abs() < 1e-12);
        assert_eq!(m.node(NodeId(3)).position, Point::new(0.0, 0.0));
        m.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_permutation_panics() {
        square().renumber_nodes(&[0, 0, 1, 2]);
    }

    #[test]
    fn add_element_rejects_bad_references() {
        let mut m = TriMesh::new();
        let a = m.add_node(Point::new(0.0, 0.0), BoundaryKind::Interior);
        let b = m.add_node(Point::new(1.0, 0.0), BoundaryKind::Interior);
        assert!(matches!(
            m.add_element([a, b, NodeId(5)]),
            Err(MeshError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            m.add_element([a, b, a]),
            Err(MeshError::RepeatedNode { .. })
        ));
    }

    #[test]
    fn validate_flags_degenerate_element() {
        let mut m = TriMesh::new();
        let a = m.add_node(Point::new(0.0, 0.0), BoundaryKind::Interior);
        let b = m.add_node(Point::new(1.0, 0.0), BoundaryKind::Interior);
        let c = m.add_node(Point::new(2.0, 0.0), BoundaryKind::Interior);
        m.add_element([a, b, c]).unwrap();
        assert!(matches!(
            m.validate(),
            Err(MeshError::DegenerateElement { .. })
        ));
    }

    #[test]
    fn validate_flags_orphan_node() {
        let mut m = square();
        m.add_node(Point::new(9.0, 9.0), BoundaryKind::Interior);
        assert!(matches!(m.validate(), Err(MeshError::OrphanNode { .. })));
    }

    #[test]
    fn validate_flags_non_manifold_edge() {
        let mut m = square();
        // A third element on edge a-c.
        let e = m.add_node(Point::new(2.0, 0.5), BoundaryKind::Interior);
        m.add_element([NodeId(0), NodeId(2), e]).unwrap();
        assert!(matches!(
            m.validate(),
            Err(MeshError::NonManifoldEdge { count: 3, .. })
        ));
    }

    #[test]
    fn node_adjacency_sorted_unique() {
        let m = square();
        let adj = m.node_adjacency();
        assert_eq!(adj[0], vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(adj[1], vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn node_elements_inverse_map() {
        let m = square();
        let map = m.node_elements();
        assert_eq!(map[0], vec![ElementId(0), ElementId(1)]);
        assert_eq!(map[1], vec![ElementId(0)]);
    }

    #[test]
    fn empty_mesh_is_valid_and_harmless() {
        let m = TriMesh::new();
        assert_eq!(m.bandwidth(), 0);
        assert_eq!(m.total_area(), 0.0);
        m.validate().unwrap();
        assert!(m.bounding_box().is_empty());
    }

    #[test]
    fn merge_coincident_seals_a_seam() {
        // Two squares meeting along x = 1, built with duplicated seam
        // nodes.
        let mut m = TriMesh::new();
        let a = m.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
        let b1 = m.add_node(Point::new(1.0, 0.0), BoundaryKind::Boundary);
        let c1 = m.add_node(Point::new(1.0, 1.0), BoundaryKind::Boundary);
        let d = m.add_node(Point::new(0.0, 1.0), BoundaryKind::Boundary);
        let b2 = m.add_node(Point::new(1.0, 0.0), BoundaryKind::Boundary); // dup
        let c2 = m.add_node(Point::new(1.0, 1.0), BoundaryKind::Boundary); // dup
        let e = m.add_node(Point::new(2.0, 0.0), BoundaryKind::Boundary);
        let f = m.add_node(Point::new(2.0, 1.0), BoundaryKind::Boundary);
        m.add_element([a, b1, c1]).unwrap();
        m.add_element([a, c1, d]).unwrap();
        m.add_element([b2, e, f]).unwrap();
        m.add_element([b2, f, c2]).unwrap();
        // Before: the seam edges each appear once → 8 boundary edges.
        assert_eq!(m.boundary_edges().len(), 8);
        let removed = m.merge_coincident_nodes(1e-9);
        assert_eq!(removed, 2);
        assert_eq!(m.node_count(), 6);
        m.validate().unwrap();
        // After: the seam is interior; the outline is the 2×1 rectangle
        // (6 boundary edges: the long sides are split at the old seam).
        assert_eq!(m.boundary_edges().len(), 6);
        // Seam nodes reclassified as interior.
        let interior = m.nodes().filter(|(_, n)| !n.boundary.is_boundary()).count();
        assert_eq!(interior, 0); // 2×1 rectangle of 2 cells: all on outline
        assert!((m.total_area() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn refinement_quadruples_elements_and_preserves_area() {
        let coarse = square();
        let fine = coarse.refined();
        assert_eq!(fine.element_count(), 4 * coarse.element_count());
        // Nodes: 4 original + 5 edge midpoints (the shared diagonal's
        // midpoint counted once).
        assert_eq!(fine.node_count(), 4 + 5);
        assert!((fine.total_area() - coarse.total_area()).abs() < 1e-12);
        fine.validate().unwrap();
        // The outline is unchanged in total length.
        let length = |m: &TriMesh| -> f64 {
            m.boundary_edges()
                .iter()
                .map(|e| m.node(e.0).position.distance_to(m.node(e.1).position))
                .sum()
        };
        assert!((length(&coarse) - length(&fine)).abs() < 1e-12);
    }

    #[test]
    fn refinement_preserves_quality_bounds() {
        // Midpoint subdivision produces four similar triangles: the
        // minimum angle of the mesh is unchanged.
        let mut m = TriMesh::new();
        let a = m.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
        let b = m.add_node(Point::new(5.0, 0.0), BoundaryKind::Boundary);
        let c = m.add_node(Point::new(1.0, 2.0), BoundaryKind::Boundary);
        m.add_element([a, b, c]).unwrap();
        let fine = m.refined();
        assert!((fine.quality().min_angle - m.quality().min_angle).abs() < 1e-12);
    }

    #[test]
    fn merge_is_a_noop_without_duplicates() {
        let mut m = square();
        assert_eq!(m.merge_coincident_nodes(1e-9), 0);
        assert_eq!(m.node_count(), 4);
    }

    #[test]
    fn classify_boundary_matches_flags() {
        let mut m = square();
        // Scramble the flags, then restore them.
        for i in 0..m.node_count() {
            m.node_mut(NodeId(i)).boundary = BoundaryKind::Interior;
        }
        m.classify_boundary();
        assert!(m.nodes().all(|(_, n)| n.boundary.is_boundary()));
        // In the two-triangle square every node is on the outline; the
        // two diagonal-free corners belong to a single element each.
        let corners = m
            .nodes()
            .filter(|(_, n)| n.boundary == BoundaryKind::BoundaryCorner)
            .count();
        assert_eq!(corners, 2);
    }

    #[test]
    fn edge_canonicalizes_order() {
        assert_eq!(Edge::new(NodeId(5), NodeId(2)), Edge::new(NodeId(2), NodeId(5)));
    }

    #[test]
    #[should_panic(expected = "two distinct nodes")]
    fn self_edge_panics() {
        Edge::new(NodeId(1), NodeId(1));
    }
}

//! # cafemio-mesh
//!
//! Triangle-mesh substrate shared by IDLZ (which produces meshes), OSPL
//! (which plots fields on them), and the finite element solvers (which
//! assemble over them).
//!
//! The central type is [`TriMesh`]: indexed nodes with the paper's
//! boundary flags (OSPL's Type-3 card carries `N(I)` = 0/1/2 for interior /
//! boundary / boundary-in-one-element-only nodes) and three-node elements.
//! Around it sit:
//!
//! * adjacency queries ([`TriMesh::node_elements`], [`TriMesh::edges`],
//!   [`TriMesh::boundary_edges`]),
//! * the matrix [`bandwidth`](TriMesh::bandwidth) that IDLZ's renumbering
//!   pass minimizes,
//! * [`cuthill_mckee`] / [`reverse_cuthill_mckee`] orderings (the paper's
//!   "numbering scheme of Reference 2 … to ensure a narrow bandwidth"),
//! * [`NodalField`] — one scalar per node, the unit of OSPL input,
//! * [`MeshIndex`] — a deterministic BVH over elements and edges that
//!   turns the contour path's point-against-mesh scans into logarithmic
//!   queries (bit-identical to the scans),
//! * [`FieldProbe`] — `field.sample(x, y)` point evaluation and
//!   line-graph extraction along arbitrary cut paths,
//! * [`QualityReport`] — the element-shape statistics IDLZ's reforming
//!   pass improves.
//!
//! # Examples
//!
//! ```
//! use cafemio_geom::Point;
//! use cafemio_mesh::{BoundaryKind, TriMesh};
//! # fn main() -> Result<(), cafemio_mesh::MeshError> {
//! let mut mesh = TriMesh::new();
//! let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
//! let b = mesh.add_node(Point::new(1.0, 0.0), BoundaryKind::Boundary);
//! let c = mesh.add_node(Point::new(0.0, 1.0), BoundaryKind::Boundary);
//! mesh.add_element([a, b, c])?;
//! assert_eq!(mesh.node_count(), 3);
//! assert!((mesh.total_area() - 0.5).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]

mod bandwidth;
mod element;
mod field;
mod index;
mod mesh;
mod node;
mod probe;
mod quality;

pub use bandwidth::{cuthill_mckee, reverse_cuthill_mckee};
pub use element::{Element, ElementId};
pub use field::NodalField;
pub use index::MeshIndex;
pub use mesh::{Edge, MeshError, TriMesh};
pub use node::{BoundaryKind, Node, NodeId};
pub use probe::{FieldProbe, ProbeError, Sample};
pub use quality::QualityReport;

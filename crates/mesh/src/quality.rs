//! Element-shape statistics.

use crate::mesh::TriMesh;

/// Shape statistics over all elements of a mesh.
///
/// The paper's reforming pass exists because the first, "convenient
/// arbitrary" element creation "often produces elements having shapes quite
/// different from the most desirable equilateral shape" — these numbers
/// quantify how far a mesh is from that ideal, and the reform benches
/// (experiment F9/F10) report them before and after.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Number of elements measured.
    pub element_count: usize,
    /// Smallest interior angle over the whole mesh, radians.
    pub min_angle: f64,
    /// Mean over elements of each element's smallest angle, radians.
    pub mean_min_angle: f64,
    /// Largest interior angle over the whole mesh, radians.
    pub max_angle: f64,
    /// Worst (largest) edge-length aspect ratio.
    pub worst_aspect: f64,
    /// Elements whose smallest angle is below 15° — the "needle-like
    /// corners" of Figure 9b.
    pub needle_count: usize,
}

/// Threshold below which a corner counts as needle-like (radians).
pub(crate) const NEEDLE_ANGLE: f64 = 15.0 * std::f64::consts::PI / 180.0;

impl QualityReport {
    /// Measures a mesh. Empty meshes yield a report of zeros.
    pub fn measure(mesh: &TriMesh) -> QualityReport {
        let mut report = QualityReport {
            element_count: mesh.element_count(),
            min_angle: f64::INFINITY,
            mean_min_angle: 0.0,
            max_angle: 0.0,
            worst_aspect: 0.0,
            needle_count: 0,
        };
        if mesh.element_count() == 0 {
            report.min_angle = 0.0;
            return report;
        }
        let mut sum_min = 0.0;
        for (id, _) in mesh.elements() {
            let tri = mesh.triangle(id);
            let min = tri.min_angle();
            let max = tri.max_angle();
            sum_min += min;
            report.min_angle = report.min_angle.min(min);
            report.max_angle = report.max_angle.max(max);
            report.worst_aspect = report.worst_aspect.max(tri.aspect_ratio());
            if min < NEEDLE_ANGLE {
                report.needle_count += 1;
            }
        }
        report.mean_min_angle = sum_min / mesh.element_count() as f64;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::BoundaryKind;
    use cafemio_geom::Point;

    #[test]
    fn equilateral_mesh_is_perfect() {
        let mut m = TriMesh::new();
        let a = m.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
        let b = m.add_node(Point::new(1.0, 0.0), BoundaryKind::Boundary);
        let c = m.add_node(Point::new(0.5, 0.75_f64.sqrt()), BoundaryKind::Boundary);
        m.add_element([a, b, c]).unwrap();
        let q = m.quality();
        assert_eq!(q.element_count, 1);
        assert!((q.min_angle.to_degrees() - 60.0).abs() < 1e-9);
        assert!((q.worst_aspect - 1.0).abs() < 1e-9);
        assert_eq!(q.needle_count, 0);
    }

    #[test]
    fn needle_detected() {
        let mut m = TriMesh::new();
        let a = m.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
        let b = m.add_node(Point::new(10.0, 0.0), BoundaryKind::Boundary);
        let c = m.add_node(Point::new(5.0, 0.1), BoundaryKind::Boundary);
        m.add_element([a, b, c]).unwrap();
        let q = m.quality();
        assert_eq!(q.needle_count, 1);
        assert!(q.min_angle.to_degrees() < 2.0);
        assert!(q.max_angle.to_degrees() > 175.0);
    }

    #[test]
    fn empty_mesh_report_is_zero() {
        let q = TriMesh::new().quality();
        assert_eq!(q.element_count, 0);
        assert_eq!(q.min_angle, 0.0);
        assert_eq!(q.needle_count, 0);
    }

    #[test]
    fn mean_min_angle_averages() {
        let mut m = TriMesh::new();
        // One equilateral, one right isoceles.
        let a = m.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
        let b = m.add_node(Point::new(1.0, 0.0), BoundaryKind::Boundary);
        let c = m.add_node(Point::new(0.5, 0.75_f64.sqrt()), BoundaryKind::Boundary);
        let d = m.add_node(Point::new(1.0, -1.0), BoundaryKind::Boundary);
        m.add_element([a, b, c]).unwrap();
        m.add_element([a, b, d]).unwrap();
        let q = m.quality();
        let expected = (60.0 + 45.0) / 2.0;
        assert!((q.mean_min_angle.to_degrees() - expected).abs() < 1e-9);
    }
}

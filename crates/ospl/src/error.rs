//! Error type for the plotting pipeline.

use std::fmt;

use cafemio_cards::CardError;
use cafemio_mesh::MeshError;

/// Errors raised by OSPL.
#[derive(Debug, Clone, PartialEq)]
pub enum OsplError {
    /// The field length does not match the mesh node count.
    FieldSizeMismatch {
        /// Nodes in the mesh.
        nodes: usize,
        /// Values in the field.
        values: usize,
    },
    /// One of Table 1's numerical restrictions is exceeded.
    LimitExceeded {
        /// Which limit.
        what: &'static str,
        /// The attempted count.
        attempted: usize,
        /// The limit in force.
        limit: usize,
    },
    /// The field is constant (or empty), so no contour interval exists.
    NoContours,
    /// A user-supplied contour interval is not positive.
    BadInterval {
        /// The offending value.
        interval: f64,
    },
    /// A zoom window is inverted or degenerate.
    BadWindow {
        /// Human-readable reason.
        reason: String,
    },
    /// The underlying mesh is invalid.
    Mesh(MeshError),
    /// Card input/output failed.
    Card(CardError),
    /// A card deck is structurally malformed.
    BadDeck {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for OsplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsplError::FieldSizeMismatch { nodes, values } => write!(
                f,
                "field has {values} values but the mesh has {nodes} nodes"
            ),
            OsplError::LimitExceeded {
                what,
                attempted,
                limit,
            } => write!(
                f,
                "numerical restriction exceeded: {attempted} {what} (limit {limit})"
            ),
            OsplError::NoContours => {
                write!(f, "field is constant or empty; nothing to contour")
            }
            OsplError::BadInterval { interval } => {
                write!(f, "contour interval {interval} must be positive")
            }
            OsplError::BadWindow { reason } => write!(f, "bad zoom window: {reason}"),
            OsplError::Mesh(e) => write!(f, "mesh error: {e}"),
            OsplError::Card(e) => write!(f, "card error: {e}"),
            OsplError::BadDeck { reason } => write!(f, "malformed deck: {reason}"),
        }
    }
}

impl std::error::Error for OsplError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OsplError::Mesh(e) => Some(e),
            OsplError::Card(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MeshError> for OsplError {
    fn from(e: MeshError) -> Self {
        OsplError::Mesh(e)
    }
}

impl From<CardError> for OsplError {
    fn from(e: CardError) -> Self {
        OsplError::Card(e)
    }
}

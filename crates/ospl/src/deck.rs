//! Appendix-C card decks for OSPL.
//!
//! Four card types: the Type-1 control card (`NN, NE, XMX, XMN, YMX, YMN,
//! DELTA`), two Type-2 title cards, one Type-3 card per node (`X, Y, S,
//! N` — "the order of these cards specifies the order in which the nodes
//! are numbered"), and one Type-4 card per element (three node numbers).

use cafemio_cards::{Card, Deck, Field, Format, FormatReader, FormatWriter};
use cafemio_geom::{BoundingBox, Point};
use cafemio_mesh::{BoundaryKind, NodalField, NodeId, TriMesh};

use crate::ospl::ContourOptions;
use crate::OsplError;

fn fmt(spec: &str) -> Format {
    // invariant: only called with compiled-in Appendix-A format literals.
    spec.parse().expect("internal format literal is valid")
}

/// A parsed OSPL input deck.
#[derive(Debug, Clone)]
pub struct OsplInput {
    /// The mesh (positions + boundary flags from the Type-3 cards,
    /// elements from the Type-4 cards).
    pub mesh: TriMesh,
    /// The nodal values to contour, named after the first title card.
    pub field: NodalField,
    /// Window and interval from the Type-1 card.
    pub options: ContourOptions,
    /// The two title cards.
    pub titles: (String, String),
}

/// Parses an Appendix-C deck.
///
/// A `DELTA` of zero selects the automatic interval; an all-zero window
/// plots everything (the appendix requires explicit extents, but an
/// all-zero card is the conventional "no zoom" sentinel in surviving
/// decks of this kind).
///
/// # Errors
///
/// [`OsplError::BadDeck`] for structural problems, [`OsplError::Card`]
/// for unreadable fields, [`OsplError::Mesh`] for bad element references.
///
/// # Examples
///
/// ```
/// use cafemio_cards::Deck;
/// use cafemio_ospl::deck::parse_ospl_deck;
/// # fn main() -> Result<(), cafemio_ospl::OsplError> {
/// let text = concat!(
///     "    3    1    4.0       0.0       3.0       0.0       10.0\n",
///     "FIGURE 12 TRIANGLE\n",
///     "DEMONSTRATION DATA\n",
///     "  0.00000  0.00000                           5.0002\n",
///     "  4.00000  0.00000                          15.0002\n",
///     "  2.00000  3.00000                          35.0002\n",
///     "    1    2    3\n",
/// );
/// let input = parse_ospl_deck(&Deck::from_text(text)?)?;
/// assert_eq!(input.mesh.node_count(), 3);
/// assert_eq!(input.options.interval, Some(10.0));
/// # Ok(())
/// # }
/// ```
pub fn parse_ospl_deck(deck: &Deck) -> Result<OsplInput, OsplError> {
    let mut at = 0usize;
    let mut next = |what: &str| -> Result<&Card, OsplError> {
        if at >= deck.len() {
            return Err(OsplError::BadDeck {
                reason: format!("deck ends where a {what} card was expected"),
            });
        }
        let card = deck.card(at);
        at += 1;
        Ok(card)
    };

    // Type 1.
    let t1 = FormatReader::new(&fmt("(2I5, 5F10.4)"))
        .read_record(next("control (Type 1)")?.text())
        .map_err(OsplError::Card)?;
    let nn = t1[0].as_i64().unwrap_or(0);
    let ne = t1[1].as_i64().unwrap_or(0);
    if nn <= 0 || ne <= 0 {
        return Err(OsplError::BadDeck {
            reason: format!("NN = {nn}, NE = {ne} must both be positive"),
        });
    }
    let (xmx, xmn, ymx, ymn, delta) = (
        t1[2].as_f64().unwrap_or(0.0),
        t1[3].as_f64().unwrap_or(0.0),
        t1[4].as_f64().unwrap_or(0.0),
        t1[5].as_f64().unwrap_or(0.0),
        t1[6].as_f64().unwrap_or(0.0),
    );
    let window = if xmx == 0.0 && xmn == 0.0 && ymx == 0.0 && ymn == 0.0 {
        None
    } else if xmx > xmn && ymx > ymn {
        Some(BoundingBox::new(
            Point::new(xmn, ymn),
            Point::new(xmx, ymx),
        ))
    } else {
        return Err(OsplError::BadWindow {
            reason: format!("XMX {xmx} / XMN {xmn} / YMX {ymx} / YMN {ymn} are inconsistent"),
        });
    };

    // Type 2: two titles.
    let title1 = next("title (Type 2)")?.trimmed().to_owned();
    let title2 = next("title (Type 2)")?.trimmed().to_owned();

    // Type 3: nodes.
    let t3_format = fmt("(2F9.5, 22X, F10.3, I1)");
    let t3_reader = FormatReader::new(&t3_format);
    let mut mesh = TriMesh::new();
    let mut values = Vec::with_capacity(nn as usize);
    for _ in 0..nn {
        let v = t3_reader
            .read_record(next("nodal (Type 3)")?.text())
            .map_err(OsplError::Card)?;
        let x = v[0].as_f64().unwrap_or(0.0);
        let y = v[1].as_f64().unwrap_or(0.0);
        let s = v[2].as_f64().unwrap_or(0.0);
        let n = v[3].as_i64().unwrap_or(0);
        mesh.add_node(Point::new(x, y), BoundaryKind::from_flag(n));
        values.push(s);
    }

    // Type 4: elements (one-based node numbers).
    let t4_reader_format = fmt("(3I5)");
    let t4_reader = FormatReader::new(&t4_reader_format);
    for _ in 0..ne {
        let v = t4_reader
            .read_record(next("element (Type 4)")?.text())
            .map_err(OsplError::Card)?;
        let mut nodes = [NodeId(0); 3];
        for (slot, field) in nodes.iter_mut().zip(&v) {
            let one_based = field.as_i64().unwrap_or(0);
            if one_based < 1 || one_based > nn {
                return Err(OsplError::BadDeck {
                    reason: format!("element references node {one_based} of {nn}"),
                });
            }
            *slot = NodeId(one_based as usize - 1);
        }
        mesh.add_element(nodes)?;
    }

    let options = ContourOptions {
        interval: if delta == 0.0 { None } else { Some(delta) },
        window,
        title: Some(title1.clone()),
        ..ContourOptions::default()
    };
    Ok(OsplInput {
        mesh,
        field: NodalField::new(&title1, values),
        options,
        titles: (title1, title2),
    })
}

/// Writes a mesh + field back to an Appendix-C deck.
///
/// # Errors
///
/// [`OsplError::Card`] when a value does not fit its field.
pub fn write_ospl_deck(
    mesh: &TriMesh,
    field: &NodalField,
    options: &ContourOptions,
    titles: (&str, &str),
) -> Result<Deck, OsplError> {
    if field.len() != mesh.node_count() {
        return Err(OsplError::FieldSizeMismatch {
            nodes: mesh.node_count(),
            values: field.len(),
        });
    }
    let mut deck = Deck::new();
    let (xmn, xmx, ymn, ymx) = match options.window {
        Some(w) => (w.min().x, w.max().x, w.min().y, w.max().y),
        None => (0.0, 0.0, 0.0, 0.0),
    };
    let t1 = fmt("(2I5, 5F10.4)");
    let record = FormatWriter::new(&t1)
        .write_record(&[
            Field::from(mesh.node_count()),
            Field::from(mesh.element_count()),
            Field::Real(xmx),
            Field::Real(xmn),
            Field::Real(ymx),
            Field::Real(ymn),
            Field::Real(options.interval.unwrap_or(0.0)),
        ])
        .map_err(OsplError::Card)?;
    deck.push(Card::new(&record).map_err(OsplError::Card)?);
    deck.push_text(titles.0).map_err(OsplError::Card)?;
    deck.push_text(titles.1).map_err(OsplError::Card)?;
    let t3 = fmt("(2F9.5, 22X, F10.3, I1)");
    let w3 = FormatWriter::new(&t3);
    for (id, node) in mesh.nodes() {
        let record = w3
            .write_record(&[
                Field::Real(node.position.x),
                Field::Real(node.position.y),
                Field::Real(field.value(id)),
                Field::Int(node.boundary.to_flag()),
            ])
            .map_err(OsplError::Card)?;
        deck.push(Card::new(&record).map_err(OsplError::Card)?);
    }
    let t4 = fmt("(3I5)");
    let w4 = FormatWriter::new(&t4);
    for (_, el) in mesh.elements() {
        let record = w4
            .write_record(&[
                Field::from(el.nodes[0].index() + 1),
                Field::from(el.nodes[1].index() + 1),
                Field::from(el.nodes[2].index() + 1),
            ])
            .map_err(OsplError::Card)?;
        deck.push(Card::new(&record).map_err(OsplError::Card)?);
    }
    Ok(deck)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (TriMesh, NodalField) {
        let mut mesh = TriMesh::new();
        let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
        let b = mesh.add_node(Point::new(4.0, 0.0), BoundaryKind::BoundaryCorner);
        let c = mesh.add_node(Point::new(2.0, 3.0), BoundaryKind::Interior);
        let d = mesh.add_node(Point::new(0.0, 3.0), BoundaryKind::Boundary);
        mesh.add_element([a, b, c]).unwrap();
        mesh.add_element([a, c, d]).unwrap();
        (mesh, NodalField::new("S", vec![5.0, 15.0, 35.0, 10.5]))
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (mesh, field) = sample();
        let options = ContourOptions {
            interval: Some(10.0),
            window: Some(BoundingBox::new(
                Point::new(-1.0, -1.0),
                Point::new(5.0, 4.0),
            )),
            ..ContourOptions::default()
        };
        let deck = write_ospl_deck(&mesh, &field, &options, ("TITLE ONE", "TITLE TWO")).unwrap();
        let input = parse_ospl_deck(&deck).unwrap();
        assert_eq!(input.mesh.node_count(), 4);
        assert_eq!(input.mesh.element_count(), 2);
        assert_eq!(input.titles.0, "TITLE ONE");
        assert_eq!(input.options.interval, Some(10.0));
        assert_eq!(input.options.window, options.window);
        for (id, node) in mesh.nodes() {
            let got = input.mesh.node(id);
            assert!(got.position.approx_eq(node.position, 1e-5));
            assert_eq!(got.boundary, node.boundary);
            assert!((input.field.value(id) - field.value(id)).abs() < 1e-3);
        }
        for (id, el) in mesh.elements() {
            assert_eq!(input.mesh.element(id).nodes, el.nodes);
        }
    }

    #[test]
    fn zero_window_and_delta_mean_automatic() {
        let (mesh, field) = sample();
        let deck =
            write_ospl_deck(&mesh, &field, &ContourOptions::new(), ("A", "B")).unwrap();
        let input = parse_ospl_deck(&deck).unwrap();
        assert_eq!(input.options.interval, None);
        assert_eq!(input.options.window, None);
    }

    #[test]
    fn bad_element_reference_rejected() {
        let (mesh, field) = sample();
        let deck = write_ospl_deck(&mesh, &field, &ContourOptions::new(), ("A", "B")).unwrap();
        // Corrupt the first element card to reference node 9.
        let mut lines: Vec<String> = deck.to_text().lines().map(String::from).collect();
        let first_element = lines.len() - 2;
        lines[first_element] = "    9    2    3".to_owned();
        let corrupted = Deck::from_text(&lines.join("\n")).unwrap();
        assert!(matches!(
            parse_ospl_deck(&corrupted).unwrap_err(),
            OsplError::BadDeck { .. }
        ));
    }

    #[test]
    fn inconsistent_window_rejected() {
        let (mesh, field) = sample();
        let deck = write_ospl_deck(&mesh, &field, &ContourOptions::new(), ("A", "B")).unwrap();
        let mut lines: Vec<String> = deck.to_text().lines().map(String::from).collect();
        // XMX < XMN.
        lines[0] =
            "    4    2    1.0       2.0       3.0       0.0       0.0".to_owned();
        let corrupted = Deck::from_text(&lines.join("\n")).unwrap();
        assert!(matches!(
            parse_ospl_deck(&corrupted).unwrap_err(),
            OsplError::BadWindow { .. }
        ));
    }

    #[test]
    fn truncated_deck_rejected() {
        let (mesh, field) = sample();
        let deck = write_ospl_deck(&mesh, &field, &ContourOptions::new(), ("A", "B")).unwrap();
        let text = deck.to_text();
        let shorter: Vec<&str> = text.lines().take(4).collect();
        let truncated = Deck::from_text(&shorter.join("\n")).unwrap();
        assert!(matches!(
            parse_ospl_deck(&truncated).unwrap_err(),
            OsplError::BadDeck { .. }
        ));
    }

    #[test]
    fn field_mismatch_on_write_rejected() {
        let (mesh, _) = sample();
        let short = NodalField::new("S", vec![1.0]);
        assert!(matches!(
            write_ospl_deck(&mesh, &short, &ContourOptions::new(), ("A", "B")).unwrap_err(),
            OsplError::FieldSizeMismatch { .. }
        ));
    }
}

//! The numerical restrictions of Table 1.

use crate::OsplError;

/// Capacity limits for an OSPL run — Table 1 of the report: "Total number
/// of elements allowed: 1000. Total number of points data may be given:
/// 800."
///
/// # Examples
///
/// ```
/// use cafemio_ospl::OsplLimits;
/// let table1 = OsplLimits::historical();
/// assert_eq!(table1.max_nodes, 800);
/// assert_eq!(table1.max_elements, 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsplLimits {
    /// Maximum nodes ("points data may be given").
    pub max_nodes: usize,
    /// Maximum elements.
    pub max_elements: usize,
}

impl OsplLimits {
    /// The limits of Table 1.
    pub fn historical() -> OsplLimits {
        OsplLimits {
            max_nodes: 800,
            max_elements: 1000,
        }
    }

    /// No limits.
    pub fn unbounded() -> OsplLimits {
        OsplLimits {
            max_nodes: usize::MAX,
            max_elements: usize::MAX,
        }
    }

    pub(crate) fn check(&self, nodes: usize, elements: usize) -> Result<(), OsplError> {
        if nodes > self.max_nodes {
            return Err(OsplError::LimitExceeded {
                what: "nodes",
                attempted: nodes,
                limit: self.max_nodes,
            });
        }
        if elements > self.max_elements {
            return Err(OsplError::LimitExceeded {
                what: "elements",
                attempted: elements,
                limit: self.max_elements,
            });
        }
        Ok(())
    }
}

impl Default for OsplLimits {
    fn default() -> Self {
        OsplLimits::historical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_enforced() {
        let l = OsplLimits::historical();
        assert!(l.check(800, 1000).is_ok());
        assert!(l.check(801, 0).is_err());
        assert!(l.check(0, 1001).is_err());
        assert!(OsplLimits::unbounded().check(10_000, 20_000).is_ok());
    }
}

//! # cafemio-ospl
//!
//! The paper's second contribution: **OSPL**, the output plotting program.
//! "OSPL plots the output data in a form which can be quickly interpreted
//! by the analyst" — lines of constant value ("isograms") over the
//! triangulated cross-section, resembling "contour maps on which the
//! physical features of the earth's surface are indicated".
//!
//! The algorithm is the paper's, element by element:
//!
//! 1. "The number and size of the contours passing through the element
//!    are determined."
//! 2. "Two pairs of adjacent corners are found, each of whose values
//!    bound the subject contour."
//! 3. "End points of the subject contour in the element are found by
//!    interpolating linearly between the values at the adjacent corners
//!    of each pair."
//! 4. "A straight line is drawn between these end points."
//!
//! Plus the supporting machinery: the automatic contour-interval selection
//! of Appendix D ([`automatic_interval`]), the boundary outline drawn from
//! the nodal boundary flags, contour-value labels at boundary
//! intersections with overlap suppression (zero contours always labeled),
//! and the `XMX/XMN/YMX/YMN` zoom window of the Type-1 card.
//!
//! # Examples
//!
//! ```
//! use cafemio_geom::Point;
//! use cafemio_mesh::{BoundaryKind, NodalField, TriMesh};
//! use cafemio_ospl::{ContourOptions, Ospl};
//! # fn main() -> Result<(), cafemio_ospl::OsplError> {
//! // The paper's Figure 12: one triangle with corner values 5, 15, 35
//! // crossed by the contours 10, 20, and 30.
//! let mut mesh = TriMesh::new();
//! let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::BoundaryCorner);
//! let b = mesh.add_node(Point::new(4.0, 0.0), BoundaryKind::BoundaryCorner);
//! let c = mesh.add_node(Point::new(2.0, 3.0), BoundaryKind::BoundaryCorner);
//! mesh.add_element([a, b, c]).unwrap();
//! let field = NodalField::new("FIGURE 12", vec![5.0, 15.0, 35.0]);
//! let result = Ospl::run(&mesh, &field, &ContourOptions::with_interval(10.0))?;
//! let levels: Vec<f64> = result.isograms.iter().map(|i| i.level).collect();
//! assert_eq!(levels, vec![10.0, 20.0, 30.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deck;
mod error;
mod interval;
mod isogram;
mod limits;
mod listing;
mod ospl;
mod plot;

pub use error::OsplError;
pub use interval::{automatic_interval, contour_levels};
pub use isogram::{extract_isograms, extract_isograms_reference, IsoSegment, Isogram};
pub use limits::OsplLimits;
pub use listing::listing;
pub use ospl::{ContourOptions, Ospl, OsplResult};
pub use plot::plot_contours;

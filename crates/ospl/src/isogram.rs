//! Isogram extraction: the element-by-element contour construction of the
//! report's OSPL section (Figure 12).
//!
//! Tracing is accelerated by a one-dimensional [`Bvh`] over each
//! element's value interval `[lo, hi]`: a level only visits the
//! elements whose interval contains it, instead of scanning the whole
//! mesh per level. The accelerated path is bit-identical to the full
//! scan — [`extract_isograms_reference`] keeps the brute-force loop as
//! the parity oracle for tests and benchmarks.

use std::collections::HashMap;

use cafemio_geom::{inverse_lerp, lerp_point, BoundingBox, Bvh, Point};
use cafemio_mesh::{Edge, NodalField, TriMesh};

use crate::OsplError;

/// One straight contour piece inside one element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsoSegment {
    /// First end point.
    pub a: Point,
    /// Second end point.
    pub b: Point,
    /// True when `a` lies on a mesh boundary edge (a label site).
    pub a_on_boundary: bool,
    /// True when `b` lies on a mesh boundary edge.
    pub b_on_boundary: bool,
}

/// All the pieces of one contour level.
#[derive(Debug, Clone, PartialEq)]
pub struct Isogram {
    /// The constant value along the contour.
    pub level: f64,
    /// The straight pieces, one per crossed element.
    pub segments: Vec<IsoSegment>,
}

impl Isogram {
    /// Total drawn length of the contour.
    pub fn length(&self) -> f64 {
        self.segments.iter().map(|s| s.a.distance_to(s.b)).sum()
    }

    /// The points where the contour meets the mesh boundary — the label
    /// sites ("the value of each contour is printed next to its
    /// intersection with the boundary").
    pub fn boundary_intersections(&self) -> Vec<Point> {
        let mut out = Vec::new();
        for s in &self.segments {
            if s.a_on_boundary {
                out.push(s.a);
            }
            if s.b_on_boundary {
                out.push(s.b);
            }
        }
        out
    }

    /// Chains the per-element pieces into continuous polylines by joining
    /// coincident end points (within `tol`). Open contours run from
    /// boundary to boundary; closed loops come back with their first
    /// point repeated last. The original OSPL drew segment by segment;
    /// chains give downstream consumers (smooth SVG paths, contour
    /// following) the connected geometry.
    pub fn polylines(&self, tol: f64) -> Vec<Vec<Point>> {
        let n = self.segments.len();
        let mut used = vec![false; n];
        let close = |p: Point, q: Point| p.approx_eq(q, tol);
        // Bucket every segment endpoint on a grid of twice the join
        // tolerance: any endpoint within `tol` of a query point then
        // lives in the 3x3 cell neighbourhood, with slack to spare for
        // division rounding at the cell boundaries. Taking the *minimum*
        // unused index over the candidates reproduces exactly what the
        // old first-match linear scan returned, in O(1) instead of O(n)
        // per join — the chains are bit-identical.
        let cell = (2.0 * tol).max(1e-300);
        let key = |p: Point| ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64);
        let mut buckets: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (j, s) in self.segments.iter().enumerate() {
            buckets.entry(key(s.a)).or_default().push(j);
            if key(s.b) != key(s.a) {
                buckets.entry(key(s.b)).or_default().push(j);
            }
        }
        let find_next = |used: &[bool], p: Point| -> Option<usize> {
            let (kx, ky) = key(p);
            let mut best: Option<usize> = None;
            for dx in -1i64..=1 {
                for dy in -1i64..=1 {
                    let neighbour = (kx.saturating_add(dx), ky.saturating_add(dy));
                    let Some(list) = buckets.get(&neighbour) else {
                        continue;
                    };
                    for &j in list {
                        if !used[j]
                            && best.is_none_or(|b| j < b)
                            && (close(self.segments[j].a, p) || close(self.segments[j].b, p))
                        {
                            best = Some(j);
                        }
                    }
                }
            }
            best
        };
        let mut chains = Vec::new();
        for start in 0..n {
            if used[start] {
                continue;
            }
            used[start] = true;
            let mut chain = vec![self.segments[start].a, self.segments[start].b];
            // Grow at the tail, then at the head.
            loop {
                // invariant: the chain is seeded with two points above.
                let tail = *chain.last().expect("non-empty chain");
                match find_next(&used, tail) {
                    Some(j) => {
                        used[j] = true;
                        let s = &self.segments[j];
                        chain.push(if close(s.a, tail) { s.b } else { s.a });
                    }
                    None => break,
                }
            }
            loop {
                let head = chain[0];
                match find_next(&used, head) {
                    Some(j) => {
                        used[j] = true;
                        let s = &self.segments[j];
                        chain.insert(0, if close(s.a, head) { s.b } else { s.a });
                    }
                    None => break,
                }
            }
            chains.push(chain);
        }
        chains
    }
}

/// Extracts one [`Isogram`] per level.
///
/// Follows the paper's four steps per element and level: find the two
/// edge pairs whose corner values bound the level, interpolate linearly
/// along each, and join the two interpolated points with a straight
/// segment. Elements the level misses contribute nothing; degenerate
/// crossings through a flat edge are skipped (the neighbouring elements
/// carry the line).
///
/// # Errors
///
/// [`OsplError::FieldSizeMismatch`] when the field does not cover the
/// mesh.
///
/// # Examples
///
/// ```
/// use cafemio_geom::Point;
/// use cafemio_mesh::{BoundaryKind, NodalField, TriMesh};
/// use cafemio_ospl::extract_isograms;
/// # fn main() -> Result<(), cafemio_ospl::OsplError> {
/// let mut mesh = TriMesh::new();
/// let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::BoundaryCorner);
/// let b = mesh.add_node(Point::new(4.0, 0.0), BoundaryKind::BoundaryCorner);
/// let c = mesh.add_node(Point::new(2.0, 3.0), BoundaryKind::BoundaryCorner);
/// mesh.add_element([a, b, c]).unwrap();
/// let field = NodalField::new("S", vec![5.0, 15.0, 35.0]);
/// let isograms = extract_isograms(&mesh, &field, &[10.0, 20.0, 30.0])?;
/// assert_eq!(isograms.len(), 3);
/// assert_eq!(isograms[0].segments.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn extract_isograms(
    mesh: &TriMesh,
    field: &NodalField,
    levels: &[f64],
) -> Result<Vec<Isogram>, OsplError> {
    let elements = gather_element_traces(mesh, field)?;
    // One-dimensional BVH over the element value intervals: stabbing it
    // at `level` yields exactly the elements with `lo <= level <= hi`,
    // in ascending element order — the elements the full scan would
    // have traced. (Elements whose corner values are all NaN have an
    // empty interval box and are excluded; the scan produces no
    // crossings for them either.)
    let index = Bvh::build(
        &elements
            .iter()
            .map(|el| {
                BoundingBox::from_points([Point::new(el.lo, 0.0), Point::new(el.hi, 0.0)])
            })
            .collect::<Vec<_>>(),
    );
    // Grain 2: one level already sweeps its candidate set, so even a
    // handful of levels are worth fanning out.
    Ok(cafemio_instrument::par::parallel_map_grained(
        levels,
        2,
        |&level| Isogram {
            level,
            segments: trace_level_over(
                &elements,
                index.stabbing(Point::new(level, 0.0)).into_iter(),
                level,
            ),
        },
    ))
}

/// The brute-force definition of [`extract_isograms`]: every level scans
/// every element. Kept public as the parity oracle — property tests and
/// the contour benchmark compare the accelerated output against this,
/// bit for bit.
///
/// # Errors
///
/// [`OsplError::FieldSizeMismatch`] when the field does not cover the
/// mesh.
pub fn extract_isograms_reference(
    mesh: &TriMesh,
    field: &NodalField,
    levels: &[f64],
) -> Result<Vec<Isogram>, OsplError> {
    let elements = gather_element_traces(mesh, field)?;
    Ok(levels
        .iter()
        .map(|&level| Isogram {
            level,
            segments: trace_level_over(&elements, 0..elements.len(), level),
        })
        .collect())
}

/// Gathers the per-element corner values, vertices, and edge boundary
/// flags once, so each contour level traces from a flat array instead of
/// re-querying the mesh. Levels are then independent: each one can be
/// traced in its own task, element order preserved within a level — the
/// per-level segment lists are identical to the serial loop's.
fn gather_element_traces(
    mesh: &TriMesh,
    field: &NodalField,
) -> Result<Vec<ElementTrace>, OsplError> {
    if field.len() != mesh.node_count() {
        return Err(OsplError::FieldSizeMismatch {
            nodes: mesh.node_count(),
            values: field.len(),
        });
    }
    let edge_map = mesh.edges();
    Ok(mesh
        .elements()
        .map(|(id, el)| {
            let values = [
                field.value(el.nodes[0]),
                field.value(el.nodes[1]),
                field.value(el.nodes[2]),
            ];
            let mut edge_on_boundary = [false; 3];
            for (e, (i, j)) in ELEMENT_EDGES.into_iter().enumerate() {
                edge_on_boundary[e] =
                    edge_map.get(&Edge::new(el.nodes[i], el.nodes[j])).map(Vec::len) == Some(1);
            }
            ElementTrace {
                vertices: mesh.triangle(id).vertices,
                values,
                lo: values[0].min(values[1]).min(values[2]),
                hi: values[0].max(values[1]).max(values[2]),
                edge_on_boundary,
            }
        })
        .collect())
}

/// Vertex index pairs of a triangle's three edges, in trace order.
const ELEMENT_EDGES: [(usize, usize); 3] = [(0, 1), (1, 2), (2, 0)];

/// Everything isogram tracing needs from one element, gathered up front.
struct ElementTrace {
    vertices: [Point; 3],
    values: [f64; 3],
    lo: f64,
    hi: f64,
    edge_on_boundary: [bool; 3],
}

/// Traces one contour level across the elements named by `indices` (in
/// the order given — callers pass ascending element indices, either the
/// whole range or the interval index's candidate set).
fn trace_level_over(
    elements: &[ElementTrace],
    indices: impl Iterator<Item = usize>,
    level: f64,
) -> Vec<IsoSegment> {
    let mut segments = Vec::new();
    for idx in indices {
        let el = &elements[idx];
        if level < el.lo || level > el.hi || el.lo == el.hi {
            continue;
        }
        // Find the crossing points on the element's edges.
        let mut crossings: Vec<(Point, bool)> = Vec::new();
        for (e, (i, j)) in ELEMENT_EDGES.into_iter().enumerate() {
            let (va, vb) = (el.values[i], el.values[j]);
            if va == vb {
                continue; // flat edge: neighbours draw the line
            }
            let t = match inverse_lerp(va, vb, level) {
                Some(t) if (0.0..=1.0).contains(&t) => t,
                _ => continue,
            };
            let p = lerp_point(el.vertices[i], el.vertices[j], t);
            // A level hitting a shared corner appears on both incident
            // edges; keep one copy, but OR the boundary flags — the
            // corner is a label site if *any* of its coincident edges is
            // a boundary edge, regardless of which edge traced first.
            match crossings
                .iter_mut()
                .find(|(q, _)| q.approx_eq(p, 1e-12 * (1.0 + p.x.abs() + p.y.abs())))
            {
                Some((_, on_boundary)) => *on_boundary |= el.edge_on_boundary[e],
                None => crossings.push((p, el.edge_on_boundary[e])),
            }
        }
        if crossings.len() == 2 {
            segments.push(IsoSegment {
                a: crossings[0].0,
                b: crossings[1].0,
                a_on_boundary: crossings[0].1,
                b_on_boundary: crossings[1].1,
            });
        }
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafemio_mesh::BoundaryKind;

    /// The Figure-12 triangle: values 5, 15, 35.
    fn figure12() -> (TriMesh, NodalField) {
        let mut mesh = TriMesh::new();
        let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::BoundaryCorner);
        let b = mesh.add_node(Point::new(4.0, 0.0), BoundaryKind::BoundaryCorner);
        let c = mesh.add_node(Point::new(2.0, 3.0), BoundaryKind::BoundaryCorner);
        mesh.add_element([a, b, c]).unwrap();
        (mesh, NodalField::new("S", vec![5.0, 15.0, 35.0]))
    }

    #[test]
    fn figure12_contours_cross_where_interpolation_says() {
        let (mesh, field) = figure12();
        let isograms = extract_isograms(&mesh, &field, &[10.0, 20.0, 30.0]).unwrap();
        for iso in &isograms {
            assert_eq!(iso.segments.len(), 1, "level {}", iso.level);
            assert!(iso.length() > 0.0);
        }
        // Level 10 crosses edge a-b at t = (10-5)/(15-5) = 0.5 → (2, 0).
        let seg = isograms[0].segments[0];
        let hits_expected = |p: Point| p.approx_eq(Point::new(2.0, 0.0), 1e-12);
        assert!(hits_expected(seg.a) || hits_expected(seg.b));
        // And edge a-c at t = (10-5)/(35-5) = 1/6 → (1/3, 0.5).
        let other = Point::new(2.0 / 6.0, 3.0 / 6.0);
        assert!(seg.a.approx_eq(other, 1e-12) || seg.b.approx_eq(other, 1e-12));
    }

    #[test]
    fn single_triangle_crossings_are_on_the_boundary() {
        let (mesh, field) = figure12();
        let isograms = extract_isograms(&mesh, &field, &[20.0]).unwrap();
        let seg = isograms[0].segments[0];
        assert!(seg.a_on_boundary && seg.b_on_boundary);
        assert_eq!(isograms[0].boundary_intersections().len(), 2);
    }

    #[test]
    fn interior_edges_not_label_sites() {
        // Two triangles; the contour crosses the shared edge.
        let mut mesh = TriMesh::new();
        let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
        let b = mesh.add_node(Point::new(2.0, 0.0), BoundaryKind::Boundary);
        let c = mesh.add_node(Point::new(2.0, 2.0), BoundaryKind::Boundary);
        let d = mesh.add_node(Point::new(0.0, 2.0), BoundaryKind::Boundary);
        mesh.add_element([a, b, c]).unwrap();
        mesh.add_element([a, c, d]).unwrap();
        // Field increasing in x: a=0, b=2, c=2, d=0.
        let field = NodalField::new("S", vec![0.0, 2.0, 2.0, 0.0]);
        let isograms = extract_isograms(&mesh, &field, &[1.0]).unwrap();
        // The level-1 line x = 1 crosses both triangles.
        assert_eq!(isograms[0].segments.len(), 2);
        // Exactly two of the four end points lie on the outer boundary.
        assert_eq!(isograms[0].boundary_intersections().len(), 2);
    }

    #[test]
    fn level_outside_range_is_empty() {
        let (mesh, field) = figure12();
        let isograms = extract_isograms(&mesh, &field, &[100.0, -10.0]).unwrap();
        assert!(isograms.iter().all(|i| i.segments.is_empty()));
    }

    #[test]
    fn constant_element_is_skipped() {
        let (mesh, _) = figure12();
        let field = NodalField::new("S", vec![7.0, 7.0, 7.0]);
        let isograms = extract_isograms(&mesh, &field, &[7.0]).unwrap();
        assert!(isograms[0].segments.is_empty());
    }

    #[test]
    fn level_through_vertex_yields_single_segment() {
        let (mesh, field) = figure12(); // values 5, 15, 35
        let isograms = extract_isograms(&mesh, &field, &[15.0]).unwrap();
        // Level 15 passes exactly through node b and crosses edge a-c.
        assert_eq!(isograms[0].segments.len(), 1);
        let seg = isograms[0].segments[0];
        let through_b = seg.a.approx_eq(Point::new(4.0, 0.0), 1e-9)
            || seg.b.approx_eq(Point::new(4.0, 0.0), 1e-9);
        assert!(through_b);
    }

    #[test]
    fn segment_endpoints_interpolate_exactly() {
        // Property: for random fields, every crossing point's interpolated
        // field value equals the level.
        let mut mesh = TriMesh::new();
        let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
        let b = mesh.add_node(Point::new(1.0, 0.0), BoundaryKind::Boundary);
        let c = mesh.add_node(Point::new(0.3, 1.1), BoundaryKind::Boundary);
        mesh.add_element([a, b, c]).unwrap();
        let mut seed = 99u64;
        let mut rand = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) * 50.0
        };
        for _ in 0..20 {
            let vals = vec![rand(), rand(), rand()];
            let field = NodalField::new("S", vals.clone());
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if hi - lo < 1.0 {
                continue;
            }
            let level = 0.5 * (lo + hi);
            let isograms = extract_isograms(&mesh, &field, &[level]).unwrap();
            for seg in &isograms[0].segments {
                for p in [seg.a, seg.b] {
                    let tri = mesh.triangle(cafemio_mesh::ElementId(0));
                    let w = tri.barycentric(p).unwrap();
                    let v = w[0] * vals[0] + w[1] * vals[1] + w[2] * vals[2];
                    assert!((v - level).abs() < 1e-9, "value {v} vs level {level}");
                }
            }
        }
    }

    #[test]
    fn polylines_chain_across_elements() {
        // Two triangles, one vertical contour crossing both: the two
        // per-element pieces chain into one open polyline.
        let mut mesh = TriMesh::new();
        let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
        let b = mesh.add_node(Point::new(2.0, 0.0), BoundaryKind::Boundary);
        let c = mesh.add_node(Point::new(2.0, 2.0), BoundaryKind::Boundary);
        let d = mesh.add_node(Point::new(0.0, 2.0), BoundaryKind::Boundary);
        mesh.add_element([a, b, c]).unwrap();
        mesh.add_element([a, c, d]).unwrap();
        let field = NodalField::new("S", vec![0.0, 2.0, 2.0, 0.0]);
        let isograms = extract_isograms(&mesh, &field, &[1.0]).unwrap();
        assert_eq!(isograms[0].segments.len(), 2);
        let chains = isograms[0].polylines(1e-9);
        assert_eq!(chains.len(), 1, "one continuous contour");
        assert_eq!(chains[0].len(), 3, "three points: bottom, diagonal, top");
        // It spans the plate from y = 0 to y = 2 at x = 1.
        let ys: Vec<f64> = chains[0].iter().map(|p| p.y).collect();
        assert!(ys.contains(&0.0) && ys.contains(&2.0));
        assert!(chains[0].iter().all(|p| (p.x - 1.0).abs() < 1e-12));
        // Total chain length equals the summed segment lengths.
        let chain_len: f64 = chains[0].windows(2).map(|w| w[0].distance_to(w[1])).sum();
        assert!((chain_len - isograms[0].length()).abs() < 1e-12);
    }

    #[test]
    fn polylines_separate_disjoint_contours() {
        // Two disconnected hot spots at the two ends of a strip: the same
        // level yields two chains.
        let mut mesh = TriMesh::new();
        let mut ids = Vec::new();
        for j in 0..=1 {
            for i in 0..=4 {
                ids.push(mesh.add_node(
                    Point::new(i as f64, j as f64),
                    BoundaryKind::Boundary,
                ));
            }
        }
        let at = |i: usize, j: usize| ids[j * 5 + i];
        for i in 0..4 {
            mesh.add_element([at(i, 0), at(i + 1, 0), at(i + 1, 1)]).unwrap();
            mesh.add_element([at(i, 0), at(i + 1, 1), at(i, 1)]).unwrap();
        }
        // Peaks at both ends, cold middle.
        let values: Vec<f64> = mesh
            .nodes()
            .map(|(_, n)| if n.position.x < 0.5 || n.position.x > 3.5 { 10.0 } else { 0.0 })
            .collect();
        let field = NodalField::new("S", values);
        let isograms = extract_isograms(&mesh, &field, &[5.0]).unwrap();
        let chains = isograms[0].polylines(1e-9);
        assert_eq!(chains.len(), 2, "two disjoint hot-spot contours");
    }

    #[test]
    fn corner_crossing_keeps_the_boundary_flag_from_any_incident_edge() {
        // A level passing exactly through a vertex shared by a boundary
        // edge and an interior edge: whichever edge traces first, the
        // kept crossing must still count as a label site.
        //
        //   d --- c        Elements: (a b c) and (a c d); the diagonal
        //   | \ 1 |        a-c is interior, everything else boundary.
        //   | 0 \ |        Field increases along x + y, so a mid level
        //   a --- b        passes exactly through corners b and d.
        let mut mesh = TriMesh::new();
        let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
        let b = mesh.add_node(Point::new(2.0, 0.0), BoundaryKind::Boundary);
        let c = mesh.add_node(Point::new(2.0, 2.0), BoundaryKind::Boundary);
        let d = mesh.add_node(Point::new(0.0, 2.0), BoundaryKind::Boundary);
        mesh.add_element([a, b, c]).unwrap();
        mesh.add_element([a, c, d]).unwrap();
        // f = x + y: a=0, b=2, c=4, d=2. Level 2 runs through b and d
        // and crosses the interior diagonal at (1, 1).
        let field = NodalField::new("S", vec![0.0, 2.0, 4.0, 2.0]);
        let isograms = extract_isograms(&mesh, &field, &[2.0]).unwrap();
        let segments = &isograms[0].segments;
        assert_eq!(segments.len(), 2);
        // In element 0 the trace visits edge a-b (boundary, crossing at
        // b), then b-c (boundary, same corner b — the dedup case), then
        // c-a (interior, crossing at (1,1)). The corner b crossing must
        // be flagged as boundary however the coincident edges were
        // ordered; same for d in element 1.
        for (seg, corner) in [(segments[0], Point::new(2.0, 0.0)), (segments[1], Point::new(0.0, 2.0))] {
            let (corner_flag, other_flag) = if seg.a.approx_eq(corner, 1e-12) {
                (seg.a_on_boundary, seg.b_on_boundary)
            } else {
                assert!(seg.b.approx_eq(corner, 1e-12), "segment misses corner {corner:?}");
                (seg.b_on_boundary, seg.a_on_boundary)
            };
            assert!(corner_flag, "corner {corner:?} lost its boundary flag");
            assert!(!other_flag, "interior diagonal crossing must not be a label site");
        }
        // Both corner sites survive into the label list.
        assert_eq!(isograms[0].boundary_intersections().len(), 2);
    }

    #[test]
    fn accelerated_extraction_matches_the_reference_scan() {
        // Random fields over a small grid: the interval-index path must
        // reproduce the full-scan output exactly, including NaN corners.
        let mut mesh = TriMesh::new();
        let mut ids = Vec::new();
        for j in 0..=4 {
            for i in 0..=4 {
                ids.push(mesh.add_node(
                    Point::new(i as f64, j as f64),
                    BoundaryKind::Boundary,
                ));
            }
        }
        let at = |i: usize, j: usize| ids[j * 5 + i];
        for j in 0..4 {
            for i in 0..4 {
                mesh.add_element([at(i, j), at(i + 1, j), at(i + 1, j + 1)]).unwrap();
                mesh.add_element([at(i, j), at(i + 1, j + 1), at(i, j + 1)]).unwrap();
            }
        }
        let mut seed = 2024u64;
        let mut rand = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        for round in 0..10 {
            let values: Vec<f64> = (0..mesh.node_count())
                .map(|_| {
                    let v = rand() * 100.0 - 50.0;
                    // Sprinkle NaNs in some rounds: both paths must
                    // treat poisoned elements identically.
                    if round >= 8 && v > 40.0 {
                        f64::NAN
                    } else {
                        v
                    }
                })
                .collect();
            let field = NodalField::new("S", values);
            let levels: Vec<f64> = (0..7).map(|_| rand() * 120.0 - 60.0).collect();
            let fast = extract_isograms(&mesh, &field, &levels).unwrap();
            let slow = extract_isograms_reference(&mesh, &field, &levels).unwrap();
            assert_eq!(fast, slow, "round {round}");
        }
    }

    #[test]
    fn polylines_match_the_linear_scan_reference() {
        // The bucketed endpoint join must chain exactly like the old
        // first-match linear scan, whatever the segment order.
        fn reference_polylines(iso: &Isogram, tol: f64) -> Vec<Vec<Point>> {
            let n = iso.segments.len();
            let mut used = vec![false; n];
            let close = |p: Point, q: Point| p.approx_eq(q, tol);
            let mut chains = Vec::new();
            for start in 0..n {
                if used[start] {
                    continue;
                }
                used[start] = true;
                let mut chain = vec![iso.segments[start].a, iso.segments[start].b];
                loop {
                    let tail = *chain.last().unwrap();
                    match (0..n).find(|&j| {
                        !used[j]
                            && (close(iso.segments[j].a, tail) || close(iso.segments[j].b, tail))
                    }) {
                        Some(j) => {
                            used[j] = true;
                            let s = &iso.segments[j];
                            chain.push(if close(s.a, tail) { s.b } else { s.a });
                        }
                        None => break,
                    }
                }
                loop {
                    let head = chain[0];
                    match (0..n).find(|&j| {
                        !used[j]
                            && (close(iso.segments[j].a, head) || close(iso.segments[j].b, head))
                    }) {
                        Some(j) => {
                            used[j] = true;
                            let s = &iso.segments[j];
                            chain.insert(0, if close(s.a, head) { s.b } else { s.a });
                        }
                        None => break,
                    }
                }
                chains.push(chain);
            }
            chains
        }

        let mut seed = 77u64;
        let mut rand = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..20 {
            // Random walk broken into several disjoint pieces, segments
            // shuffled by construction order.
            let mut segments = Vec::new();
            let mut p = Point::new(rand() * 10.0, rand() * 10.0);
            for k in 0..40 {
                if k % 9 == 0 {
                    p = Point::new(rand() * 10.0, rand() * 10.0); // break the chain
                }
                let q = Point::new(p.x + rand() - 0.5, p.y + rand() - 0.5);
                let flip = rand() > 0.5;
                segments.push(IsoSegment {
                    a: if flip { q } else { p },
                    b: if flip { p } else { q },
                    a_on_boundary: false,
                    b_on_boundary: false,
                });
                p = q;
            }
            let iso = Isogram { level: 0.0, segments };
            for tol in [1e-9, 1e-3, 0.3] {
                assert_eq!(iso.polylines(tol), reference_polylines(&iso, tol), "tol {tol}");
            }
        }
    }

    #[test]
    fn mismatched_field_rejected() {
        let (mesh, _) = figure12();
        let short = NodalField::new("S", vec![1.0]);
        assert!(matches!(
            extract_isograms(&mesh, &short, &[0.5]).unwrap_err(),
            OsplError::FieldSizeMismatch { nodes: 3, values: 1 }
        ));
    }
}

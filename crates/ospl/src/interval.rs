//! Automatic contour spacing — Appendix D.
//!
//! "After examination of many hand-drawn plots, it was decided that in
//! order to achieve good spacing, an interval should be used which is
//! about 5 percent of the difference between the largest and smallest
//! value. Using base intervals of 1.0, 2.5, and 5.0, OSPL chooses the
//! interval which is the product of a base interval and a power of ten
//! [closest to 5 percent of the range]. The procedure results in
//! intervals of 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, etc. For example, if the
//! largest and smallest values to be plotted are 50000 psi and 10000 psi,
//! the determined interval would be 2500 psi."
//!
//! Note: the appendix's prose says "closest to, but not greater than,
//! 5 percent", which contradicts its own worked example (5 % of 40 000 is
//! 2 000, and the largest candidate not exceeding 2 000 is 1 000, not
//! 2 500). We follow the worked example — the candidate *closest* to
//! 5 % of the range, ties resolved downward — because the example is what
//! the figures' "CONTOUR INTERVAL IS …" banners were produced with. The
//! discrepancy is recorded in `EXPERIMENTS.md` (experiment C3).

const BASES: [f64; 3] = [1.0, 2.5, 5.0];

/// The automatic contour interval for values spanning `[min, max]`, or
/// `None` when the range is degenerate (`max <= min`, not finite, or so
/// small that 5 % of it underflows the normal floats).
///
/// # Examples
///
/// ```
/// use cafemio_ospl::automatic_interval;
/// // Appendix D's worked example.
/// assert_eq!(automatic_interval(10_000.0, 50_000.0), Some(2500.0));
/// assert_eq!(automatic_interval(5.0, 5.0), None);
/// ```
pub fn automatic_interval(min: f64, max: f64) -> Option<f64> {
    if !(min.is_finite() && max.is_finite()) || max <= min {
        return None;
    }
    let target = 0.05 * (max - min);
    // A subnormal (or underflowed-to-zero) range is degenerate for
    // contouring purposes: `log10` of it is −∞ or wildly negative, and
    // the `as i32` decade cast below would saturate and overflow the
    // scan bounds. Treat it like `max <= min`.
    if !target.is_normal() {
        return None;
    }
    // Candidates are base × 10^k; scan the decades around the target.
    let k0 = target.log10().floor() as i32;
    let mut best = f64::NAN;
    let mut best_dist = f64::INFINITY;
    for k in (k0 - 2)..=(k0 + 2) {
        for base in BASES {
            let candidate = base * 10f64.powi(k);
            let dist = (candidate - target).abs();
            // Ties resolve toward the smaller interval (more contours,
            // never fewer than the target spacing suggests).
            if dist < best_dist - 1e-12 * target
                || (dist <= best_dist + 1e-12 * target && candidate < best)
            {
                best = candidate;
                best_dist = dist;
            }
        }
    }
    Some(best)
}

/// The contour levels for a `[min, max]` range and interval: integer
/// multiples of `interval` from the first at or above `min` through the
/// last at or below `max`. "Since adjacent contours are either one
/// interval apart or of equal value, these labels sufficiently specify
/// the value at any point inside the boundary."
///
/// Returns an empty vector for a non-positive interval or an inverted
/// range.
///
/// # Examples
///
/// ```
/// use cafemio_ospl::contour_levels;
/// assert_eq!(contour_levels(5.0, 35.0, 10.0), vec![10.0, 20.0, 30.0]);
/// assert_eq!(contour_levels(-15.0, 15.0, 10.0), vec![-10.0, 0.0, 10.0]);
/// ```
pub fn contour_levels(min: f64, max: f64, interval: f64) -> Vec<f64> {
    if interval <= 0.0 || max < min || !interval.is_finite() {
        return Vec::new();
    }
    let first = (min / interval).ceil();
    let last = (max / interval).floor();
    let mut levels = Vec::new();
    let mut n = first;
    while n <= last {
        // Multiply rather than accumulate to avoid drift over many levels.
        // Levels equal to the field extremes stay in the ladder here —
        // whether they draw anything depends on the mesh, so `Ospl::run`
        // filters the extreme levels whose trace came back empty instead
        // of second-guessing them this early.
        levels.push(n * interval);
        n += 1.0;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appendix_d_example() {
        assert_eq!(automatic_interval(10_000.0, 50_000.0), Some(2_500.0));
    }

    #[test]
    fn produces_the_documented_series() {
        // Ranges chosen so 5 % lands exactly on each series member.
        for (min, max, expect) in [
            (0.0, 20.0, 1.0),
            (0.0, 50.0, 2.5),
            (0.0, 100.0, 5.0),
            (0.0, 200.0, 10.0),
            (0.0, 500.0, 25.0),
            (0.0, 1000.0, 50.0),
        ] {
            assert_eq!(automatic_interval(min, max), Some(expect), "{min}..{max}");
        }
    }

    #[test]
    fn small_and_negative_ranges() {
        // Figure 17's glass joint plots used "CONTOUR INTERVAL IS 0.10".
        let i = automatic_interval(-1.0, 1.0).unwrap();
        assert_eq!(i, 0.1);
        let i = automatic_interval(-5000.0, -1000.0).unwrap();
        assert_eq!(i, 250.0);
    }

    #[test]
    fn degenerate_ranges_yield_none() {
        assert_eq!(automatic_interval(3.0, 3.0), None);
        assert_eq!(automatic_interval(5.0, 2.0), None);
        assert_eq!(automatic_interval(f64::NAN, 2.0), None);
        assert_eq!(automatic_interval(0.0, f64::INFINITY), None);
    }

    #[test]
    fn interval_is_always_a_base_times_power_of_ten() {
        let mut x = 0.001;
        while x < 1.0e9 {
            let i = automatic_interval(0.0, x).unwrap();
            let mantissa = i / 10f64.powf(i.log10().floor());
            let ok = BASES
                .iter()
                .any(|b| (mantissa - b).abs() < 1e-9 || (mantissa - b * 10.0).abs() < 1e-6);
            assert!(ok, "range {x}: interval {i}, mantissa {mantissa}");
            x *= 3.7;
        }
    }

    #[test]
    fn subnormal_ranges_are_degenerate_not_a_panic() {
        // 0.05 × the range underflows below the normal floats; the decade
        // scan used to cast log10(-inf-ish) to i32 and overflow in debug
        // builds. Such a field is flat for plotting purposes: None.
        assert_eq!(automatic_interval(0.0, f64::MIN_POSITIVE), None);
        let tiny = automatic_interval(1.0, 1.0 + f64::EPSILON);
        assert!(tiny.is_some_and(|i| i.is_finite() && i > 0.0), "{tiny:?}");
        assert_eq!(automatic_interval(-1e-308, 1e-308), None);
        assert_eq!(automatic_interval(0.0, 4.0e-308), None);
    }

    #[test]
    fn all_negative_range_yields_a_valid_ladder() {
        // The audit's level-in-range check depends on this: an
        // all-negative field must still get a finite interval whose
        // levels actually fall inside [min, max].
        let (min, max) = (-9583.0, -3721.0);
        let i = automatic_interval(min, max).unwrap();
        assert!(i.is_finite() && i > 0.0);
        let levels = contour_levels(min, max, i);
        assert!(!levels.is_empty());
        for level in levels {
            assert!(level.is_finite());
            assert!((min..=max).contains(&level), "level {level}");
        }
    }

    #[test]
    fn levels_are_integer_multiples() {
        let levels = contour_levels(12_345.0, 47_777.0, 2_500.0);
        assert_eq!(levels[0], 12_500.0);
        assert_eq!(*levels.last().unwrap(), 47_500.0);
        for level in levels {
            assert_eq!(level % 2_500.0, 0.0);
        }
    }

    #[test]
    fn level_count_near_twenty_for_auto_interval() {
        // ~5 % spacing means roughly 16–20 contours across the range.
        let (min, max) = (-3721.0, 9583.0);
        let i = automatic_interval(min, max).unwrap();
        let n = contour_levels(min, max, i).len();
        assert!((13..=28).contains(&n), "n = {n}");
    }

    #[test]
    fn empty_levels_for_bad_input() {
        assert!(contour_levels(0.0, 10.0, 0.0).is_empty());
        assert!(contour_levels(0.0, 10.0, -1.0).is_empty());
        assert!(contour_levels(10.0, 0.0, 1.0).is_empty());
    }

    #[test]
    fn zero_level_included_when_range_straddles_zero() {
        let levels = contour_levels(-7.0, 7.0, 2.5);
        assert!(levels.contains(&0.0));
        assert_eq!(levels, vec![-5.0, -2.5, 0.0, 2.5, 5.0]);
    }
}

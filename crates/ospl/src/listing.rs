//! OSPL's printed summary — the line-printer companion to the contour
//! plot, listing every level with its drawn extent (the analyst's check
//! that the film would be worth waiting for).

use std::fmt::Write as _;

use crate::ospl::OsplResult;

/// Renders a printed summary of a contour run.
///
/// # Examples
///
/// ```
/// use cafemio_geom::Point;
/// use cafemio_mesh::{BoundaryKind, NodalField, TriMesh};
/// use cafemio_ospl::{listing, ContourOptions, Ospl};
/// # fn main() -> Result<(), cafemio_ospl::OsplError> {
/// let mut mesh = TriMesh::new();
/// let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::BoundaryCorner);
/// let b = mesh.add_node(Point::new(4.0, 0.0), BoundaryKind::BoundaryCorner);
/// let c = mesh.add_node(Point::new(2.0, 3.0), BoundaryKind::BoundaryCorner);
/// mesh.add_element([a, b, c]).unwrap();
/// let field = NodalField::new("S", vec![5.0, 15.0, 35.0]);
/// let result = Ospl::run(&mesh, &field, &ContourOptions::with_interval(10.0))?;
/// let text = listing(&result);
/// assert!(text.contains("PROGRAM OSPL"));
/// assert!(text.contains("CONTOUR INTERVAL"));
/// # Ok(())
/// # }
/// ```
pub fn listing(result: &OsplResult) -> String {
    let mut out = String::new();
    let rule = "=".repeat(66);
    let _ = writeln!(out, "{rule}");
    let _ = writeln!(out, "PROGRAM OSPL - ISOGRAM PLOT SUMMARY");
    let _ = writeln!(out, "{}", result.frame.title());
    let _ = writeln!(out, "{rule}");
    let _ = writeln!(out, "CONTOUR INTERVAL = {}", result.interval);
    let _ = writeln!(
        out,
        "LEVELS = {}   DRAWN = {}   SEGMENTS = {}",
        result.levels.len(),
        result.drawn_contours(),
        result.segment_count(),
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "       LEVEL   SEGMENTS      LENGTH  BOUNDARY HITS");
    for iso in &result.isograms {
        let _ = writeln!(
            out,
            "  {:>10.3} {:>10} {:>11.4} {:>14}",
            iso.level,
            iso.segments.len(),
            iso.length(),
            iso.boundary_intersections().len(),
        );
    }
    let _ = writeln!(out, "{rule}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ContourOptions, Ospl};
    use cafemio_geom::Point;
    use cafemio_mesh::{BoundaryKind, NodalField, TriMesh};

    fn run() -> OsplResult {
        let mut mesh = TriMesh::new();
        let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::BoundaryCorner);
        let b = mesh.add_node(Point::new(4.0, 0.0), BoundaryKind::BoundaryCorner);
        let c = mesh.add_node(Point::new(2.0, 3.0), BoundaryKind::BoundaryCorner);
        mesh.add_element([a, b, c]).unwrap();
        let field = NodalField::new("DEMO", vec![5.0, 15.0, 35.0]);
        Ospl::run(&mesh, &field, &ContourOptions::with_interval(10.0)).unwrap()
    }

    #[test]
    fn one_row_per_level() {
        let result = run();
        let text = listing(&result);
        let rows = text
            .lines()
            .skip_while(|l| !l.contains("LEVEL   SEGMENTS"))
            .skip(1)
            .take_while(|l| !l.starts_with('='))
            .count();
        assert_eq!(rows, result.levels.len());
    }

    #[test]
    fn summary_numbers_consistent() {
        let result = run();
        let text = listing(&result);
        assert!(text.contains(&format!("SEGMENTS = {}", result.segment_count())));
        assert!(text.contains(&format!("DRAWN = {}", result.drawn_contours())));
    }
}

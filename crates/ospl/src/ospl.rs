//! The OSPL driver: options, pipeline, result.

use cafemio_geom::BoundingBox;
use cafemio_mesh::{NodalField, TriMesh};
use cafemio_plotter::Frame;

use crate::interval::{automatic_interval, contour_levels};
use crate::isogram::{extract_isograms, Isogram};
use crate::limits::OsplLimits;
use crate::plot::plot_contours;
use crate::OsplError;

/// Options for a contour plot — the knobs of the Type-1 card.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ContourOptions {
    /// Contour interval (`DELTA`); `None` invokes the Appendix-D
    /// automatic determination ("If DELTA = 0, this interval will be
    /// determined automatically").
    pub interval: Option<f64>,
    /// Value of the lowest contour; `None` starts at the first interval
    /// multiple at or above the field minimum.
    pub lowest: Option<f64>,
    /// Zoom window (`XMX, XMN, YMX, YMN`); `None` plots everything.
    pub window: Option<BoundingBox>,
    /// Capacity limits (Table 1 by default).
    pub limits: OsplLimits,
    /// Extra title line; the field name is always shown.
    pub title: Option<String>,
}

impl ContourOptions {
    /// Defaults: automatic interval, no zoom, Table-1 limits.
    pub fn new() -> ContourOptions {
        ContourOptions::default()
    }

    /// Defaults with a fixed contour interval.
    pub fn with_interval(interval: f64) -> ContourOptions {
        ContourOptions {
            interval: Some(interval),
            ..ContourOptions::default()
        }
    }

    /// Sets a fixed contour interval (`DELTA`; default: automatic
    /// determination per Appendix D).
    pub fn interval(mut self, interval: f64) -> ContourOptions {
        self.interval = Some(interval);
        self
    }

    /// Sets the value of the lowest contour (default: the first interval
    /// multiple at or above the field minimum).
    pub fn lowest(mut self, lowest: f64) -> ContourOptions {
        self.lowest = Some(lowest);
        self
    }

    /// Sets a zoom window (`XMX, XMN, YMX, YMN`; default: plot
    /// everything).
    pub fn window(mut self, window: BoundingBox) -> ContourOptions {
        self.window = Some(window);
        self
    }

    /// Sets the capacity limits (default: the paper's Table 1).
    pub fn limits(mut self, limits: OsplLimits) -> ContourOptions {
        self.limits = limits;
        self
    }

    /// Sets an extra title line (default: only the field name is shown).
    pub fn title(mut self, title: impl Into<String>) -> ContourOptions {
        self.title = Some(title.into());
        self
    }
}

/// The product of an OSPL run.
#[derive(Debug, Clone, PartialEq)]
pub struct OsplResult {
    /// The extracted contours, one per level, in ascending level order.
    pub isograms: Vec<Isogram>,
    /// The interval actually used (user-set or automatic).
    pub interval: f64,
    /// The contour levels plotted.
    pub levels: Vec<f64>,
    /// The finished plot frame.
    pub frame: Frame,
}

impl OsplResult {
    /// Number of non-empty contours.
    pub fn drawn_contours(&self) -> usize {
        self.isograms.iter().filter(|i| !i.segments.is_empty()).count()
    }

    /// Total number of straight pieces across all contours.
    pub fn segment_count(&self) -> usize {
        self.isograms.iter().map(|i| i.segments.len()).sum()
    }
}

/// The OSPL program.
#[derive(Debug)]
pub struct Ospl;

impl Ospl {
    /// Runs the full pipeline: limits, interval, levels, extraction,
    /// plot.
    ///
    /// # Errors
    ///
    /// * [`OsplError::LimitExceeded`] past the Table-1 sizes,
    /// * [`OsplError::FieldSizeMismatch`] when field and mesh disagree,
    /// * [`OsplError::BadInterval`] for a non-positive user interval,
    /// * [`OsplError::NoContours`] for constant or empty fields with an
    ///   automatic interval,
    /// * [`OsplError::BadWindow`] for a degenerate zoom window.
    pub fn run(
        mesh: &TriMesh,
        field: &NodalField,
        options: &ContourOptions,
    ) -> Result<OsplResult, OsplError> {
        options.limits.check(mesh.node_count(), mesh.element_count())?;
        if field.len() != mesh.node_count() {
            return Err(OsplError::FieldSizeMismatch {
                nodes: mesh.node_count(),
                values: field.len(),
            });
        }
        if let Some(window) = &options.window {
            if window.is_empty() || window.width() <= 0.0 || window.height() <= 0.0 {
                return Err(OsplError::BadWindow {
                    reason: "window must have positive width and height".to_owned(),
                });
            }
        }
        let run_span = cafemio_instrument::span("ospl.run");
        let interval_span = cafemio_instrument::span("ospl.interval");
        let (min, max) = field.min_max().ok_or(OsplError::NoContours)?;
        let interval = match options.interval {
            Some(delta) if delta > 0.0 => delta,
            Some(delta) => return Err(OsplError::BadInterval { interval: delta }),
            None => automatic_interval(min, max).ok_or(OsplError::NoContours)?,
        };
        let levels = match options.lowest {
            Some(lowest) => {
                // `lowest + n·interval`, generated multiplicatively: the
                // old `level += interval` accumulation drifted over long
                // ladders and, once `lowest + interval` rounded back to
                // `lowest`, never terminated at all. A non-finite lowest
                // or a lowest above max gives an empty (but valid) set.
                const MAX_LEVELS: usize = 10_000;
                let steps = ((max - lowest) / interval).floor();
                if steps.is_finite() && steps >= 0.0 {
                    if steps >= MAX_LEVELS as f64 {
                        return Err(OsplError::LimitExceeded {
                            what: "contour levels",
                            attempted: steps.min(usize::MAX as f64) as usize,
                            limit: MAX_LEVELS,
                        });
                    }
                    (0..=steps as u64)
                        .map(|n| lowest + n as f64 * interval)
                        .filter(|level| *level <= max)
                        .collect()
                } else {
                    Vec::new()
                }
            }
            None => contour_levels(min, max, interval),
        };
        drop(interval_span);
        let isograms = {
            let _s = cafemio_instrument::span("ospl.isograms");
            extract_isograms(mesh, field, &levels)?
        };
        // A level sitting exactly on a field extreme often traces nothing:
        // the extreme is attained at an isolated vertex or a flat element,
        // so the "contour" is a point, which draws no segment.
        // `contour_levels` keeps extremes in the ladder (whether they draw
        // depends on the mesh); here, with the trace in hand, the empty
        // extreme levels are dropped so the result lists only contours
        // that exist. Empty levels *inside* the range stay — they mark
        // genuine gaps (e.g. between disjoint plateaus).
        let (isograms, levels): (Vec<Isogram>, Vec<f64>) = isograms
            .into_iter()
            .zip(levels)
            .filter(|(iso, level)| {
                !iso.segments.is_empty() || (*level != min && *level != max)
            })
            .unzip();
        cafemio_instrument::counter("ospl.levels", levels.len() as u64);
        cafemio_instrument::counter(
            "ospl.segments",
            isograms.iter().map(|i| i.segments.len() as u64).sum(),
        );
        let title = match &options.title {
            Some(extra) => format!("{extra}  CONTOUR PLOT * {} *", field.name()),
            None => format!("CONTOUR PLOT * {} *", field.name()),
        };
        let frame = {
            let _s = cafemio_instrument::span("ospl.plot");
            plot_contours(mesh, &isograms, interval, options.window, &title)
        };
        drop(run_span);
        Ok(OsplResult {
            isograms,
            interval,
            levels,
            frame,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafemio_geom::Point;
    use cafemio_mesh::BoundaryKind;

    /// A unit-square grid with field = 1000·x (levels every 100 with auto
    /// spacing).
    fn gradient_plate(n: usize) -> (TriMesh, NodalField) {
        let mut mesh = TriMesh::new();
        let mut values = Vec::new();
        let mut ids = Vec::new();
        for j in 0..=n {
            for i in 0..=n {
                let x = i as f64 / n as f64;
                let y = j as f64 / n as f64;
                let kind = if i == 0 || j == 0 || i == n || j == n {
                    BoundaryKind::Boundary
                } else {
                    BoundaryKind::Interior
                };
                ids.push(mesh.add_node(Point::new(x, y), kind));
                values.push(1000.0 * x);
            }
        }
        let at = |i: usize, j: usize| ids[j * (n + 1) + i];
        for j in 0..n {
            for i in 0..n {
                mesh.add_element([at(i, j), at(i + 1, j), at(i + 1, j + 1)]).unwrap();
                mesh.add_element([at(i, j), at(i + 1, j + 1), at(i, j + 1)]).unwrap();
            }
        }
        (mesh, NodalField::new("GRADIENT", values))
    }

    #[test]
    fn automatic_interval_selected() {
        let (mesh, field) = gradient_plate(8);
        let result = Ospl::run(&mesh, &field, &ContourOptions::new()).unwrap();
        // Range 0..1000 → 5 % = 50 → interval 50.
        assert_eq!(result.interval, 50.0);
        assert!(result.drawn_contours() > 10);
    }

    #[test]
    fn contours_of_linear_field_are_straight_and_vertical() {
        let (mesh, field) = gradient_plate(6);
        let result = Ospl::run(&mesh, &field, &ContourOptions::with_interval(250.0)).unwrap();
        for iso in &result.isograms {
            let x_expected = iso.level / 1000.0;
            for seg in &iso.segments {
                assert!((seg.a.x - x_expected).abs() < 1e-9, "level {}", iso.level);
                assert!((seg.b.x - x_expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn contour_length_matches_plate_height() {
        // n = 5 keeps the 250-multiples off the grid columns: a level
        // coinciding with a node column is legitimately traced by the
        // elements on both sides (doubling its drawn length).
        let (mesh, field) = gradient_plate(5);
        let result = Ospl::run(&mesh, &field, &ContourOptions::with_interval(250.0)).unwrap();
        // Each interior vertical contour spans the unit height.
        for iso in &result.isograms {
            if iso.segments.is_empty() {
                continue;
            }
            assert!((iso.length() - 1.0).abs() < 1e-9, "level {}", iso.level);
        }
    }

    #[test]
    fn lowest_contour_honored() {
        let (mesh, field) = gradient_plate(4);
        let options = ContourOptions {
            interval: Some(300.0),
            lowest: Some(150.0),
            ..ContourOptions::default()
        };
        let result = Ospl::run(&mesh, &field, &options).unwrap();
        assert_eq!(result.levels, vec![150.0, 450.0, 750.0]);
    }

    #[test]
    fn lowest_levels_are_exact_multiples_without_drift() {
        // A ladder long enough that `level += interval` accumulation
        // visibly drifts; the multiplicative generator must not.
        let (mesh, field) = gradient_plate(4);
        let options = ContourOptions {
            interval: Some(0.1),
            lowest: Some(0.05),
            ..ContourOptions::default()
        };
        let result = Ospl::run(&mesh, &field, &options).unwrap();
        assert_eq!(result.levels.len(), 10_000);
        let last = *result.levels.last().unwrap();
        assert_eq!(last, 0.05 + 9_999.0 * 0.1);
        assert!(last <= 1000.0);
    }

    #[test]
    fn tiny_interval_against_huge_lowest_terminates_with_an_error() {
        // interval ≪ ULP(lowest): the old accumulation loop never
        // advanced and hung forever. Now the ladder size is bounded by a
        // typed error.
        let (mesh, field) = gradient_plate(4);
        let options = ContourOptions {
            interval: Some(1e-12),
            lowest: Some(999.0),
            ..ContourOptions::default()
        };
        let err = Ospl::run(&mesh, &field, &options).unwrap_err();
        assert!(
            matches!(err, OsplError::LimitExceeded { what: "contour levels", .. }),
            "{err:?}"
        );
    }

    #[test]
    fn non_finite_or_too_high_lowest_gives_empty_levels() {
        let (mesh, field) = gradient_plate(4);
        for lowest in [f64::NAN, f64::INFINITY, 2000.0] {
            let options = ContourOptions {
                interval: Some(100.0),
                lowest: Some(lowest),
                ..ContourOptions::default()
            };
            let result = Ospl::run(&mesh, &field, &options).unwrap();
            assert!(result.levels.is_empty(), "lowest = {lowest}");
        }
    }

    #[test]
    fn constant_field_has_no_contours() {
        let (mesh, _) = gradient_plate(2);
        let flat = NodalField::new("FLAT", vec![7.0; mesh.node_count()]);
        assert_eq!(
            Ospl::run(&mesh, &flat, &ContourOptions::new()).unwrap_err(),
            OsplError::NoContours
        );
        // But a user-set interval still works (no contours drawn).
        let result = Ospl::run(&mesh, &flat, &ContourOptions::with_interval(1.0)).unwrap();
        assert_eq!(result.drawn_contours(), 0);
    }

    #[test]
    fn empty_extreme_levels_are_dropped_but_interior_gaps_kept() {
        // One triangle, linear field 5/15/35: a level exactly at the max
        // (or min) crosses only at a single vertex — no segment — while
        // every level strictly inside (5, 35) draws. The ladder
        // lowest = -10, interval = 15 produces [-10, 5, 20, 35]:
        //   -10  below the field range, empty, NOT extreme → kept,
        //     5  == min, empty point-contour               → dropped,
        //    20  interior, draws                           → kept,
        //    35  == max, empty point-contour               → dropped.
        let mut mesh = TriMesh::new();
        let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::BoundaryCorner);
        let b = mesh.add_node(Point::new(4.0, 0.0), BoundaryKind::BoundaryCorner);
        let c = mesh.add_node(Point::new(2.0, 3.0), BoundaryKind::BoundaryCorner);
        mesh.add_element([a, b, c]).unwrap();
        let field = NodalField::new("S", vec![5.0, 15.0, 35.0]);
        let options = ContourOptions {
            interval: Some(15.0),
            lowest: Some(-10.0),
            ..ContourOptions::default()
        };
        let result = Ospl::run(&mesh, &field, &options).unwrap();
        assert_eq!(result.levels, vec![-10.0, 20.0]);
        assert_eq!(result.isograms.len(), 2);
        assert!(result.isograms[0].segments.is_empty(), "interior gap kept");
        assert!(!result.isograms[1].segments.is_empty());
        assert_eq!(result.drawn_contours(), 1);
    }

    #[test]
    fn bad_interval_rejected() {
        let (mesh, field) = gradient_plate(2);
        assert!(matches!(
            Ospl::run(&mesh, &field, &ContourOptions::with_interval(-5.0)).unwrap_err(),
            OsplError::BadInterval { .. }
        ));
    }

    #[test]
    fn table1_limits_enforced() {
        // 21 × 21 nodes = 441 ≤ 800, 800 elements ≤ 1000: fine.
        let (mesh, field) = gradient_plate(20);
        assert!(Ospl::run(&mesh, &field, &ContourOptions::new()).is_ok());
        // 29 × 29 = 841 nodes > 800: rejected.
        let (mesh, field) = gradient_plate(28);
        assert!(matches!(
            Ospl::run(&mesh, &field, &ContourOptions::new()).unwrap_err(),
            OsplError::LimitExceeded { what: "nodes", .. }
        ));
        let options = ContourOptions {
            limits: OsplLimits::unbounded(),
            ..ContourOptions::default()
        };
        assert!(Ospl::run(&mesh, &field, &options).is_ok());
    }

    #[test]
    fn zoom_window_validated_and_applied() {
        let (mesh, field) = gradient_plate(6);
        let options = ContourOptions {
            interval: Some(100.0),
            window: Some(BoundingBox::new(
                Point::new(0.0, 0.0),
                Point::new(0.5, 1.0),
            )),
            ..ContourOptions::default()
        };
        let zoomed = Ospl::run(&mesh, &field, &options).unwrap();
        let full = Ospl::run(&mesh, &field, &ContourOptions::with_interval(100.0)).unwrap();
        // Fewer labels/vectors inside the half-plate window.
        assert!(zoomed.frame.vector_count() < full.frame.vector_count());
        // Degenerate window rejected.
        let bad = ContourOptions {
            window: Some(BoundingBox::from_points([Point::new(1.0, 1.0)])),
            ..ContourOptions::default()
        };
        assert!(matches!(
            Ospl::run(&mesh, &field, &bad).unwrap_err(),
            OsplError::BadWindow { .. }
        ));
    }

    #[test]
    fn frame_title_names_the_field() {
        let (mesh, field) = gradient_plate(3);
        let result = Ospl::run(&mesh, &field, &ContourOptions::with_interval(200.0)).unwrap();
        assert!(result.frame.title().contains("CONTOUR PLOT * GRADIENT *"));
        assert!(result
            .frame
            .subtitle()
            .unwrap()
            .starts_with("CONTOUR INTERVAL IS"));
    }
}

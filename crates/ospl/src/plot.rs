//! Rendering: boundary outline, contour lines, and labels on an SD-4020
//! frame.

use cafemio_geom::{BoundingBox, Bvh, Point};
use cafemio_mesh::TriMesh;
use cafemio_plotter::{Frame, Window};

use crate::isogram::Isogram;

/// Approximate character cell width in raster units, used for label
/// overlap suppression.
const LABEL_CHAR_W: f64 = 10.0;
/// Approximate character cell height in raster units.
const LABEL_CHAR_H: f64 = 14.0;
/// Dash length (raster units) for negative contour levels.
const NEGATIVE_DASH: f64 = 9.0;

/// Draws a complete contour plot: the mesh outline ("adjacent boundary
/// nodes are connected by straight lines"), every isogram, and the value
/// labels at boundary intersections — "unless adjacent labels overlap.
/// All contours of zero value are labeled."
///
/// `window` is the Type-1 card's `XMX/XMN/YMX/YMN` zoom rectangle; pass
/// `None` to plot the whole mesh. Geometry outside the window is clipped
/// (Liang–Barsky), which is how OSPL "zooms in on a critical area even
/// though some nodes in the data set are outside that area".
pub fn plot_contours(
    mesh: &TriMesh,
    isograms: &[Isogram],
    interval: f64,
    window: Option<BoundingBox>,
    title: &str,
) -> Frame {
    let mut frame = Frame::new(title);
    frame.set_subtitle(&format!("CONTOUR INTERVAL IS {}", format_value(interval, interval)));
    let world = window.unwrap_or_else(|| mesh.bounding_box());
    if world.is_empty() {
        return frame;
    }
    let view = Window::fit(&world, &frame);

    // Boundary outline.
    for edge in mesh.boundary_edges() {
        let a = mesh.node(edge.0).position;
        let b = mesh.node(edge.1).position;
        if let Some((ca, cb)) = clip_segment(a, b, &world) {
            frame.draw_segment(&view, ca, cb);
        }
    }

    // Contour lines. Label sites are the contour's intersections with
    // "the boundary of the plot": mesh-boundary crossings inside the
    // window, plus the points where the zoom window itself cuts a
    // contour.
    let mut label_sites: Vec<(usize, Point)> = Vec::new();
    for (index, iso) in isograms.iter().enumerate() {
        for seg in &iso.segments {
            if let Some(clip) = clip_segment_detailed(seg.a, seg.b, &world) {
                if iso.level < 0.0 {
                    // Negative levels are dashed, as in the report's
                    // stress figures.
                    frame.draw_dashed_segment(&view, clip.a, clip.b, NEGATIVE_DASH);
                } else {
                    frame.draw_segment(&view, clip.a, clip.b);
                }
                if seg.a_on_boundary || clip.a_moved {
                    label_sites.push((index, clip.a));
                }
                if seg.b_on_boundary || clip.b_moved {
                    label_sites.push((index, clip.b));
                }
            }
        }
    }

    // Labels: zero contours first (they are always labeled), then the
    // rest with overlap suppression. The "does this overlap a label
    // already placed?" lookup runs on a BVH over all label-site raster
    // positions: the query box (widest possible label reach) yields a
    // candidate superset, and the exact strict-inequality predicate is
    // evaluated only on those candidates — the placed set is identical
    // to the old every-placed-label scan.
    let texts: Vec<String> = label_sites
        .iter()
        .map(|&(index, _)| format_value(isograms[index].level, interval))
        .collect();
    let rasters: Vec<(f64, f64)> = label_sites
        .iter()
        .map(|&(_, p)| {
            let r = view.to_raster(p);
            (r.x() as f64, r.y() as f64)
        })
        .collect();
    let max_chars = texts.iter().map(String::len).max().unwrap_or(0);
    let site_bvh = Bvh::build(
        &rasters
            .iter()
            .map(|&(x, y)| BoundingBox::from_points([Point::new(x, y)]))
            .collect::<Vec<_>>(),
    );
    // Per-site label length once placed; None while unplaced.
    let mut placed_chars: Vec<Option<usize>> = vec![None; label_sites.len()];
    let mut label_pass = |frame: &mut Frame, zero_pass: bool| {
        for (site, &(index, p)) in label_sites.iter().enumerate() {
            let level = isograms[index].level;
            let is_zero = level == 0.0;
            if is_zero != zero_pass {
                continue;
            }
            let text = &texts[site];
            let (rx, ry) = rasters[site];
            // chars.max(text.len()) is at most the longest label text,
            // so this query box covers every site the predicate could
            // accept.
            let reach = LABEL_CHAR_W * max_chars.max(text.len()) as f64;
            let query = BoundingBox::from_points([
                Point::new(rx - reach, ry - LABEL_CHAR_H),
                Point::new(rx + reach, ry + LABEL_CHAR_H),
            ]);
            let overlaps = site_bvh.overlapping(&query).into_iter().any(|other| {
                placed_chars[other].is_some_and(|chars| {
                    let (px, py) = rasters[other];
                    let w = LABEL_CHAR_W * chars.max(text.len()) as f64;
                    (rx - px).abs() < w && (ry - py).abs() < LABEL_CHAR_H
                })
            });
            if overlaps && !is_zero {
                continue;
            }
            frame.label(&view, p, text);
            placed_chars[site] = Some(text.len());
        }
    };
    label_pass(&mut frame, true);
    label_pass(&mut frame, false);
    frame
}

/// Result of clipping with provenance: whether each end point moved onto
/// the window edge.
struct ClippedSegment {
    a: Point,
    b: Point,
    a_moved: bool,
    b_moved: bool,
}

fn clip_segment_detailed(a: Point, b: Point, world: &BoundingBox) -> Option<ClippedSegment> {
    let (ca, cb) = clip_segment(a, b, world)?;
    Some(ClippedSegment {
        a: ca,
        b: cb,
        a_moved: !ca.approx_eq(a, 1e-12),
        b_moved: !cb.approx_eq(b, 1e-12),
    })
}

/// Formats a contour value the way the report's figures print them:
/// `0` for zero, otherwise an explicit sign and a trailing decimal point
/// (`+2500.`, `-125.`), with decimals shown when the interval is finer
/// than one unit (`+0.10`).
///
/// Sub-unit intervals show enough places to distinguish adjacent levels:
/// the decade gives the base count, and a fractional mantissa — the
/// base-2.5 ladders, `interval / 10^floor(log10)` not integral — needs
/// one more place (`0.75` at interval `0.25` is `+0.75`, not `+0.8`).
pub(crate) fn format_value(value: f64, interval: f64) -> String {
    if value == 0.0 {
        return "0".to_owned();
    }
    let decimals = if interval >= 1.0 || interval <= 0.0 {
        0usize
    } else {
        let decade = interval.log10().floor();
        let places = (-decade as i32).max(1) as usize;
        let mantissa = interval / 10f64.powi(decade as i32);
        let fractional = (mantissa - mantissa.round()).abs() > 1e-9 * mantissa.abs().max(1.0);
        places + usize::from(fractional)
    };
    if decimals == 0 {
        format!("{value:+.0}.")
    } else {
        format!("{value:+.decimals$}")
    }
}

/// Liang–Barsky segment clipping against an axis-aligned box.
pub(crate) fn clip_segment(a: Point, b: Point, world: &BoundingBox) -> Option<(Point, Point)> {
    let (min, max) = (world.min(), world.max());
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let mut t0 = 0.0f64;
    let mut t1 = 1.0f64;
    for (p, q) in [
        (-dx, a.x - min.x),
        (dx, max.x - a.x),
        (-dy, a.y - min.y),
        (dy, max.y - a.y),
    ] {
        if p == 0.0 {
            if q < 0.0 {
                return None; // parallel and outside
            }
        } else {
            let r = q / p;
            if p < 0.0 {
                if r > t1 {
                    return None;
                }
                t0 = t0.max(r);
            } else {
                if r < t0 {
                    return None;
                }
                t1 = t1.min(r);
            }
        }
    }
    if t0 > t1 {
        return None;
    }
    Some((
        Point::new(a.x + t0 * dx, a.y + t0 * dy),
        Point::new(a.x + t1 * dx, a.y + t1 * dy),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isogram::IsoSegment;
    use cafemio_mesh::BoundaryKind;

    fn bbox(x0: f64, y0: f64, x1: f64, y1: f64) -> BoundingBox {
        BoundingBox::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn clip_inside_untouched() {
        let w = bbox(0.0, 0.0, 10.0, 10.0);
        let (a, b) = clip_segment(Point::new(1.0, 1.0), Point::new(9.0, 9.0), &w).unwrap();
        assert_eq!(a, Point::new(1.0, 1.0));
        assert_eq!(b, Point::new(9.0, 9.0));
    }

    #[test]
    fn clip_crossing_segment() {
        let w = bbox(0.0, 0.0, 10.0, 10.0);
        let (a, b) = clip_segment(Point::new(-5.0, 5.0), Point::new(15.0, 5.0), &w).unwrap();
        assert_eq!(a, Point::new(0.0, 5.0));
        assert_eq!(b, Point::new(10.0, 5.0));
    }

    #[test]
    fn clip_outside_rejected() {
        let w = bbox(0.0, 0.0, 10.0, 10.0);
        assert!(clip_segment(Point::new(-5.0, -5.0), Point::new(-1.0, -1.0), &w).is_none());
        assert!(clip_segment(Point::new(20.0, 0.0), Point::new(20.0, 10.0), &w).is_none());
    }

    #[test]
    fn clip_diagonal_corner() {
        let w = bbox(0.0, 0.0, 10.0, 10.0);
        let (a, b) = clip_segment(Point::new(-2.0, 8.0), Point::new(4.0, 14.0), &w).unwrap();
        assert!(a.approx_eq(Point::new(0.0, 10.0), 1e-12) || b.approx_eq(Point::new(0.0, 10.0), 1e-12));
    }

    #[test]
    fn format_values_like_the_figures() {
        assert_eq!(format_value(0.0, 2500.0), "0");
        assert_eq!(format_value(2500.0, 2500.0), "+2500.");
        assert_eq!(format_value(-12500.0, 2500.0), "-12500.");
        assert_eq!(format_value(0.1, 0.1), "+0.1");
        assert_eq!(format_value(-0.25, 0.05), "-0.25");
    }

    #[test]
    fn base_two_point_five_ladders_keep_their_significant_digit() {
        // Regression: interval 0.25 used to print level 0.75 as "+0.8",
        // collapsing adjacent labels. The fractional 2.5 mantissa needs
        // one more decimal place than its decade alone.
        assert_eq!(format_value(0.25, 0.25), "+0.25");
        assert_eq!(format_value(0.5, 0.25), "+0.50");
        assert_eq!(format_value(0.75, 0.25), "+0.75");
        assert_eq!(format_value(-1.25, 0.25), "-1.25");
        assert_eq!(format_value(0.025, 0.025), "+0.025");
        assert_eq!(format_value(0.075, 0.025), "+0.075");
        assert_eq!(format_value(-0.175, 0.025), "-0.175");
        // Integral-mantissa sub-unit intervals are unchanged.
        assert_eq!(format_value(0.2, 0.2), "+0.2");
        assert_eq!(format_value(-0.4, 0.2), "-0.4");
        // Whole-number intervals keep the figures' trailing point.
        assert_eq!(format_value(5.0, 2.5), "+5.");
    }

    #[test]
    fn subtitle_banner_prints_the_two_point_five_interval_exactly() {
        let mesh = TriMesh::new();
        let frame = plot_contours(&mesh, &[], 0.25, None, "T");
        assert_eq!(frame.subtitle(), Some("CONTOUR INTERVAL IS +0.25"));
        let frame = plot_contours(&mesh, &[], 0.025, None, "T");
        assert_eq!(frame.subtitle(), Some("CONTOUR INTERVAL IS +0.025"));
    }

    #[test]
    fn labels_suppressed_when_overlapping() {
        // Two isograms intersecting the boundary at nearly the same
        // point: only one label lands.
        let mut mesh = TriMesh::new();
        let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::BoundaryCorner);
        let b = mesh.add_node(Point::new(10.0, 0.0), BoundaryKind::BoundaryCorner);
        let c = mesh.add_node(Point::new(5.0, 10.0), BoundaryKind::BoundaryCorner);
        mesh.add_element([a, b, c]).unwrap();
        let close_segment = |x: f64| IsoSegment {
            a: Point::new(x, 0.0),
            b: Point::new(5.0, 5.0),
            a_on_boundary: true,
            b_on_boundary: false,
        };
        let isograms = vec![
            Isogram {
                level: 100.0,
                segments: vec![close_segment(5.0)],
            },
            Isogram {
                level: 200.0,
                segments: vec![close_segment(5.05)],
            },
        ];
        let frame = plot_contours(&mesh, &isograms, 100.0, None, "T");
        assert_eq!(frame.label_count(), 1);
    }

    #[test]
    fn zero_contour_always_labeled() {
        let mut mesh = TriMesh::new();
        let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::BoundaryCorner);
        let b = mesh.add_node(Point::new(10.0, 0.0), BoundaryKind::BoundaryCorner);
        let c = mesh.add_node(Point::new(5.0, 10.0), BoundaryKind::BoundaryCorner);
        mesh.add_element([a, b, c]).unwrap();
        let seg = |x: f64| IsoSegment {
            a: Point::new(x, 0.0),
            b: Point::new(5.0, 5.0),
            a_on_boundary: true,
            b_on_boundary: false,
        };
        let isograms = vec![
            Isogram {
                level: 100.0,
                segments: vec![seg(5.0)],
            },
            Isogram {
                level: 0.0,
                segments: vec![seg(5.02)],
            },
        ];
        let frame = plot_contours(&mesh, &isograms, 100.0, None, "T");
        // The zero label is placed first; the +100. label then overlaps
        // and is suppressed — but zero itself is never suppressed.
        assert_eq!(frame.label_count(), 1);
    }

    #[test]
    fn window_excludes_outside_geometry() {
        let mut mesh = TriMesh::new();
        let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::BoundaryCorner);
        let b = mesh.add_node(Point::new(10.0, 0.0), BoundaryKind::BoundaryCorner);
        let c = mesh.add_node(Point::new(5.0, 10.0), BoundaryKind::BoundaryCorner);
        mesh.add_element([a, b, c]).unwrap();
        let isograms = vec![Isogram {
            level: 5.0,
            segments: vec![IsoSegment {
                a: Point::new(8.0, 8.0),
                b: Point::new(9.0, 9.0),
                a_on_boundary: true,
                b_on_boundary: false,
            }],
        }];
        // Zoom to the lower-left corner: contour and its label fall away.
        let window = Some(bbox(0.0, 0.0, 2.0, 2.0));
        let frame = plot_contours(&mesh, &isograms, 5.0, window, "ZOOM");
        assert_eq!(frame.label_count(), 0);
        // Only the clipped parts of the two boundary edges near the
        // corner are drawn.
        assert!(frame.vector_count() >= 1);
    }

    #[test]
    fn negative_levels_drawn_dashed() {
        let mut mesh = TriMesh::new();
        let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::BoundaryCorner);
        let b = mesh.add_node(Point::new(10.0, 0.0), BoundaryKind::BoundaryCorner);
        let c = mesh.add_node(Point::new(5.0, 10.0), BoundaryKind::BoundaryCorner);
        mesh.add_element([a, b, c]).unwrap();
        let long_segment = IsoSegment {
            a: Point::new(1.0, 5.0),
            b: Point::new(9.0, 5.0),
            a_on_boundary: false,
            b_on_boundary: false,
        };
        let positive = vec![Isogram {
            level: 100.0,
            segments: vec![long_segment],
        }];
        let negative = vec![Isogram {
            level: -100.0,
            segments: vec![long_segment],
        }];
        let solid = plot_contours(&mesh, &positive, 100.0, None, "T");
        let dashed = plot_contours(&mesh, &negative, 100.0, None, "T");
        // The dashed rendering splits the one contour vector into many.
        assert!(dashed.vector_count() > solid.vector_count() + 3);
    }

    #[test]
    fn zoom_window_edge_becomes_a_label_site() {
        // A contour crossing the zoom boundary is labeled where the
        // window cuts it, even though neither endpoint is on the mesh
        // boundary.
        let mut mesh = TriMesh::new();
        let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::BoundaryCorner);
        let b = mesh.add_node(Point::new(10.0, 0.0), BoundaryKind::BoundaryCorner);
        let c = mesh.add_node(Point::new(5.0, 10.0), BoundaryKind::BoundaryCorner);
        mesh.add_element([a, b, c]).unwrap();
        let isograms = vec![Isogram {
            level: 42.0,
            segments: vec![IsoSegment {
                a: Point::new(1.0, 1.0),
                b: Point::new(6.0, 1.0),
                a_on_boundary: false,
                b_on_boundary: false,
            }],
        }];
        // Full plot: interior segment, no label anywhere.
        let full = plot_contours(&mesh, &isograms, 42.0, None, "T");
        assert_eq!(full.label_count(), 0);
        // Zoomed so the window edge at x = 4 cuts the segment: one label.
        let window = Some(bbox(0.0, 0.0, 4.0, 4.0));
        let zoomed = plot_contours(&mesh, &isograms, 42.0, window, "T");
        assert_eq!(zoomed.label_count(), 1);
    }

    #[test]
    fn subtitle_carries_interval_banner() {
        let mesh = TriMesh::new();
        let frame = plot_contours(&mesh, &[], 2500.0, None, "T");
        assert_eq!(frame.subtitle(), Some("CONTOUR INTERVAL IS +2500."));
    }
}

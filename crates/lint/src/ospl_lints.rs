//! Static analysis of OSPL contour-plot decks (`Oxxx` lints): checks the
//! Type-1 control card against the mesh and field the deck carries,
//! without running the contour tracer, plus the node ↔ element dataflow
//! check (`O004`).

use cafemio_cards::{Deck, Format};
use cafemio_mesh::MeshIndex;
use cafemio_ospl::deck::{parse_ospl_deck, OsplInput};
use cafemio_ospl::OsplError;

use crate::dataflow::{DeckGraph, EntityKind};
use crate::diagnostic::{Diagnostic, Edit, Fix, LintCode, LintConfig, LintReport, SourceSpan};

/// Lints OSPL deck text.
///
/// # Errors
///
/// [`OsplError`] when the deck cannot be parsed (lint needs the
/// structured input).
pub fn lint_ospl_deck_text(text: &str, config: &LintConfig) -> Result<LintReport, OsplError> {
    let deck = Deck::from_text(text).map_err(OsplError::Card)?;
    lint_ospl_deck(&deck, config)
}

/// Lints a parsed OSPL card deck.
///
/// # Errors
///
/// [`OsplError`] when parsing fails.
pub fn lint_ospl_deck(deck: &Deck, config: &LintConfig) -> Result<LintReport, OsplError> {
    let input = parse_ospl_deck(deck)?;
    Ok(lint_ospl_input(&input, config))
}

/// One-based inclusive keypunch columns spanned by data fields
/// `from_field..=to_field` of the Type-1 control format `(2I5, 5F10.4)`.
fn t1_columns(from_field: usize, to_field: usize) -> Option<(usize, usize)> {
    let format: Format = "(2I5, 5F10.4)".parse().ok()?;
    let (from, _) = format.data_field_columns(from_field)?;
    let (_, to) = format.data_field_columns(to_field)?;
    Some((from, to))
}

/// The machine repair for a useless zoom window: zero XMX/XMN/YMX/YMN
/// (fields 3-6 of the Type-1 card), which the reader interprets as "plot
/// everything".
fn zero_window_fix() -> Fix {
    match t1_columns(3, 6) {
        Some(columns) => Fix::edits(
            "zero XMX/XMN/YMX/YMN on the Type-1 card to plot everything",
            vec![Edit::ReplaceColumns {
                card: 0,
                columns,
                text: "    0.0000".repeat(4),
            }],
        ),
        // invariant: the literal control format always parses; this arm
        // only keeps the lint total rather than panicking.
        None => Fix::advice("zero XMX/XMN/YMX/YMN on the Type-1 card to plot everything"),
    }
}

/// The machine repair for an oversized contour interval: zero DELTA
/// (field 7 of the Type-1 card), selecting the automatic interval.
fn zero_delta_fix() -> Fix {
    match t1_columns(7, 7) {
        Some(columns) => Fix::edits(
            "zero DELTA on the Type-1 card for the automatic interval",
            vec![Edit::ReplaceColumns {
                card: 0,
                columns,
                text: "0.0000".into(),
            }],
        ),
        // invariant: the literal control format always parses; this arm
        // only keeps the lint total rather than panicking.
        None => Fix::advice("zero DELTA on the Type-1 card for the automatic interval"),
    }
}

/// Lints a parsed OSPL input. The window/interval diagnostics point at
/// the offending *field* of the Type-1 control card (with keypunch
/// columns); `O004` points at the unreferenced nodal card.
pub fn lint_ospl_input(input: &OsplInput, config: &LintConfig) -> LintReport {
    let mut report = LintReport::new();
    // Fields 3-6 of the control card hold the window, field 7 DELTA.
    let window_span = SourceSpan {
        card: Some(0),
        field: Some(3),
        columns: t1_columns(3, 6),
    };
    let delta_span = SourceSpan {
        card: Some(0),
        field: Some(7),
        columns: t1_columns(7, 7),
    };

    // O001: a zoom window that misses the mesh entirely plots nothing.
    // Two tiers: a window off the mesh bounding box is reported against
    // the extents (the numbers the user can read off their deck); a
    // window inside the extents is checked element-precisely with the
    // spatial index — a window in a concave notch or a hole plots
    // nothing even though the bounding boxes overlap.
    let extents = input.mesh.bounding_box();
    if let (Some(window), false) = (&input.options.window, extents.is_empty()) {
        if !window.intersects(&extents) {
            report.push(Diagnostic {
                code: LintCode::ContourWindowOutsideExtents,
                severity: config.severity(LintCode::ContourWindowOutsideExtents),
                span: window_span,
                message: format!(
                    "window x [{:.4}, {:.4}] y [{:.4}, {:.4}] does not intersect the mesh \
                     extents x [{:.4}, {:.4}] y [{:.4}, {:.4}]; the plot would be empty",
                    window.min().x,
                    window.max().x,
                    window.min().y,
                    window.max().y,
                    extents.min().x,
                    extents.max().x,
                    extents.min().y,
                    extents.max().y,
                ),
                fix: Some(zero_window_fix()),
            });
        } else if !window.is_empty() && !MeshIndex::new(&input.mesh).any_element_intersects(window)
        {
            report.push(Diagnostic {
                code: LintCode::ContourWindowOutsideExtents,
                severity: config.severity(LintCode::ContourWindowOutsideExtents),
                span: window_span,
                message: format!(
                    "window x [{:.4}, {:.4}] y [{:.4}, {:.4}] lies inside the mesh extents \
                     but touches no element; the plot would be empty",
                    window.min().x,
                    window.max().x,
                    window.min().y,
                    window.max().y,
                ),
                fix: Some(zero_window_fix()),
            });
        }
    }

    // O002: an interval wider than the whole field range draws at most
    // one contour — almost certainly a units mistake on DELTA.
    if let (Some(delta), Some((min, max))) = (input.options.interval, input.field.min_max()) {
        let range = max - min;
        if range > 0.0 && delta > range {
            report.push(Diagnostic {
                code: LintCode::IntervalExceedsFieldRange,
                severity: config.severity(LintCode::IntervalExceedsFieldRange),
                span: delta_span,
                message: format!(
                    "contour interval {delta} exceeds the whole field range {range} \
                     ({min} to {max}); at most one contour can appear"
                ),
                fix: Some(zero_delta_fix()),
            });
        }
    }

    // O004: dataflow over the node ↔ element reference graph — a nodal
    // card no element references is dead weight the tracer never visits
    // (contours interpolate along element edges only).
    let graph = DeckGraph::from_ospl_mesh(&input.mesh);
    for dead in graph.unreferenced(EntityKind::PlotNode) {
        report.push(Diagnostic {
            code: LintCode::UnreferencedPlotNode,
            severity: config.severity(LintCode::UnreferencedPlotNode),
            span: dead.card.map(SourceSpan::card).unwrap_or_default(),
            message: format!(
                "node {} is defined but no element card references it; the contour \
                 tracer never visits it",
                dead.id
            ),
            fix: Some(Fix::advice(
                "remove the unused nodal card (renumbering later nodes), or add it to \
                 an element",
            )),
        });
    }

    report
}

/// O003: a contour request over a stress component the session's
/// analysis kind never produces — every plotted value would be an exact
/// zero. Session-level ([`LintCode::SESSION`]): the deck alone cannot
/// decide it, so the caller states what was requested and whether the
/// analysis produces it (e.g. the circumferential component under plane
/// stress is identically zero).
pub fn lint_component_request(
    analysis: &str,
    component: &str,
    produced: bool,
    config: &LintConfig,
) -> LintReport {
    let mut report = LintReport::new();
    if !produced {
        report.push(Diagnostic {
            code: LintCode::ComponentNotProduced,
            severity: config.severity(LintCode::ComponentNotProduced),
            span: SourceSpan::none(),
            message: format!(
                "the {analysis} analysis never produces the {component} component; every \
                 contour value would be an exact zero"
            ),
            fix: Some(Fix::advice(
                "contour a component the analysis produces, or switch the analysis kind",
            )),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafemio_geom::{BoundingBox, Point};
    use cafemio_mesh::{BoundaryKind, NodalField, TriMesh};
    use cafemio_ospl::ContourOptions;

    /// An L-shaped mesh: elements around the corner, nothing in the
    /// upper-right quadrant of the bounding box.
    fn l_shape() -> TriMesh {
        let mut mesh = TriMesh::new();
        let p = |x: f64, y: f64| Point::new(x, y);
        let n0 = mesh.add_node(p(0.0, 0.0), BoundaryKind::Boundary);
        let n1 = mesh.add_node(p(2.0, 0.0), BoundaryKind::Boundary);
        let n2 = mesh.add_node(p(2.0, 1.0), BoundaryKind::Boundary);
        let n3 = mesh.add_node(p(0.0, 1.0), BoundaryKind::Boundary);
        let n4 = mesh.add_node(p(1.0, 2.0), BoundaryKind::Boundary);
        let n5 = mesh.add_node(p(0.0, 2.0), BoundaryKind::Boundary);
        mesh.add_element([n0, n1, n2]).unwrap();
        mesh.add_element([n0, n2, n3]).unwrap();
        mesh.add_element([n3, n2, n4]).unwrap();
        mesh.add_element([n3, n4, n5]).unwrap();
        mesh
    }

    fn input_with_window(window: BoundingBox) -> OsplInput {
        let mesh = l_shape();
        let field = NodalField::new("S", vec![0.0; mesh.node_count()]);
        OsplInput {
            mesh,
            field,
            options: ContourOptions::new().window(window),
            titles: (String::new(), String::new()),
        }
    }

    #[test]
    fn o001_fires_for_a_window_in_a_mesh_notch() {
        // The L-shape's bounding box is [0,2]x[0,2] but the upper-right
        // region holds no elements: a window there passes the old
        // bbox-only check yet plots nothing.
        let input = input_with_window(BoundingBox::new(
            Point::new(1.6, 1.6),
            Point::new(1.9, 1.9),
        ));
        let report = lint_ospl_input(&input, &LintConfig::new());
        assert_eq!(report.diagnostics().len(), 1);
        let d = &report.diagnostics()[0];
        assert_eq!(d.code, LintCode::ContourWindowOutsideExtents);
        assert!(d.message.contains("touches no element"), "{}", d.message);
        // The span names the window fields, columns 11-50 of card 1.
        assert_eq!(d.span.field, Some(3));
        assert_eq!(d.span.columns, Some((11, 50)));
        assert!(d.is_machine_fixable());
    }

    #[test]
    fn o001_stays_quiet_for_a_window_touching_elements() {
        let input = input_with_window(BoundingBox::new(
            Point::new(0.2, 0.2),
            Point::new(0.8, 0.8),
        ));
        let report = lint_ospl_input(&input, &LintConfig::new());
        assert!(report.diagnostics().is_empty(), "{:?}", report.diagnostics());
    }

    #[test]
    fn o001_keeps_the_extents_message_off_the_bounding_box() {
        let input = input_with_window(BoundingBox::new(
            Point::new(5.0, 5.0),
            Point::new(6.0, 6.0),
        ));
        let report = lint_ospl_input(&input, &LintConfig::new());
        assert_eq!(report.diagnostics().len(), 1);
        assert!(
            report.diagnostics()[0].message.contains("does not intersect the mesh extents"),
            "{}",
            report.diagnostics()[0].message
        );
    }

    #[test]
    fn o002_points_at_the_delta_field() {
        let mesh = l_shape();
        let field = NodalField::new("S", (0..mesh.node_count()).map(|i| i as f64).collect());
        let input = OsplInput {
            mesh,
            field,
            options: ContourOptions::new().interval(100.0),
            titles: (String::new(), String::new()),
        };
        let report = lint_ospl_input(&input, &LintConfig::new());
        assert_eq!(report.diagnostics().len(), 1);
        let d = &report.diagnostics()[0];
        assert_eq!(d.code, LintCode::IntervalExceedsFieldRange);
        assert_eq!(d.span.columns, Some((51, 60)));
        assert!(d.is_machine_fixable());
    }

    #[test]
    fn o004_flags_a_node_no_element_references() {
        let mut mesh = l_shape();
        mesh.add_node(Point::new(9.0, 9.0), BoundaryKind::Boundary);
        let field = NodalField::new("S", vec![0.0; mesh.node_count()]);
        let input = OsplInput {
            mesh,
            field,
            options: ContourOptions::new(),
            titles: (String::new(), String::new()),
        };
        let report = lint_ospl_input(&input, &LintConfig::new());
        assert_eq!(report.diagnostics().len(), 1);
        let d = &report.diagnostics()[0];
        assert_eq!(d.code, LintCode::UnreferencedPlotNode);
        // Node 7 sits at card index 3 (control + two titles) + 6.
        assert_eq!(d.span.card, Some(9));
        assert!(!d.is_machine_fixable());
    }
}

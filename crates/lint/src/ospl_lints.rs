//! Static analysis of OSPL contour-plot decks (`Oxxx` lints): checks the
//! Type-1 control card against the mesh and field the deck carries,
//! without running the contour tracer.

use cafemio_cards::Deck;
use cafemio_mesh::MeshIndex;
use cafemio_ospl::deck::{parse_ospl_deck, OsplInput};
use cafemio_ospl::OsplError;

use crate::diagnostic::{Diagnostic, LintCode, LintConfig, LintReport, SourceSpan};

/// Lints OSPL deck text.
///
/// # Errors
///
/// [`OsplError`] when the deck cannot be parsed (lint needs the
/// structured input).
pub fn lint_ospl_deck_text(text: &str, config: &LintConfig) -> Result<LintReport, OsplError> {
    let deck = Deck::from_text(text).map_err(OsplError::Card)?;
    lint_ospl_deck(&deck, config)
}

/// Lints a parsed OSPL card deck.
///
/// # Errors
///
/// [`OsplError`] when parsing fails.
pub fn lint_ospl_deck(deck: &Deck, config: &LintConfig) -> Result<LintReport, OsplError> {
    let input = parse_ospl_deck(deck)?;
    Ok(lint_ospl_input(&input, config))
}

/// Lints a parsed OSPL input. Both `Oxxx` diagnostics point at the
/// Type-1 control card, which is always the first card of the deck.
pub fn lint_ospl_input(input: &OsplInput, config: &LintConfig) -> LintReport {
    let mut report = LintReport::new();
    let control_card = SourceSpan::card(0);

    // O001: a zoom window that misses the mesh entirely plots nothing.
    // Two tiers: a window off the mesh bounding box is reported against
    // the extents (the numbers the user can read off their deck); a
    // window inside the extents is checked element-precisely with the
    // spatial index — a window in a concave notch or a hole plots
    // nothing even though the bounding boxes overlap.
    let extents = input.mesh.bounding_box();
    if let (Some(window), false) = (&input.options.window, extents.is_empty()) {
        if !window.intersects(&extents) {
            report.push(Diagnostic {
                code: LintCode::ContourWindowOutsideExtents,
                severity: config.severity(LintCode::ContourWindowOutsideExtents),
                span: control_card,
                message: format!(
                    "window x [{:.4}, {:.4}] y [{:.4}, {:.4}] does not intersect the mesh \
                     extents x [{:.4}, {:.4}] y [{:.4}, {:.4}]; the plot would be empty",
                    window.min().x,
                    window.max().x,
                    window.min().y,
                    window.max().y,
                    extents.min().x,
                    extents.max().x,
                    extents.min().y,
                    extents.max().y,
                ),
                suggestion: Some(
                    "fix XMX/XMN/YMX/YMN on the Type-1 card, or zero them to plot \
                     everything"
                        .into(),
                ),
            });
        } else if !window.is_empty() && !MeshIndex::new(&input.mesh).any_element_intersects(window)
        {
            report.push(Diagnostic {
                code: LintCode::ContourWindowOutsideExtents,
                severity: config.severity(LintCode::ContourWindowOutsideExtents),
                span: control_card,
                message: format!(
                    "window x [{:.4}, {:.4}] y [{:.4}, {:.4}] lies inside the mesh extents \
                     but touches no element; the plot would be empty",
                    window.min().x,
                    window.max().x,
                    window.min().y,
                    window.max().y,
                ),
                suggestion: Some(
                    "fix XMX/XMN/YMX/YMN on the Type-1 card, or zero them to plot \
                     everything"
                        .into(),
                ),
            });
        }
    }

    // O002: an interval wider than the whole field range draws at most
    // one contour — almost certainly a units mistake on DELTA.
    if let (Some(delta), Some((min, max))) = (input.options.interval, input.field.min_max()) {
        let range = max - min;
        if range > 0.0 && delta > range {
            report.push(Diagnostic {
                code: LintCode::IntervalExceedsFieldRange,
                severity: config.severity(LintCode::IntervalExceedsFieldRange),
                span: control_card,
                message: format!(
                    "contour interval {delta} exceeds the whole field range {range} \
                     ({min} to {max}); at most one contour can appear"
                ),
                suggestion: Some(
                    "shrink DELTA on the Type-1 card, or set it to zero for the automatic \
                     interval"
                        .into(),
                ),
            });
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafemio_geom::{BoundingBox, Point};
    use cafemio_mesh::{BoundaryKind, NodalField, TriMesh};
    use cafemio_ospl::ContourOptions;

    /// An L-shaped mesh: elements around the corner, nothing in the
    /// upper-right quadrant of the bounding box.
    fn l_shape() -> TriMesh {
        let mut mesh = TriMesh::new();
        let p = |x: f64, y: f64| Point::new(x, y);
        let n0 = mesh.add_node(p(0.0, 0.0), BoundaryKind::Boundary);
        let n1 = mesh.add_node(p(2.0, 0.0), BoundaryKind::Boundary);
        let n2 = mesh.add_node(p(2.0, 1.0), BoundaryKind::Boundary);
        let n3 = mesh.add_node(p(0.0, 1.0), BoundaryKind::Boundary);
        let n4 = mesh.add_node(p(1.0, 2.0), BoundaryKind::Boundary);
        let n5 = mesh.add_node(p(0.0, 2.0), BoundaryKind::Boundary);
        mesh.add_element([n0, n1, n2]).unwrap();
        mesh.add_element([n0, n2, n3]).unwrap();
        mesh.add_element([n3, n2, n4]).unwrap();
        mesh.add_element([n3, n4, n5]).unwrap();
        mesh
    }

    fn input_with_window(window: BoundingBox) -> OsplInput {
        let mesh = l_shape();
        let field = NodalField::new("S", vec![0.0; mesh.node_count()]);
        OsplInput {
            mesh,
            field,
            options: ContourOptions::new().window(window),
            titles: (String::new(), String::new()),
        }
    }

    #[test]
    fn o001_fires_for_a_window_in_a_mesh_notch() {
        // The L-shape's bounding box is [0,2]x[0,2] but the upper-right
        // region holds no elements: a window there passes the old
        // bbox-only check yet plots nothing.
        let input = input_with_window(BoundingBox::new(
            Point::new(1.6, 1.6),
            Point::new(1.9, 1.9),
        ));
        let report = lint_ospl_input(&input, &LintConfig::new());
        assert_eq!(report.diagnostics().len(), 1);
        let d = &report.diagnostics()[0];
        assert_eq!(d.code, LintCode::ContourWindowOutsideExtents);
        assert!(d.message.contains("touches no element"), "{}", d.message);
    }

    #[test]
    fn o001_stays_quiet_for_a_window_touching_elements() {
        let input = input_with_window(BoundingBox::new(
            Point::new(0.2, 0.2),
            Point::new(0.8, 0.8),
        ));
        let report = lint_ospl_input(&input, &LintConfig::new());
        assert!(report.diagnostics().is_empty(), "{:?}", report.diagnostics());
    }

    #[test]
    fn o001_keeps_the_extents_message_off_the_bounding_box() {
        let input = input_with_window(BoundingBox::new(
            Point::new(5.0, 5.0),
            Point::new(6.0, 6.0),
        ));
        let report = lint_ospl_input(&input, &LintConfig::new());
        assert_eq!(report.diagnostics().len(), 1);
        assert!(
            report.diagnostics()[0].message.contains("does not intersect the mesh extents"),
            "{}",
            report.diagnostics()[0].message
        );
    }
}

//! Static analysis of OSPL contour-plot decks (`Oxxx` lints): checks the
//! Type-1 control card against the mesh and field the deck carries,
//! without running the contour tracer.

use cafemio_cards::Deck;
use cafemio_ospl::deck::{parse_ospl_deck, OsplInput};
use cafemio_ospl::OsplError;

use crate::diagnostic::{Diagnostic, LintCode, LintConfig, LintReport, SourceSpan};

/// Lints OSPL deck text.
///
/// # Errors
///
/// [`OsplError`] when the deck cannot be parsed (lint needs the
/// structured input).
pub fn lint_ospl_deck_text(text: &str, config: &LintConfig) -> Result<LintReport, OsplError> {
    let deck = Deck::from_text(text).map_err(OsplError::Card)?;
    lint_ospl_deck(&deck, config)
}

/// Lints a parsed OSPL card deck.
///
/// # Errors
///
/// [`OsplError`] when parsing fails.
pub fn lint_ospl_deck(deck: &Deck, config: &LintConfig) -> Result<LintReport, OsplError> {
    let input = parse_ospl_deck(deck)?;
    Ok(lint_ospl_input(&input, config))
}

/// Lints a parsed OSPL input. Both `Oxxx` diagnostics point at the
/// Type-1 control card, which is always the first card of the deck.
pub fn lint_ospl_input(input: &OsplInput, config: &LintConfig) -> LintReport {
    let mut report = LintReport::new();
    let control_card = SourceSpan::card(0);

    // O001: a zoom window that misses the mesh entirely plots nothing.
    let extents = input.mesh.bounding_box();
    if let (Some(window), false) = (&input.options.window, extents.is_empty()) {
        if !window.intersects(&extents) {
            report.push(Diagnostic {
                code: LintCode::ContourWindowOutsideExtents,
                severity: config.severity(LintCode::ContourWindowOutsideExtents),
                span: control_card,
                message: format!(
                    "window x [{:.4}, {:.4}] y [{:.4}, {:.4}] does not intersect the mesh \
                     extents x [{:.4}, {:.4}] y [{:.4}, {:.4}]; the plot would be empty",
                    window.min().x,
                    window.max().x,
                    window.min().y,
                    window.max().y,
                    extents.min().x,
                    extents.max().x,
                    extents.min().y,
                    extents.max().y,
                ),
                suggestion: Some(
                    "fix XMX/XMN/YMX/YMN on the Type-1 card, or zero them to plot \
                     everything"
                        .into(),
                ),
            });
        }
    }

    // O002: an interval wider than the whole field range draws at most
    // one contour — almost certainly a units mistake on DELTA.
    if let (Some(delta), Some((min, max))) = (input.options.interval, input.field.min_max()) {
        let range = max - min;
        if range > 0.0 && delta > range {
            report.push(Diagnostic {
                code: LintCode::IntervalExceedsFieldRange,
                severity: config.severity(LintCode::IntervalExceedsFieldRange),
                span: control_card,
                message: format!(
                    "contour interval {delta} exceeds the whole field range {range} \
                     ({min} to {max}); at most one contour can appear"
                ),
                suggestion: Some(
                    "shrink DELTA on the Type-1 card, or set it to zero for the automatic \
                     interval"
                        .into(),
                ),
            });
        }
    }

    report
}

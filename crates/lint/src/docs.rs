//! Renders the lint catalog as Markdown (`docs/LINTS.md`).
//!
//! The document is *generated from the registry* — the code table, the
//! per-code descriptions, and the before/after examples all come from
//! [`LintCode::ALL`] and the corpora, so `decklint --doc-check` in CI
//! guarantees the published catalog can never drift from the
//! implementation.

use crate::corpus::{fix_cases, FixClass};
use crate::diagnostic::LintCode;

/// One-paragraph description of a code, for the generated catalog.
/// Exhaustive on purpose: adding a code without describing it is a
/// compile error.
fn description(code: LintCode) -> &'static str {
    match code {
        LintCode::OverlappingSubdivisions => {
            "Two Type-4 subdivisions generate the same grid-cell triangle. The idealizer \
             rejects the deck with `OverlappingSubdivisions` — after doing all the mesh \
             work; the lint replicates the exact criterion up front."
        }
        LintCode::DisconnectedAssemblage => {
            "A subdivision shares no grid point with the rest of the assemblage, so the \
             stiffness matrix decouples into independent blocks."
        }
        LintCode::DuplicateSubdivisionId => {
            "Two Type-4 cards carry the same subdivision number. The runtime silently \
             merges their shape-line groups, which is never what the analyst meant."
        }
        LintCode::GridLimitProximity => {
            "A grid coordinate or projected node/element count uses more than 90% of an \
             active capacity limit: the deck runs today, but the next refinement pass \
             will not."
        }
        LintCode::UnshapedSubdivision => {
            "Dataflow: a subdivision is defined but no Type-5 group references it, so its \
             boundary keeps the straight grid shape. With the fixed-count card layout \
             this always means some group points at the wrong subdivision."
        }
        LintCode::TrailingCardsIgnored => {
            "Dataflow: the reader consumes exactly the cards the NSET/count fields \
             describe; cards after the last data set are never read. Blank stragglers \
             are deleted by the fix; non-blank ones usually mean NSET is too small."
        }
        LintCode::ShapeSegmentSpanMismatch => {
            "A shape line's end points do not lie on a common side of the subdivision: \
             the shaping pass cannot find the run of boundary nodes to relocate."
        }
        LintCode::ArcSweepExceeds90 => {
            "An arc is geometrically impossible (chord longer than the diameter, \
             non-finite values, negative radius) or subtends more than the 90 degrees \
             the program supports. A negative radius is machine-fixed by negating it and \
             swapping the end points."
        }
        LintCode::DeadShapeLine => {
            "Every node this line locates is relocated by a later line of the same \
             subdivision — the card has no effect on the final mesh and is deleted by \
             the fix (decrementing NLINES on its Type-5 header)."
        }
        LintCode::ShapeLineUnknownSubdivision => {
            "Dataflow: a Type-5 group names a subdivision no Type-4 card defines; its \
             lines are parsed and then never consumed."
        }
        LintCode::ConflictingPointPosition => {
            "Dataflow: two shape lines pin the same grid point to different physical \
             positions. The shaping pass applies cards in deck order, so the later card \
             silently wins — an order-dependence hazard."
        }
        LintCode::DuplicateShapeGroup => {
            "Dataflow: two Type-5 groups name the same subdivision. Their lines \
             concatenate in deck order, so which position a node ends up with depends on \
             group order — and some other subdivision is usually left unshaped."
        }
        LintCode::BandwidthHostileNumbering => {
            "Renumbering is off and the natural row-major numbering has more than twice \
             the bandwidth of the transposed ordering: the solver will pay for the \
             orientation. The fix turns the renumber option back on."
        }
        LintCode::FormatFieldTooNarrowForCoordinateRange => {
            "A Type-7 punch field (Fw.d) is too narrow for the coordinate range the deck \
             implies; punching would overflow the field. The fix widens exactly that \
             field on the format card."
        }
        LintCode::FormatFieldTooNarrowForCount => {
            "A Type-7 punch field (Iw) is too narrow for the node or element numbers the \
             deck will generate. The fix widens exactly that field on the format card."
        }
        LintCode::ContourWindowOutsideExtents => {
            "The Type-1 zoom window (XMX/XMN/YMX/YMN) misses every element — either off \
             the mesh bounding box entirely, or inside it but over a hole/notch. The \
             plot would be empty; the fix zeroes the window, which means \"plot \
             everything\"."
        }
        LintCode::IntervalExceedsFieldRange => {
            "The contour interval DELTA exceeds the whole field range, so at most one \
             contour can appear — almost always a units mistake. The fix zeroes DELTA, \
             selecting the automatic interval."
        }
        LintCode::ComponentNotProduced => {
            "Session-level dataflow: the contour request names a stress component the \
             session's analysis kind never produces (e.g. the circumferential component \
             under plane stress is identically zero), so every plotted value would be an \
             exact zero. Not derivable from the deck alone, so it has no golden deck."
        }
        LintCode::UnreferencedPlotNode => {
            "Dataflow: an OSPL nodal card is defined but no element card references it. \
             The contour tracer interpolates along element edges only, so the node is \
             dead weight."
        }
    }
}

/// Renders the complete catalog, ready to be written to `docs/LINTS.md`.
pub fn render_lints_md() -> String {
    let mut out = String::new();
    out.push_str(
        "# Lint catalog\n\n\
         <!-- GENERATED FILE: do not edit. Regenerate with `cargo run --release --bin \
         decklint -- --doc > docs/LINTS.md`; CI runs `decklint --doc-check`. -->\n\n\
         Every diagnostic `decklint` (and the pipeline's lint gate) can emit, generated \
         from the registry in `cafemio-lint`. *Deny* codes reject the deck at the \
         session's lint gate because the runtime would reject it anyway; *warn* codes \
         flag decks that run today but are fragile. Machine-fixable codes are repaired \
         by `decklint --fix` (see the fix corpus for the exact before/after \
         behavior); the others carry advice only.\n\n",
    );
    out.push_str("| Code | Name | Default | Machine-fixable |\n");
    out.push_str("|------|------|---------|------------------|\n");
    for code in LintCode::ALL {
        out.push_str(&format!(
            "| {} | `{}` | {} | {} |\n",
            code.code(),
            code.name(),
            code.default_severity(),
            if code.fixable() { "yes" } else { "no" },
        ));
    }
    out.push('\n');
    let pairs = fix_cases();
    for code in LintCode::ALL {
        out.push_str(&format!("## {} (`{}`)\n\n", code.code(), code.name()));
        out.push_str(&format!(
            "*Default severity: {}.*{}\n\n",
            code.default_severity(),
            if LintCode::SESSION.contains(&code) {
                " *Session-level: derived from session state, not deck text.*"
            } else {
                ""
            }
        ));
        out.push_str(description(code));
        out.push_str("\n\n");
        if let Some(pair) = pairs.iter().find(|p| p.code == code) {
            let class = match pair.class {
                FixClass::Formatting => {
                    "formatting-class: the repaired deck idealizes to a bit-identical mesh"
                }
                FixClass::Semantic => {
                    "semantic-class: the repair changes exactly the documented artifact"
                }
            };
            out.push_str(&format!("Machine fix ({class}). Before:\n\n```text\n"));
            out.push_str(pair.before);
            out.push_str("```\n\nAfter `decklint --fix`:\n\n```text\n");
            out.push_str(pair.after);
            out.push_str("```\n\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_catalog_names_every_code_once() {
        let md = render_lints_md();
        for code in LintCode::ALL {
            assert!(
                md.contains(&format!("## {} (`{}`)", code.code(), code.name())),
                "catalog is missing {}",
                code.code()
            );
        }
        assert!(md.contains("GENERATED FILE"));
    }

    #[test]
    fn every_fixable_code_documents_a_before_after_pair() {
        let md = render_lints_md();
        let fixable = LintCode::ALL.iter().filter(|c| c.fixable()).count();
        assert_eq!(md.matches("Machine fix (").count(), fixable);
    }
}

//! The cross-card reference graph behind the dataflow lints.
//!
//! A deck is a tiny dataflow program: Type-4 cards *define* subdivisions,
//! Type-5 groups *reference* them, OSPL Type-3 cards define plot nodes
//! and Type-4 element cards reference those. [`DeckGraph`] makes the
//! def/use structure explicit so lints can ask classic dataflow
//! questions — defined-but-unreferenced (`D005`, `O004`), referenced
//! twice (`S006`), referenced-but-undefined (`S004`) — instead of
//! re-deriving ad-hoc maps per check.

use cafemio_idlz::deck::DataSetLayout;
use cafemio_idlz::IdealizationSpec;
use cafemio_mesh::TriMesh;

/// What a graph entity stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityKind {
    /// A Type-4 subdivision definition (IDLZ).
    Subdivision,
    /// A Type-5 shape-line group, which references a subdivision (IDLZ).
    ShapeGroup,
    /// A Type-3 nodal card (OSPL).
    PlotNode,
    /// A Type-4 element card, which references three plot nodes (OSPL).
    PlotElement,
}

/// One card-defined entity of the deck.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    /// What the entity is.
    pub kind: EntityKind,
    /// Its user-visible number (subdivision id, node/element ordinal).
    pub id: usize,
    /// The zero-based index of its defining card, when known.
    pub card: Option<usize>,
}

/// A directed reference: entity `from` consumes entity `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reference {
    /// Index of the referencing entity in [`DeckGraph::entities`].
    pub from: usize,
    /// Index of the referenced entity.
    pub to: usize,
}

/// The cross-card reference graph of one deck (or one IDLZ data set).
#[derive(Debug, Clone, Default)]
pub struct DeckGraph {
    entities: Vec<Entity>,
    references: Vec<Reference>,
}

impl DeckGraph {
    /// Builds the Type-4 ↔ Type-5 graph of one IDLZ data set. Card
    /// provenance comes from the layout; without one the graph has
    /// subdivision definitions but no groups (programmatic specs carry
    /// no Type-5 structure).
    pub fn from_idlz_set(spec: &IdealizationSpec, layout: Option<&DataSetLayout>) -> DeckGraph {
        let mut graph = DeckGraph::default();
        for (i, sub) in spec.subdivisions().iter().enumerate() {
            graph.entities.push(Entity {
                kind: EntityKind::Subdivision,
                id: sub.id(),
                card: layout.and_then(|l| l.subdivision_cards.get(i).copied()),
            });
        }
        let sub_count = graph.entities.len();
        if let Some(layout) = layout {
            for group in &layout.shape_groups {
                let from = graph.entities.len();
                graph.entities.push(Entity {
                    kind: EntityKind::ShapeGroup,
                    id: group.subdivision,
                    card: Some(group.header_card),
                });
                // Every subdivision with the matching number is a
                // target: the runtime keys shape lines by number, so
                // twin-numbered subdivisions (D003) all consume the
                // group's lines.
                let targets: Vec<usize> = (0..sub_count)
                    .filter(|&s| graph.entities[s].id == group.subdivision)
                    .collect();
                for to in targets {
                    graph.references.push(Reference { from, to });
                }
            }
        }
        graph
    }

    /// Builds the node ↔ element graph of an OSPL deck. The parser reads
    /// a fixed layout — control card, two titles, `NN` nodal cards,
    /// `NE` element cards — so card indices are derived from position:
    /// node `i` sits at card `3 + i`, element `j` at card `3 + NN + j`.
    pub fn from_ospl_mesh(mesh: &TriMesh) -> DeckGraph {
        let mut graph = DeckGraph::default();
        let node_count = mesh.node_count();
        for i in 0..node_count {
            graph.entities.push(Entity {
                kind: EntityKind::PlotNode,
                id: i + 1,
                card: Some(3 + i),
            });
        }
        for (id, element) in mesh.elements() {
            let from = graph.entities.len();
            graph.entities.push(Entity {
                kind: EntityKind::PlotElement,
                id: id.index() + 1,
                card: Some(3 + node_count + id.index()),
            });
            for node in element.nodes {
                graph.references.push(Reference {
                    from,
                    to: node.index(),
                });
            }
        }
        graph
    }

    /// Every entity, in definition (deck) order.
    pub fn entities(&self) -> &[Entity] {
        &self.entities
    }

    /// Every reference, in consumer order.
    pub fn references(&self) -> &[Reference] {
        &self.references
    }

    /// True when at least one reference points at `entity`.
    pub fn is_referenced(&self, entity: usize) -> bool {
        self.references.iter().any(|r| r.to == entity)
    }

    /// Entities of one kind that nothing references — the
    /// defined-but-dead set.
    pub fn unreferenced(&self, kind: EntityKind) -> Vec<&Entity> {
        self.entities
            .iter()
            .enumerate()
            .filter(|(i, e)| e.kind == kind && !self.is_referenced(*i))
            .map(|(_, e)| e)
            .collect()
    }

    /// Groups of entities of one kind that share an id, in first-seen
    /// order — the conflicting-redefinition set. Each group lists the
    /// entities in deck order.
    pub fn duplicate_definitions(&self, kind: EntityKind) -> Vec<Vec<&Entity>> {
        let mut by_id: Vec<(usize, Vec<&Entity>)> = Vec::new();
        for entity in self.entities.iter().filter(|e| e.kind == kind) {
            match by_id.iter_mut().find(|(id, _)| *id == entity.id) {
                Some((_, group)) => group.push(entity),
                None => by_id.push((entity.id, vec![entity])),
            }
        }
        by_id
            .into_iter()
            .filter(|(_, group)| group.len() > 1)
            .map(|(_, group)| group)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafemio_cards::Deck;
    use cafemio_geom::Point;
    use cafemio_idlz::deck::parse_deck_with_layout;
    use cafemio_mesh::BoundaryKind;

    fn two_sub_deck(second_group_target: usize) -> (Vec<IdealizationSpec>, Vec<DataSetLayout>) {
        let text = format!(
            concat!(
                "    1\n",
                "TWO BOXES\n",
                "    1    1    1    2\n",
                "    1    0    0    2    2         0    0\n",
                "    2    2    0    4    2         0    0\n",
                "    1    0\n",
                "{:5}    0\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
            second_group_target
        );
        parse_deck_with_layout(&Deck::from_text(&text).unwrap()).unwrap()
    }

    #[test]
    fn idlz_graph_links_groups_to_their_subdivisions() {
        let (specs, layouts) = two_sub_deck(2);
        let graph = DeckGraph::from_idlz_set(&specs[0], layouts.first());
        assert_eq!(graph.entities().len(), 4);
        assert_eq!(graph.references().len(), 2);
        assert!(graph.unreferenced(EntityKind::Subdivision).is_empty());
        assert!(graph.duplicate_definitions(EntityKind::ShapeGroup).is_empty());
    }

    #[test]
    fn idlz_graph_exposes_dead_subdivisions_and_duplicate_groups() {
        let (specs, layouts) = two_sub_deck(1);
        let graph = DeckGraph::from_idlz_set(&specs[0], layouts.first());
        let dead = graph.unreferenced(EntityKind::Subdivision);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].id, 2);
        assert_eq!(dead[0].card, Some(4));
        let dups = graph.duplicate_definitions(EntityKind::ShapeGroup);
        assert_eq!(dups.len(), 1);
        assert_eq!(dups[0].len(), 2);
        assert_eq!(dups[0][1].card, Some(6));
    }

    #[test]
    fn ospl_graph_exposes_unreferenced_nodes() {
        let mut mesh = TriMesh::new();
        let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
        let b = mesh.add_node(Point::new(1.0, 0.0), BoundaryKind::Boundary);
        let c = mesh.add_node(Point::new(0.0, 1.0), BoundaryKind::Boundary);
        let _d = mesh.add_node(Point::new(9.0, 9.0), BoundaryKind::Boundary);
        mesh.add_element([a, b, c]).unwrap();
        let graph = DeckGraph::from_ospl_mesh(&mesh);
        assert_eq!(graph.entities().len(), 5);
        let dead = graph.unreferenced(EntityKind::PlotNode);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].id, 4);
        assert_eq!(dead[0].card, Some(6));
        assert!(graph.unreferenced(EntityKind::PlotElement).len() == 1);
    }
}

//! Static analysis of IDLZ data sets: deck-structure (`Dxxx`), shaping
//! (`Sxxx`), numbering (`Nxxx`), and punch-format (`Fxxx`) lints.
//!
//! Everything here re-derives its verdicts from the parsed spec alone —
//! no mesh is generated and no matrix assembled. Where a check mirrors a
//! runtime rejection (`IdlzError::OverlappingSubdivisions`, `BadShapeLine`,
//! `ArcError::ExceedsQuarterTurn`, `CardError::FieldOverflow`) it
//! replicates the runtime's exact criterion so a deck that lints clean at
//! default severity cannot hit that rejection later.

use std::collections::{BTreeMap, BTreeSet};

use cafemio_cards::{Deck, EditDescriptor, Format};
use cafemio_idlz::deck::{parse_deck_with_layout, DataSetLayout};
use cafemio_idlz::{GridPoint, IdealizationSpec, IdlzError, ShapeLine, Side, Subdivision};

use crate::dataflow::{DeckGraph, EntityKind};
use crate::diagnostic::{Diagnostic, Edit, Fix, LintCode, LintConfig, LintReport, SourceSpan};

/// Lints IDLZ deck text: parses (with card provenance) and analyzes.
///
/// # Errors
///
/// [`IdlzError`] when the deck cannot even be parsed — lint needs the
/// structured spec; parse failures already carry card provenance.
pub fn lint_deck_text(text: &str, config: &LintConfig) -> Result<LintReport, IdlzError> {
    let deck = Deck::from_text(text).map_err(IdlzError::Card)?;
    lint_idlz_deck(&deck, config)
}

/// Lints a parsed card deck with full card provenance on every
/// diagnostic.
///
/// # Errors
///
/// [`IdlzError`] when parsing fails.
pub fn lint_idlz_deck(deck: &Deck, config: &LintConfig) -> Result<LintReport, IdlzError> {
    let (specs, layouts) = parse_deck_with_layout(deck)?;
    Ok(lint_idlz_with_deck(deck, &specs, &layouts, config))
}

/// Lints already-parsed specs together with the deck they came from —
/// the deck enables the checks that see past the parsed region (`D006`
/// trailing cards).
pub fn lint_idlz_with_deck(
    deck: &Deck,
    specs: &[IdealizationSpec],
    layouts: &[DataSetLayout],
    config: &LintConfig,
) -> LintReport {
    let mut report = lint_idlz(specs, layouts, config);
    check_trailing_cards(deck, layouts, config, &mut report);
    report
}

/// D006: the reader consumes exactly the cards the NSET/count fields
/// describe; anything after the last data set is silently ignored — a
/// dataflow hazard (the trailing cards are never consumed). When every
/// ignored card is blank the fix deletes them.
fn check_trailing_cards(
    deck: &Deck,
    layouts: &[DataSetLayout],
    config: &LintConfig,
    report: &mut LintReport,
) {
    if deck.is_empty() {
        return;
    }
    let consumed = layouts
        .last()
        .map(|l| l.element_format_card + 1)
        .unwrap_or(1);
    if consumed >= deck.len() {
        return;
    }
    let trailing = deck.len() - consumed;
    let all_blank = (consumed..deck.len()).all(|i| deck.card(i).is_blank());
    let fix = if all_blank {
        Some(Fix::edits(
            format!("delete the {trailing} blank trailing card(s)"),
            (consumed..deck.len())
                .rev()
                .map(|card| Edit::DeleteCard { card })
                .collect(),
        ))
    } else {
        Some(Fix::advice(
            "remove the unread cards, or raise NSET so they are read",
        ))
    };
    report.push(Diagnostic {
        code: LintCode::TrailingCardsIgnored,
        severity: config.severity(LintCode::TrailingCardsIgnored),
        span: SourceSpan::card(consumed),
        message: format!(
            "{trailing} card(s) after the last data set are never read by the deck reader"
        ),
        fix,
    });
}

/// Lints specs with their card layouts (parallel slices; a missing layout
/// degrades that set's spans to "no provenance").
pub fn lint_idlz(
    specs: &[IdealizationSpec],
    layouts: &[DataSetLayout],
    config: &LintConfig,
) -> LintReport {
    let mut report = LintReport::new();
    for (i, spec) in specs.iter().enumerate() {
        let set = SetContext {
            spec,
            layout: layouts.get(i),
            config,
        };
        set.lint_into(&mut report);
    }
    report
}

/// Lints bare specs (no deck, no card provenance) — the entry point for
/// programmatically built models.
pub fn lint_specs(specs: &[IdealizationSpec], config: &LintConfig) -> LintReport {
    lint_idlz(specs, &[], config)
}

/// One data set under analysis.
struct SetContext<'a> {
    spec: &'a IdealizationSpec,
    layout: Option<&'a DataSetLayout>,
    config: &'a LintConfig,
}

impl SetContext<'_> {
    fn lint_into(&self, report: &mut LintReport) {
        self.check_duplicate_ids(report);
        self.check_overlap(report);
        self.check_connectivity(report);
        self.check_limit_proximity(report);
        self.check_dataflow(report);
        self.check_point_conflicts(report);
        self.check_shape_lines(report);
        self.check_numbering(report);
        self.check_formats(report);
    }

    fn emit(
        &self,
        report: &mut LintReport,
        code: LintCode,
        span: SourceSpan,
        message: String,
        fix: Option<Fix>,
    ) {
        report.push(Diagnostic {
            code,
            severity: self.config.severity(code),
            span,
            message,
            fix,
        });
    }

    /// Span of the `i`-th Type-4 card.
    fn t4_span(&self, i: usize) -> SourceSpan {
        match self.layout.and_then(|l| l.subdivision_cards.get(i)) {
            Some(&card) => SourceSpan::card(card),
            None => SourceSpan::none(),
        }
    }

    /// Span of the Type-3 options card (optionally one of its fields).
    fn options_span(&self, field: Option<usize>) -> SourceSpan {
        match self.layout {
            Some(l) => SourceSpan {
                card: Some(l.options_card),
                field,
                columns: None,
            },
            None => SourceSpan::none(),
        }
    }

    /// Card indices of subdivision `sub_id`'s shape lines, in the order
    /// [`IdealizationSpec::shape_lines`] lists them (groups concatenate).
    fn line_cards(&self, sub_id: usize) -> Vec<usize> {
        let Some(layout) = self.layout else {
            return Vec::new();
        };
        layout
            .shape_groups
            .iter()
            .filter(|g| g.subdivision == sub_id)
            .flat_map(|g| g.line_cards.iter().copied())
            .collect()
    }

    fn line_span(&self, sub_id: usize, ordinal: usize, field: Option<usize>) -> SourceSpan {
        match self.line_cards(sub_id).get(ordinal) {
            Some(&card) => SourceSpan {
                card: Some(card),
                field,
                columns: None,
            },
            None => SourceSpan::none(),
        }
    }

    /// D003: every subdivision number must be unique — the runtime
    /// silently merges the shape-line groups of twins, which is never
    /// what the analyst meant.
    fn check_duplicate_ids(&self, report: &mut LintReport) {
        let mut seen: BTreeMap<usize, usize> = BTreeMap::new();
        for (i, sub) in self.spec.subdivisions().iter().enumerate() {
            if let Some(&first) = seen.get(&sub.id()) {
                self.emit(
                    report,
                    LintCode::DuplicateSubdivisionId,
                    self.t4_span(i),
                    format!(
                        "subdivision number {} is already used by Type-4 card {}",
                        sub.id(),
                        first + 1
                    ),
                    Some(Fix::advice("give every Type-4 card a distinct subdivision number")),
                );
            } else {
                seen.insert(sub.id(), i);
            }
        }
    }

    /// D001: the same grid-point triangle generated twice means the
    /// subdivisions overlap — the exact criterion the idealizer rejects
    /// with `OverlappingSubdivisions` after doing all the mesh work.
    fn check_overlap(&self, report: &mut LintReport) {
        let mut owner: BTreeMap<[GridPoint; 3], usize> = BTreeMap::new();
        let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (i, sub) in self.spec.subdivisions().iter().enumerate() {
            for tri in sub.grid_elements() {
                let mut key = tri;
                key.sort_unstable();
                match owner.get(&key) {
                    Some(&j) if j != i => {
                        if reported.insert((j, i)) {
                            let other = self.spec.subdivisions()[j].id();
                            self.emit(
                                report,
                                LintCode::OverlappingSubdivisions,
                                self.t4_span(i),
                                format!(
                                    "subdivision {} occupies grid cells already covered by \
                                     subdivision {other}",
                                    sub.id()
                                ),
                                Some(Fix::advice(
                                    "shift the subdivision so it abuts its neighbor instead of \
                                     covering it",
                                    )),
                            );
                        }
                    }
                    Some(_) => {}
                    None => {
                        owner.insert(key, i);
                    }
                }
            }
        }
    }

    /// D002: every subdivision must share at least one grid point with
    /// the rest of the assemblage, or the stiffness matrix decouples.
    fn check_connectivity(&self, report: &mut LintReport) {
        let subs = self.spec.subdivisions();
        if subs.len() < 2 {
            return;
        }
        // Union-find over subdivisions, joined through shared grid points.
        let mut parent: Vec<usize> = (0..subs.len()).collect();
        fn root(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut first_owner: BTreeMap<GridPoint, usize> = BTreeMap::new();
        for (i, sub) in subs.iter().enumerate() {
            for p in sub.grid_points() {
                match first_owner.get(&p) {
                    Some(&j) => {
                        let (a, b) = (root(&mut parent, i), root(&mut parent, j));
                        parent[a] = b;
                    }
                    None => {
                        first_owner.insert(p, i);
                    }
                }
            }
        }
        let base = root(&mut parent, 0);
        let mut flagged: BTreeSet<usize> = BTreeSet::new();
        for (i, sub) in subs.iter().enumerate().skip(1) {
            let r = root(&mut parent, i);
            if r != base && flagged.insert(r) {
                self.emit(
                    report,
                    LintCode::DisconnectedAssemblage,
                    self.t4_span(i),
                    format!(
                        "subdivision {} shares no grid points with the rest of the assemblage",
                        sub.id()
                    ),
                    Some(Fix::advice(
                        "connect it to a neighbor through a shared side (same integer \
                         coordinates on both Type-4 cards)",
                        )),
                );
            }
        }
    }

    /// D004: warn at 90 % of any *active* capacity limit — the deck
    /// still runs today, but the next refinement pass will not.
    ///
    /// The limits come from the spec, not hard-coded Table-2 constants:
    /// the pipeline installs the session capability's limits on every
    /// spec before linting, so a `LargeMesh` session (unbounded limits)
    /// never emits false proximity warnings while the historical default
    /// keeps warning against Table 2.
    fn check_limit_proximity(&self, report: &mut LintReport) {
        let limits = self.spec.limits();
        // `near` is false for effectively-unbounded limits (usize::MAX /
        // i32::MAX): no deck reaches 90 % of them.
        let near = |n: u128, max: u128| 10 * n > 9 * max && max > 0;
        for (i, sub) in self.spec.subdivisions().iter().enumerate() {
            let (k2, l2) = sub.upper_right();
            if k2 > 0 && near(k2 as u128, limits.max_grid_x as u128) {
                self.emit(
                    report,
                    LintCode::GridLimitProximity,
                    self.t4_span(i),
                    format!(
                        "horizontal grid coordinate {k2} uses more than 90% of the limit {}",
                        limits.max_grid_x
                    ),
                    Some(Fix::advice("coarsen the grid or raise the limits")),
                );
            }
            if l2 > 0 && near(l2 as u128, limits.max_grid_y as u128) {
                self.emit(
                    report,
                    LintCode::GridLimitProximity,
                    self.t4_span(i),
                    format!(
                        "vertical grid coordinate {l2} uses more than 90% of the limit {}",
                        limits.max_grid_y
                    ),
                    Some(Fix::advice("coarsen the grid or raise the limits")),
                );
            }
        }
        let (nodes, elements) = self.projected_counts();
        if near(nodes as u128, limits.max_nodes as u128) {
            self.emit(
                report,
                LintCode::GridLimitProximity,
                self.options_span(Some(4)),
                format!(
                    "the deck will generate {nodes} nodes, more than 90% of the limit {}",
                    limits.max_nodes
                ),
                Some(Fix::advice("coarsen the grid or raise the limits")),
            );
        }
        if near(elements as u128, limits.max_elements as u128) {
            self.emit(
                report,
                LintCode::GridLimitProximity,
                self.options_span(Some(4)),
                format!(
                    "the deck will generate {elements} elements, more than 90% of the limit {}",
                    limits.max_elements
                ),
                Some(Fix::advice("coarsen the grid or raise the limits")),
            );
        }
    }

    /// Node/element totals the idealizer will produce: distinct grid
    /// points (shared side nodes merge) and summed element counts.
    fn projected_counts(&self) -> (usize, usize) {
        let mut points: BTreeSet<GridPoint> = BTreeSet::new();
        let mut elements = 0usize;
        for sub in self.spec.subdivisions() {
            points.extend(sub.grid_points());
            elements += sub.element_count();
        }
        (points.len(), elements)
    }

    /// S001/S002/S003/S004: the shape-line lints.
    fn check_shape_lines(&self, report: &mut LintReport) {
        // S004 first, from the Type-5 groups when a layout is available
        // (a header with zero lines leaves no trace in the spec).
        let known: BTreeSet<usize> = self.spec.subdivisions().iter().map(|s| s.id()).collect();
        if let Some(layout) = self.layout {
            for group in &layout.shape_groups {
                if !known.contains(&group.subdivision) {
                    self.emit(
                        report,
                        LintCode::ShapeLineUnknownSubdivision,
                        SourceSpan::card_field(group.header_card, 1),
                        format!(
                            "shape-line group names subdivision {}, but no Type-4 card \
                             defines it",
                            group.subdivision
                        ),
                        Some(Fix::advice("match the Type-5 card's subdivision number to a Type-4 card")),
                    );
                }
            }
        } else {
            for &sub_id in self.spec.shape_lines().keys() {
                if !known.contains(&sub_id) {
                    self.emit(
                        report,
                        LintCode::ShapeLineUnknownSubdivision,
                        SourceSpan::none(),
                        format!(
                            "shape lines reference subdivision {sub_id}, but no subdivision \
                             has that number"
                        ),
                        Some(Fix::advice("match the shape-line group to a defined subdivision")),
                    );
                }
            }
        }

        for (sub_id, lines) in self.spec.shape_lines() {
            let Some(sub) = self
                .spec
                .subdivisions()
                .iter()
                .find(|s| s.id() == *sub_id)
            else {
                continue; // S004 already fired.
            };
            let runs: Vec<Option<Vec<GridPoint>>> = lines
                .iter()
                .map(|line| side_run(sub, line.from, line.to))
                .collect();
            for (ordinal, (line, run)) in lines.iter().zip(&runs).enumerate() {
                match run {
                    None => self.emit(
                        report,
                        LintCode::ShapeSegmentSpanMismatch,
                        self.line_span(*sub_id, ordinal, Some(1)),
                        format!(
                            "end points {:?} and {:?} do not lie on a common side of \
                             subdivision {sub_id}",
                            line.from, line.to
                        ),
                        Some(Fix::advice(
                            "run each shape line along exactly one side; split runs that \
                             turn a corner into one line per side",
                            )),
                    ),
                    Some(run) if run.len() > 1 => {
                        self.check_arc(report, *sub_id, ordinal, line);
                    }
                    Some(_) => {}
                }
            }
            // S003: a line is dead when every node it locates is
            // relocated by a later line of the same subdivision.
            for i in 0..lines.len() {
                let Some(run_i) = &runs[i] else { continue };
                let mut shadow: BTreeSet<GridPoint> = BTreeSet::new();
                for run_j in runs.iter().skip(i + 1).flatten() {
                    shadow.extend(run_j.iter().copied());
                }
                if !run_i.is_empty() && run_i.iter().all(|p| shadow.contains(p)) {
                    let fix = self.dead_line_fix(*sub_id, i).unwrap_or_else(|| {
                        Fix::advice("remove the line, or reorder it after the lines that shadow it")
                    });
                    self.emit(
                        report,
                        LintCode::DeadShapeLine,
                        self.line_span(*sub_id, i, None),
                        format!(
                            "every node this line locates is overwritten by a later shape \
                             line of subdivision {sub_id}"
                        ),
                        Some(fix),
                    );
                }
            }
        }
    }

    /// S002: static replication of the geometric arc checks — a chord
    /// longer than the diameter is impossible, and a chord longer than
    /// r·√2 means the sweep exceeds the program's 90-degree restriction.
    fn check_arc(&self, report: &mut LintReport, sub_id: usize, ordinal: usize, line: &ShapeLine) {
        if !line.is_arc() {
            return;
        }
        let span = self.line_span(sub_id, ordinal, Some(9));
        let r = line.radius;
        let finite =
            r.is_finite() && line.start.x.is_finite() && line.start.y.is_finite()
                && line.end.x.is_finite() && line.end.y.is_finite();
        if !finite {
            self.emit(
                report,
                LintCode::ArcSweepExceeds90,
                span,
                "arc geometry is not finite".into(),
                Some(Fix::advice("replace the NaN/infinite field with a real coordinate or radius")),
            );
            return;
        }
        if r < 0.0 {
            let fix = self.arc_flip_fix(sub_id, ordinal, line).unwrap_or_else(|| {
                Fix::advice("negate the radius and swap the end points to flip the arc")
            });
            self.emit(
                report,
                LintCode::ArcSweepExceeds90,
                span,
                format!("radius {r} is negative; arcs require a positive radius"),
                Some(fix),
            );
            return;
        }
        let chord = line.start.distance_to(line.end);
        if chord > 2.0 * r {
            self.emit(
                report,
                LintCode::ArcSweepExceeds90,
                span,
                format!(
                    "chord {chord:.4} exceeds the diameter {:.4}: no circle of radius \
                     {r:.4} connects the end points",
                    2.0 * r
                ),
                Some(Fix::advice(format!(
                    "use a radius of at least {:.4}",
                    chord / 2.0
                ))),
            );
        } else if chord > r * std::f64::consts::SQRT_2 * (1.0 + 1e-9) {
            let sweep = 2.0 * (chord / (2.0 * r)).min(1.0).asin().to_degrees();
            self.emit(
                report,
                LintCode::ArcSweepExceeds90,
                span,
                format!("arc subtends {sweep:.1} degrees, more than the 90 allowed"),
                Some(Fix::advice("split the arc into quarter-turn (or smaller) pieces")),
            );
        }
    }

    /// N001: with renumbering off, compare the natural row-major grid
    /// numbering against the transposed (column-major) one. A row-major
    /// bandwidth more than twice the column-major bandwidth means the
    /// deck is oriented against its own numbering.
    fn check_numbering(&self, report: &mut LintReport) {
        if self.spec.options().renumber {
            return;
        }
        let subs = self.spec.subdivisions();
        if subs.is_empty() {
            return;
        }
        let mut points: BTreeSet<GridPoint> = BTreeSet::new();
        for sub in subs {
            points.extend(sub.grid_points());
        }
        let bandwidth = |key: fn(&GridPoint) -> (i32, i32)| -> usize {
            let mut ordered: Vec<GridPoint> = points.iter().copied().collect();
            ordered.sort_by_key(key);
            let index: BTreeMap<GridPoint, usize> =
                ordered.into_iter().enumerate().map(|(i, p)| (p, i)).collect();
            let mut band = 0usize;
            for sub in subs {
                for tri in sub.grid_elements() {
                    for (a, b) in [(0, 1), (1, 2), (0, 2)] {
                        let d = index[&tri[a]].abs_diff(index[&tri[b]]);
                        band = band.max(d);
                    }
                }
            }
            band
        };
        let row_major = bandwidth(|&(k, l)| (l, k));
        let col_major = bandwidth(|&(k, l)| (k, l));
        if row_major > 2 * col_major && row_major > 8 {
            // Field 2 of the (4I5) options card occupies columns 6-10.
            let fix = match self.layout {
                Some(l) => Fix::edits(
                    "turn the renumber option back on (Type-3 card, field 2)",
                    vec![Edit::ReplaceColumns {
                        card: l.options_card,
                        columns: (6, 10),
                        text: "1".into(),
                    }],
                ),
                None => Fix::advice(
                    "turn the renumber option back on (Type-3 card, field 2), or rotate \
                     the model so its long direction runs vertically",
                ),
            };
            self.emit(
                report,
                LintCode::BandwidthHostileNumbering,
                self.options_span(Some(2)),
                format!(
                    "renumbering is off and the natural numbering has bandwidth \
                     {row_major}, though the transposed ordering achieves {col_major}"
                ),
                Some(fix),
            );
        }
    }

    /// F001/F002: punch the deck on paper before punching it on cards —
    /// compare the Type-7 field widths against the coordinate magnitudes
    /// and node/element counts the deck implies.
    fn check_formats(&self, report: &mut LintReport) {
        let (nodes, elements) = self.projected_counts();
        let nodal_span = |field: Option<usize>| match self.layout {
            Some(l) => SourceSpan {
                card: Some(l.nodal_format_card),
                field,
                columns: None,
            },
            None => SourceSpan::none(),
        };
        let element_span = |field: Option<usize>| match self.layout {
            Some(l) => SourceSpan {
                card: Some(l.element_format_card),
                field,
                columns: None,
            },
            None => SourceSpan::none(),
        };

        if let Ok(format) = self.spec.nodal_format().parse::<Format>() {
            let data: Vec<EditDescriptor> = format
                .expanded()
                .into_iter()
                .filter(EditDescriptor::is_data)
                .collect();
            // Appendix-B nodal cards punch [x, y, boundary flag, node
            // number]: the first two data fields carry coordinates.
            let nodal_card = self.layout.map(|l| l.nodal_format_card);
            let (xs, ys) = self.coordinate_extremes();
            for (ordinal, extremes) in [(1usize, xs), (2, ys)] {
                let Some(EditDescriptor::Fixed { width, decimals }) = data.get(ordinal - 1) else {
                    continue;
                };
                let worst = extremes
                    .iter()
                    .map(|&v| (fixed_width_required(v, *decimals), v))
                    .max_by_key(|&(required, _)| required);
                if let Some((required, value)) = worst {
                    if required > *width {
                        let axis = if ordinal == 1 { "x" } else { "y" };
                        let fix = self.widen_format_fix(
                            nodal_card,
                            &format,
                            ordinal,
                            required,
                            format!("widen the field to F{required}.{decimals}"),
                        );
                        self.emit(
                            report,
                            LintCode::FormatFieldTooNarrowForCoordinateRange,
                            nodal_span(Some(ordinal)),
                            format!(
                                "{axis} coordinates reach {value}: F{width}.{decimals} \
                                 overflows (needs at least {required} columns)"
                            ),
                            Some(fix),
                        );
                    }
                }
            }
            // The last data field is the one-based node number.
            if let Some(EditDescriptor::Int { width }) = data.last() {
                let digits = decimal_digits(nodes);
                if digits > *width && nodes > 0 {
                    let fix = self.widen_format_fix(
                        nodal_card,
                        &format,
                        data.len(),
                        digits,
                        format!("widen the node-number field to I{digits}"),
                    );
                    self.emit(
                        report,
                        LintCode::FormatFieldTooNarrowForCount,
                        nodal_span(Some(data.len())),
                        format!(
                            "the deck will number {nodes} nodes but the node-number field \
                             I{width} holds at most {} ",
                            max_for_digits(*width)
                        ),
                        Some(fix),
                    );
                }
            }
        }

        if let Ok(format) = self.spec.element_format().parse::<Format>() {
            let data: Vec<EditDescriptor> = format
                .expanded()
                .into_iter()
                .filter(EditDescriptor::is_data)
                .collect();
            // Element cards punch [n1, n2, n3, element number].
            let element_card = self.layout.map(|l| l.element_format_card);
            let node_digits = decimal_digits(nodes);
            for (ordinal, descriptor) in data.iter().enumerate().take(3) {
                if let EditDescriptor::Int { width } = descriptor {
                    if node_digits > *width && nodes > 0 {
                        let fix = self.widen_format_fix(
                            element_card,
                            &format,
                            ordinal + 1,
                            node_digits,
                            format!("widen the field to I{node_digits}"),
                        );
                        self.emit(
                            report,
                            LintCode::FormatFieldTooNarrowForCount,
                            element_span(Some(ordinal + 1)),
                            format!(
                                "element cards reference up to node {nodes} but field \
                                 {} is I{width}",
                                ordinal + 1
                            ),
                            Some(fix),
                        );
                        break;
                    }
                }
            }
            if data.len() >= 4 {
                if let Some(EditDescriptor::Int { width }) = data.last() {
                    let digits = decimal_digits(elements);
                    if digits > *width && elements > 0 {
                        let fix = self.widen_format_fix(
                            element_card,
                            &format,
                            data.len(),
                            digits,
                            format!("widen the element-number field to I{digits}"),
                        );
                        self.emit(
                            report,
                            LintCode::FormatFieldTooNarrowForCount,
                            element_span(Some(data.len())),
                            format!(
                                "the deck will number {elements} elements but the \
                                 element-number field is I{width}"
                            ),
                            Some(fix),
                        );
                    }
                }
            }
        }
    }

    /// The most demanding finite x and y values the shape lines pin down
    /// (arc bulges are ignored: this under-approximates, so a firing
    /// F001 is always a real overflow).
    fn coordinate_extremes(&self) -> (Vec<f64>, Vec<f64>) {
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for lines in self.spec.shape_lines().values() {
            for line in lines {
                for p in [line.start, line.end] {
                    if p.x.is_finite() {
                        xs.push(p.x);
                    }
                    if p.y.is_finite() {
                        ys.push(p.y);
                    }
                }
            }
        }
        let extremes = |v: &[f64]| -> Vec<f64> {
            let mut out = Vec::new();
            if let Some(&min) = v.iter().min_by(|a, b| a.total_cmp(b)) {
                out.push(min);
            }
            if let Some(&max) = v.iter().max_by(|a, b| a.total_cmp(b)) {
                out.push(max);
            }
            out.dedup();
            out
        };
        (extremes(&xs), extremes(&ys))
    }

    /// D005/S006: dataflow over the Type-4 ↔ Type-5 reference graph —
    /// a subdivision defined but never shaped by any group, and a
    /// subdivision named by two groups. Both need card provenance (a
    /// programmatic spec carries no Type-5 structure), so they are
    /// layout-gated.
    fn check_dataflow(&self, report: &mut LintReport) {
        if self.layout.is_none() {
            return;
        }
        let graph = DeckGraph::from_idlz_set(self.spec, self.layout);
        for dead in graph.unreferenced(EntityKind::Subdivision) {
            self.emit(
                report,
                LintCode::UnshapedSubdivision,
                dead.card.map(SourceSpan::card).unwrap_or_default(),
                format!(
                    "subdivision {} is defined but no Type-5 group references it, so its \
                     boundary keeps the straight grid shape",
                    dead.id
                ),
                Some(Fix::advice(
                    "add a Type-5 header for it (NLINES may be zero), or re-point the \
                     group that should have named it",
                )),
            );
        }
        for twins in graph.duplicate_definitions(EntityKind::ShapeGroup) {
            // invariant: duplicate_definitions only yields groups of >= 2.
            let first = twins[0];
            for later in &twins[1..] {
                let span = later
                    .card
                    .map(|c| SourceSpan::card_field(c, 1))
                    .unwrap_or_default();
                self.emit(
                    report,
                    LintCode::DuplicateShapeGroup,
                    span,
                    format!(
                        "a second Type-5 group names subdivision {}; its lines silently \
                         append after the group at card {} — whether a node keeps its \
                         position now depends on group order",
                        later.id,
                        first.card.map(|c| c + 1).unwrap_or(0),
                    ),
                    Some(Fix::advice(
                        "merge the two groups into one, or re-point one of them at the \
                         subdivision it was meant for",
                    )),
                );
            }
        }
    }

    /// S005: two shape-line end points pin the same grid point to
    /// different physical positions. The shaping pass applies lines in
    /// deck order, so the later card silently wins — a conflicting
    /// redefinition the analyst almost never intended.
    fn check_point_conflicts(&self, report: &mut LintReport) {
        // First pin wins the map; scale tracks coordinate magnitude so
        // the tolerance is relative for large models, absolute near zero.
        let mut pins: BTreeMap<GridPoint, (f64, f64, usize, usize)> = BTreeMap::new();
        let mut reported: BTreeSet<GridPoint> = BTreeSet::new();
        let mut scale = 1.0f64;
        for lines in self.spec.shape_lines().values() {
            for line in lines {
                for p in [line.start, line.end] {
                    if p.x.is_finite() && p.y.is_finite() {
                        scale = scale.max(p.x.abs()).max(p.y.abs());
                    }
                }
            }
        }
        let tolerance = 1e-9 * scale;
        for (sub_id, lines) in self.spec.shape_lines() {
            for (ordinal, line) in lines.iter().enumerate() {
                for (grid, pos) in [(line.from, line.start), (line.to, line.end)] {
                    if !pos.x.is_finite() || !pos.y.is_finite() {
                        continue;
                    }
                    match pins.get(&grid) {
                        Some(&(x, y, first_sub, first_ord)) => {
                            let conflict = (pos.x - x).abs() > tolerance
                                || (pos.y - y).abs() > tolerance;
                            if conflict && reported.insert(grid) {
                                let first_card = self
                                    .line_cards(first_sub)
                                    .get(first_ord)
                                    .map(|&c| format!("card {}", c + 1))
                                    .unwrap_or_else(|| "an earlier line".to_owned());
                                self.emit(
                                    report,
                                    LintCode::ConflictingPointPosition,
                                    self.line_span(*sub_id, ordinal, None),
                                    format!(
                                        "grid point {grid:?} is pinned to ({pos_x}, {pos_y}) \
                                         here but to ({x}, {y}) by {first_card}; the shaping \
                                         pass lets the later card win",
                                        pos_x = pos.x,
                                        pos_y = pos.y,
                                    ),
                                    Some(Fix::advice(
                                        "make every line that touches a grid point agree on \
                                         its physical position",
                                    )),
                                );
                            }
                        }
                        None => {
                            pins.insert(grid, (pos.x, pos.y, *sub_id, ordinal));
                        }
                    }
                }
            }
        }
    }

    /// The machine repair for a negative-radius arc: negate the radius
    /// and swap the end points (grid and physical), which flips the arc
    /// to the geometry the analyst described. `None` when a value will
    /// not re-punch into its Type-6 field.
    fn arc_flip_fix(&self, sub_id: usize, ordinal: usize, line: &ShapeLine) -> Option<Fix> {
        let card = *self.line_cards(sub_id).get(ordinal)?;
        let format: Format = "(4I5, 5F8.4)".parse().ok()?;
        let swapped: [String; 9] = [
            punch_int(i64::from(line.to.0), 5)?,
            punch_int(i64::from(line.to.1), 5)?,
            punch_int(i64::from(line.from.0), 5)?,
            punch_int(i64::from(line.from.1), 5)?,
            punch_fixed(line.end.x, 8, 4)?,
            punch_fixed(line.end.y, 8, 4)?,
            punch_fixed(line.start.x, 8, 4)?,
            punch_fixed(line.start.y, 8, 4)?,
            punch_fixed(-line.radius, 8, 4)?,
        ];
        let mut edits = Vec::new();
        for (i, text) in swapped.into_iter().enumerate() {
            let columns = format.data_field_columns(i + 1)?;
            edits.push(Edit::ReplaceColumns {
                card,
                columns,
                text,
            });
        }
        Some(Fix::edits(
            "negate the radius and swap the end points to flip the arc",
            edits,
        ))
    }

    /// The machine repair for a dead shape line: delete its card and
    /// decrement NLINES on the owning Type-5 header. Safe because every
    /// node the line locates is re-located by a later line.
    fn dead_line_fix(&self, sub_id: usize, ordinal: usize) -> Option<Fix> {
        let card = *self.line_cards(sub_id).get(ordinal)?;
        let layout = self.layout?;
        let group = layout
            .shape_groups
            .iter()
            .find(|g| g.line_cards.contains(&card))?;
        let columns = "(2I5)".parse::<Format>().ok()?.data_field_columns(2)?;
        Some(Fix::edits(
            "delete the dead line and decrement NLINES on its Type-5 header",
            vec![
                Edit::ReplaceColumns {
                    card: group.header_card,
                    columns,
                    text: (group.line_cards.len() - 1).to_string(),
                },
                Edit::DeleteCard { card },
            ],
        ))
    }

    /// A machine repair that re-punches a Type-7 format card with one
    /// data field widened; degrades to advice when provenance is missing
    /// or the widened spec would not fit a card.
    fn widen_format_fix(
        &self,
        card: Option<usize>,
        format: &Format,
        ordinal: usize,
        width: usize,
        label: String,
    ) -> Fix {
        match card.zip(format.with_data_field_width(ordinal, width)) {
            Some((card, widened)) if widened.spec().len() <= 80 => Fix::edits(
                label,
                vec![Edit::ReplaceCard {
                    card,
                    text: widened.spec().to_owned(),
                }],
            ),
            _ => Fix::advice(label),
        }
    }
}

/// Right-justifiable integer text for an `Iw` field, or `None` on
/// overflow.
fn punch_int(value: i64, width: usize) -> Option<String> {
    let text = value.to_string();
    (text.len() <= width).then_some(text)
}

/// Fixed-point text for an `Fw.d` field, dropping the leading zero of
/// `0.x` when that is what makes it fit (the deck writer's own
/// fallback); `None` on overflow.
fn punch_fixed(value: f64, width: usize, decimals: usize) -> Option<String> {
    let mut text = format!("{value:.decimals$}");
    if text.len() > width {
        if let Some(rest) = text.strip_prefix("0.") {
            text = format!(".{rest}");
        } else if let Some(rest) = text.strip_prefix("-0.") {
            text = format!("-.{rest}");
        }
    }
    (text.len() <= width).then_some(text)
}

/// The consecutive side nodes a shape line covers, or `None` when its end
/// points share no side — the static version of the shaping pass's own
/// run search (reversed runs are fine; direction does not matter here).
fn side_run(sub: &Subdivision, from: GridPoint, to: GridPoint) -> Option<Vec<GridPoint>> {
    for side in Side::ALL {
        let nodes = sub.side_nodes(side);
        let i = nodes.iter().position(|&p| p == from);
        let j = nodes.iter().position(|&p| p == to);
        if let (Some(i), Some(j)) = (i, j) {
            let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
            return Some(nodes[lo..=hi].to_vec());
        }
    }
    None
}

/// Minimum column width an `Fw.d` field needs for `value`: integer
/// digits + point + decimals + sign, with the leading zero of `0.x`
/// droppable (the writer's own fallback).
fn fixed_width_required(value: f64, decimals: usize) -> usize {
    let magnitude = value.abs();
    let int_digits = if magnitude < 1.0 {
        0
    } else {
        decimal_digits(magnitude.trunc() as usize)
    };
    int_digits + 1 + decimals + usize::from(value < 0.0)
}

/// Number of decimal digits of `n` (`0` needs one digit).
fn decimal_digits(n: usize) -> usize {
    let mut digits = 1;
    let mut rest = n / 10;
    while rest > 0 {
        digits += 1;
        rest /= 10;
    }
    digits
}

/// Largest value an `Iw` field can hold.
fn max_for_digits(width: usize) -> u64 {
    10u64.saturating_pow(width.min(19) as u32).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafemio_geom::Point;

    #[test]
    fn digits_and_widths() {
        assert_eq!(decimal_digits(0), 1);
        assert_eq!(decimal_digits(9), 1);
        assert_eq!(decimal_digits(10), 2);
        assert_eq!(decimal_digits(850), 3);
        assert_eq!(fixed_width_required(0.5, 4), 5); // ".5000"
        assert_eq!(fixed_width_required(-0.5, 4), 6);
        assert_eq!(fixed_width_required(1234.5, 3), 8); // "1234.500"
        assert_eq!(fixed_width_required(-99.0, 5), 9);
    }

    #[test]
    fn side_run_matches_shaping_semantics() {
        let sub = Subdivision::rectangular(1, (0, 0), (4, 2)).unwrap();
        assert_eq!(side_run(&sub, (0, 0), (4, 0)).unwrap().len(), 5);
        assert_eq!(side_run(&sub, (4, 0), (0, 0)).unwrap().len(), 5);
        assert!(side_run(&sub, (0, 0), (4, 2)).is_none());
        // A single shared end point is a valid one-node run.
        assert_eq!(side_run(&sub, (4, 0), (4, 0)).unwrap().len(), 1);
    }

    #[test]
    fn spec_level_lint_flags_overlap_without_layout() {
        let mut spec = IdealizationSpec::new("OVERLAP");
        spec.add_subdivision(Subdivision::rectangular(1, (0, 0), (2, 2)).unwrap());
        spec.add_subdivision(Subdivision::rectangular(2, (0, 0), (2, 2)).unwrap());
        let report = lint_specs(std::slice::from_ref(&spec), &LintConfig::new());
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::OverlappingSubdivisions));
    }

    #[test]
    fn clean_spec_is_clean() {
        let mut spec = IdealizationSpec::new("CLEAN");
        spec.add_subdivision(Subdivision::rectangular(1, (0, 0), (4, 2)).unwrap());
        spec.add_shape_line(
            1,
            ShapeLine::straight((0, 0), (4, 0), Point::new(0.0, 0.0), Point::new(2.0, 0.0)),
        );
        spec.add_shape_line(
            1,
            ShapeLine::straight((0, 2), (4, 2), Point::new(0.0, 0.5), Point::new(2.0, 0.5)),
        );
        let report = lint_specs(std::slice::from_ref(&spec), &LintConfig::new());
        assert!(report.is_clean(), "{:?}", report.diagnostics());
    }
}

//! Static analysis of IDLZ data sets: deck-structure (`Dxxx`), shaping
//! (`Sxxx`), numbering (`Nxxx`), and punch-format (`Fxxx`) lints.
//!
//! Everything here re-derives its verdicts from the parsed spec alone —
//! no mesh is generated and no matrix assembled. Where a check mirrors a
//! runtime rejection (`IdlzError::OverlappingSubdivisions`, `BadShapeLine`,
//! `ArcError::ExceedsQuarterTurn`, `CardError::FieldOverflow`) it
//! replicates the runtime's exact criterion so a deck that lints clean at
//! default severity cannot hit that rejection later.

use std::collections::{BTreeMap, BTreeSet};

use cafemio_cards::{Deck, EditDescriptor, Format};
use cafemio_idlz::deck::{parse_deck_with_layout, DataSetLayout};
use cafemio_idlz::{GridPoint, IdealizationSpec, IdlzError, ShapeLine, Side, Subdivision};

use crate::diagnostic::{Diagnostic, LintCode, LintConfig, LintReport, SourceSpan};

/// Lints IDLZ deck text: parses (with card provenance) and analyzes.
///
/// # Errors
///
/// [`IdlzError`] when the deck cannot even be parsed — lint needs the
/// structured spec; parse failures already carry card provenance.
pub fn lint_deck_text(text: &str, config: &LintConfig) -> Result<LintReport, IdlzError> {
    let deck = Deck::from_text(text).map_err(IdlzError::Card)?;
    lint_idlz_deck(&deck, config)
}

/// Lints a parsed card deck with full card provenance on every
/// diagnostic.
///
/// # Errors
///
/// [`IdlzError`] when parsing fails.
pub fn lint_idlz_deck(deck: &Deck, config: &LintConfig) -> Result<LintReport, IdlzError> {
    let (specs, layouts) = parse_deck_with_layout(deck)?;
    Ok(lint_idlz(&specs, &layouts, config))
}

/// Lints specs with their card layouts (parallel slices; a missing layout
/// degrades that set's spans to "no provenance").
pub fn lint_idlz(
    specs: &[IdealizationSpec],
    layouts: &[DataSetLayout],
    config: &LintConfig,
) -> LintReport {
    let mut report = LintReport::new();
    for (i, spec) in specs.iter().enumerate() {
        let set = SetContext {
            spec,
            layout: layouts.get(i),
            config,
        };
        set.lint_into(&mut report);
    }
    report
}

/// Lints bare specs (no deck, no card provenance) — the entry point for
/// programmatically built models.
pub fn lint_specs(specs: &[IdealizationSpec], config: &LintConfig) -> LintReport {
    lint_idlz(specs, &[], config)
}

/// One data set under analysis.
struct SetContext<'a> {
    spec: &'a IdealizationSpec,
    layout: Option<&'a DataSetLayout>,
    config: &'a LintConfig,
}

impl SetContext<'_> {
    fn lint_into(&self, report: &mut LintReport) {
        self.check_duplicate_ids(report);
        self.check_overlap(report);
        self.check_connectivity(report);
        self.check_limit_proximity(report);
        self.check_shape_lines(report);
        self.check_numbering(report);
        self.check_formats(report);
    }

    fn emit(
        &self,
        report: &mut LintReport,
        code: LintCode,
        span: SourceSpan,
        message: String,
        suggestion: Option<String>,
    ) {
        report.push(Diagnostic {
            code,
            severity: self.config.severity(code),
            span,
            message,
            suggestion,
        });
    }

    /// Span of the `i`-th Type-4 card.
    fn t4_span(&self, i: usize) -> SourceSpan {
        match self.layout.and_then(|l| l.subdivision_cards.get(i)) {
            Some(&card) => SourceSpan::card(card),
            None => SourceSpan::none(),
        }
    }

    /// Span of the Type-3 options card (optionally one of its fields).
    fn options_span(&self, field: Option<usize>) -> SourceSpan {
        match self.layout {
            Some(l) => SourceSpan {
                card: Some(l.options_card),
                field,
            },
            None => SourceSpan::none(),
        }
    }

    /// Card indices of subdivision `sub_id`'s shape lines, in the order
    /// [`IdealizationSpec::shape_lines`] lists them (groups concatenate).
    fn line_cards(&self, sub_id: usize) -> Vec<usize> {
        let Some(layout) = self.layout else {
            return Vec::new();
        };
        layout
            .shape_groups
            .iter()
            .filter(|g| g.subdivision == sub_id)
            .flat_map(|g| g.line_cards.iter().copied())
            .collect()
    }

    fn line_span(&self, sub_id: usize, ordinal: usize, field: Option<usize>) -> SourceSpan {
        match self.line_cards(sub_id).get(ordinal) {
            Some(&card) => SourceSpan { card: Some(card), field },
            None => SourceSpan::none(),
        }
    }

    /// D003: every subdivision number must be unique — the runtime
    /// silently merges the shape-line groups of twins, which is never
    /// what the analyst meant.
    fn check_duplicate_ids(&self, report: &mut LintReport) {
        let mut seen: BTreeMap<usize, usize> = BTreeMap::new();
        for (i, sub) in self.spec.subdivisions().iter().enumerate() {
            if let Some(&first) = seen.get(&sub.id()) {
                self.emit(
                    report,
                    LintCode::DuplicateSubdivisionId,
                    self.t4_span(i),
                    format!(
                        "subdivision number {} is already used by Type-4 card {}",
                        sub.id(),
                        first + 1
                    ),
                    Some("give every Type-4 card a distinct subdivision number".into()),
                );
            } else {
                seen.insert(sub.id(), i);
            }
        }
    }

    /// D001: the same grid-point triangle generated twice means the
    /// subdivisions overlap — the exact criterion the idealizer rejects
    /// with `OverlappingSubdivisions` after doing all the mesh work.
    fn check_overlap(&self, report: &mut LintReport) {
        let mut owner: BTreeMap<[GridPoint; 3], usize> = BTreeMap::new();
        let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (i, sub) in self.spec.subdivisions().iter().enumerate() {
            for tri in sub.grid_elements() {
                let mut key = tri;
                key.sort_unstable();
                match owner.get(&key) {
                    Some(&j) if j != i => {
                        if reported.insert((j, i)) {
                            let other = self.spec.subdivisions()[j].id();
                            self.emit(
                                report,
                                LintCode::OverlappingSubdivisions,
                                self.t4_span(i),
                                format!(
                                    "subdivision {} occupies grid cells already covered by \
                                     subdivision {other}",
                                    sub.id()
                                ),
                                Some(
                                    "shift the subdivision so it abuts its neighbor instead of \
                                     covering it"
                                        .into(),
                                ),
                            );
                        }
                    }
                    Some(_) => {}
                    None => {
                        owner.insert(key, i);
                    }
                }
            }
        }
    }

    /// D002: every subdivision must share at least one grid point with
    /// the rest of the assemblage, or the stiffness matrix decouples.
    fn check_connectivity(&self, report: &mut LintReport) {
        let subs = self.spec.subdivisions();
        if subs.len() < 2 {
            return;
        }
        // Union-find over subdivisions, joined through shared grid points.
        let mut parent: Vec<usize> = (0..subs.len()).collect();
        fn root(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut first_owner: BTreeMap<GridPoint, usize> = BTreeMap::new();
        for (i, sub) in subs.iter().enumerate() {
            for p in sub.grid_points() {
                match first_owner.get(&p) {
                    Some(&j) => {
                        let (a, b) = (root(&mut parent, i), root(&mut parent, j));
                        parent[a] = b;
                    }
                    None => {
                        first_owner.insert(p, i);
                    }
                }
            }
        }
        let base = root(&mut parent, 0);
        let mut flagged: BTreeSet<usize> = BTreeSet::new();
        for (i, sub) in subs.iter().enumerate().skip(1) {
            let r = root(&mut parent, i);
            if r != base && flagged.insert(r) {
                self.emit(
                    report,
                    LintCode::DisconnectedAssemblage,
                    self.t4_span(i),
                    format!(
                        "subdivision {} shares no grid points with the rest of the assemblage",
                        sub.id()
                    ),
                    Some(
                        "connect it to a neighbor through a shared side (same integer \
                         coordinates on both Type-4 cards)"
                            .into(),
                    ),
                );
            }
        }
    }

    /// D004: warn at 90 % of any *active* capacity limit — the deck
    /// still runs today, but the next refinement pass will not.
    ///
    /// The limits come from the spec, not hard-coded Table-2 constants:
    /// the pipeline installs the session capability's limits on every
    /// spec before linting, so a `LargeMesh` session (unbounded limits)
    /// never emits false proximity warnings while the historical default
    /// keeps warning against Table 2.
    fn check_limit_proximity(&self, report: &mut LintReport) {
        let limits = self.spec.limits();
        // `near` is false for effectively-unbounded limits (usize::MAX /
        // i32::MAX): no deck reaches 90 % of them.
        let near = |n: u128, max: u128| 10 * n > 9 * max && max > 0;
        for (i, sub) in self.spec.subdivisions().iter().enumerate() {
            let (k2, l2) = sub.upper_right();
            if k2 > 0 && near(k2 as u128, limits.max_grid_x as u128) {
                self.emit(
                    report,
                    LintCode::GridLimitProximity,
                    self.t4_span(i),
                    format!(
                        "horizontal grid coordinate {k2} uses more than 90% of the limit {}",
                        limits.max_grid_x
                    ),
                    Some("coarsen the grid or raise the limits".into()),
                );
            }
            if l2 > 0 && near(l2 as u128, limits.max_grid_y as u128) {
                self.emit(
                    report,
                    LintCode::GridLimitProximity,
                    self.t4_span(i),
                    format!(
                        "vertical grid coordinate {l2} uses more than 90% of the limit {}",
                        limits.max_grid_y
                    ),
                    Some("coarsen the grid or raise the limits".into()),
                );
            }
        }
        let (nodes, elements) = self.projected_counts();
        if near(nodes as u128, limits.max_nodes as u128) {
            self.emit(
                report,
                LintCode::GridLimitProximity,
                self.options_span(Some(4)),
                format!(
                    "the deck will generate {nodes} nodes, more than 90% of the limit {}",
                    limits.max_nodes
                ),
                Some("coarsen the grid or raise the limits".into()),
            );
        }
        if near(elements as u128, limits.max_elements as u128) {
            self.emit(
                report,
                LintCode::GridLimitProximity,
                self.options_span(Some(4)),
                format!(
                    "the deck will generate {elements} elements, more than 90% of the limit {}",
                    limits.max_elements
                ),
                Some("coarsen the grid or raise the limits".into()),
            );
        }
    }

    /// Node/element totals the idealizer will produce: distinct grid
    /// points (shared side nodes merge) and summed element counts.
    fn projected_counts(&self) -> (usize, usize) {
        let mut points: BTreeSet<GridPoint> = BTreeSet::new();
        let mut elements = 0usize;
        for sub in self.spec.subdivisions() {
            points.extend(sub.grid_points());
            elements += sub.element_count();
        }
        (points.len(), elements)
    }

    /// S001/S002/S003/S004: the shape-line lints.
    fn check_shape_lines(&self, report: &mut LintReport) {
        // S004 first, from the Type-5 groups when a layout is available
        // (a header with zero lines leaves no trace in the spec).
        let known: BTreeSet<usize> = self.spec.subdivisions().iter().map(|s| s.id()).collect();
        if let Some(layout) = self.layout {
            for group in &layout.shape_groups {
                if !known.contains(&group.subdivision) {
                    self.emit(
                        report,
                        LintCode::ShapeLineUnknownSubdivision,
                        SourceSpan::card_field(group.header_card, 1),
                        format!(
                            "shape-line group names subdivision {}, but no Type-4 card \
                             defines it",
                            group.subdivision
                        ),
                        Some("match the Type-5 card's subdivision number to a Type-4 card".into()),
                    );
                }
            }
        } else {
            for &sub_id in self.spec.shape_lines().keys() {
                if !known.contains(&sub_id) {
                    self.emit(
                        report,
                        LintCode::ShapeLineUnknownSubdivision,
                        SourceSpan::none(),
                        format!(
                            "shape lines reference subdivision {sub_id}, but no subdivision \
                             has that number"
                        ),
                        Some("match the shape-line group to a defined subdivision".into()),
                    );
                }
            }
        }

        for (sub_id, lines) in self.spec.shape_lines() {
            let Some(sub) = self
                .spec
                .subdivisions()
                .iter()
                .find(|s| s.id() == *sub_id)
            else {
                continue; // S004 already fired.
            };
            let runs: Vec<Option<Vec<GridPoint>>> = lines
                .iter()
                .map(|line| side_run(sub, line.from, line.to))
                .collect();
            for (ordinal, (line, run)) in lines.iter().zip(&runs).enumerate() {
                match run {
                    None => self.emit(
                        report,
                        LintCode::ShapeSegmentSpanMismatch,
                        self.line_span(*sub_id, ordinal, Some(1)),
                        format!(
                            "end points {:?} and {:?} do not lie on a common side of \
                             subdivision {sub_id}",
                            line.from, line.to
                        ),
                        Some(
                            "run each shape line along exactly one side; split runs that \
                             turn a corner into one line per side"
                                .into(),
                        ),
                    ),
                    Some(run) if run.len() > 1 => {
                        self.check_arc(report, *sub_id, ordinal, line);
                    }
                    Some(_) => {}
                }
            }
            // S003: a line is dead when every node it locates is
            // relocated by a later line of the same subdivision.
            for i in 0..lines.len() {
                let Some(run_i) = &runs[i] else { continue };
                let mut shadow: BTreeSet<GridPoint> = BTreeSet::new();
                for run_j in runs.iter().skip(i + 1).flatten() {
                    shadow.extend(run_j.iter().copied());
                }
                if !run_i.is_empty() && run_i.iter().all(|p| shadow.contains(p)) {
                    self.emit(
                        report,
                        LintCode::DeadShapeLine,
                        self.line_span(*sub_id, i, None),
                        format!(
                            "every node this line locates is overwritten by a later shape \
                             line of subdivision {sub_id}"
                        ),
                        Some("remove the line, or reorder it after the lines that shadow it".into()),
                    );
                }
            }
        }
    }

    /// S002: static replication of the geometric arc checks — a chord
    /// longer than the diameter is impossible, and a chord longer than
    /// r·√2 means the sweep exceeds the program's 90-degree restriction.
    fn check_arc(&self, report: &mut LintReport, sub_id: usize, ordinal: usize, line: &ShapeLine) {
        if !line.is_arc() {
            return;
        }
        let span = self.line_span(sub_id, ordinal, Some(9));
        let r = line.radius;
        let finite =
            r.is_finite() && line.start.x.is_finite() && line.start.y.is_finite()
                && line.end.x.is_finite() && line.end.y.is_finite();
        if !finite {
            self.emit(
                report,
                LintCode::ArcSweepExceeds90,
                span,
                "arc geometry is not finite".into(),
                Some("replace the NaN/infinite field with a real coordinate or radius".into()),
            );
            return;
        }
        if r < 0.0 {
            self.emit(
                report,
                LintCode::ArcSweepExceeds90,
                span,
                format!("radius {r} is negative; arcs require a positive radius"),
                Some("negate the radius and swap the end points to flip the arc".into()),
            );
            return;
        }
        let chord = line.start.distance_to(line.end);
        if chord > 2.0 * r {
            self.emit(
                report,
                LintCode::ArcSweepExceeds90,
                span,
                format!(
                    "chord {chord:.4} exceeds the diameter {:.4}: no circle of radius \
                     {r:.4} connects the end points",
                    2.0 * r
                ),
                Some(format!("use a radius of at least {:.4}", chord / 2.0)),
            );
        } else if chord > r * std::f64::consts::SQRT_2 * (1.0 + 1e-9) {
            let sweep = 2.0 * (chord / (2.0 * r)).min(1.0).asin().to_degrees();
            self.emit(
                report,
                LintCode::ArcSweepExceeds90,
                span,
                format!("arc subtends {sweep:.1} degrees, more than the 90 allowed"),
                Some("split the arc into quarter-turn (or smaller) pieces".into()),
            );
        }
    }

    /// N001: with renumbering off, compare the natural row-major grid
    /// numbering against the transposed (column-major) one. A row-major
    /// bandwidth more than twice the column-major bandwidth means the
    /// deck is oriented against its own numbering.
    fn check_numbering(&self, report: &mut LintReport) {
        if self.spec.options().renumber {
            return;
        }
        let subs = self.spec.subdivisions();
        if subs.is_empty() {
            return;
        }
        let mut points: BTreeSet<GridPoint> = BTreeSet::new();
        for sub in subs {
            points.extend(sub.grid_points());
        }
        let bandwidth = |key: fn(&GridPoint) -> (i32, i32)| -> usize {
            let mut ordered: Vec<GridPoint> = points.iter().copied().collect();
            ordered.sort_by_key(key);
            let index: BTreeMap<GridPoint, usize> =
                ordered.into_iter().enumerate().map(|(i, p)| (p, i)).collect();
            let mut band = 0usize;
            for sub in subs {
                for tri in sub.grid_elements() {
                    for (a, b) in [(0, 1), (1, 2), (0, 2)] {
                        let d = index[&tri[a]].abs_diff(index[&tri[b]]);
                        band = band.max(d);
                    }
                }
            }
            band
        };
        let row_major = bandwidth(|&(k, l)| (l, k));
        let col_major = bandwidth(|&(k, l)| (k, l));
        if row_major > 2 * col_major && row_major > 8 {
            self.emit(
                report,
                LintCode::BandwidthHostileNumbering,
                self.options_span(Some(2)),
                format!(
                    "renumbering is off and the natural numbering has bandwidth \
                     {row_major}, though the transposed ordering achieves {col_major}"
                ),
                Some(
                    "turn the renumber option back on (Type-3 card, field 2), or rotate \
                     the model so its long direction runs vertically"
                        .into(),
                ),
            );
        }
    }

    /// F001/F002: punch the deck on paper before punching it on cards —
    /// compare the Type-7 field widths against the coordinate magnitudes
    /// and node/element counts the deck implies.
    fn check_formats(&self, report: &mut LintReport) {
        let (nodes, elements) = self.projected_counts();
        let nodal_span = |field: Option<usize>| match self.layout {
            Some(l) => SourceSpan {
                card: Some(l.nodal_format_card),
                field,
            },
            None => SourceSpan::none(),
        };
        let element_span = |field: Option<usize>| match self.layout {
            Some(l) => SourceSpan {
                card: Some(l.element_format_card),
                field,
            },
            None => SourceSpan::none(),
        };

        if let Ok(format) = self.spec.nodal_format().parse::<Format>() {
            let data: Vec<EditDescriptor> = format
                .expanded()
                .into_iter()
                .filter(EditDescriptor::is_data)
                .collect();
            // Appendix-B nodal cards punch [x, y, boundary flag, node
            // number]: the first two data fields carry coordinates.
            let (xs, ys) = self.coordinate_extremes();
            for (ordinal, extremes) in [(1usize, xs), (2, ys)] {
                let Some(EditDescriptor::Fixed { width, decimals }) = data.get(ordinal - 1) else {
                    continue;
                };
                for value in extremes {
                    let required = fixed_width_required(value, *decimals);
                    if required > *width {
                        let axis = if ordinal == 1 { "x" } else { "y" };
                        self.emit(
                            report,
                            LintCode::FormatFieldTooNarrowForCoordinateRange,
                            nodal_span(Some(ordinal)),
                            format!(
                                "{axis} coordinates reach {value}: F{width}.{decimals} \
                                 overflows (needs at least {required} columns)"
                            ),
                            Some(format!("widen the field to F{required}.{decimals}")),
                        );
                        break;
                    }
                }
            }
            // The last data field is the one-based node number.
            if let Some(EditDescriptor::Int { width }) = data.last() {
                let digits = decimal_digits(nodes);
                if digits > *width && nodes > 0 {
                    self.emit(
                        report,
                        LintCode::FormatFieldTooNarrowForCount,
                        nodal_span(Some(data.len())),
                        format!(
                            "the deck will number {nodes} nodes but the node-number field \
                             I{width} holds at most {} ",
                            max_for_digits(*width)
                        ),
                        Some(format!("widen the node-number field to I{digits}")),
                    );
                }
            }
        }

        if let Ok(format) = self.spec.element_format().parse::<Format>() {
            let data: Vec<EditDescriptor> = format
                .expanded()
                .into_iter()
                .filter(EditDescriptor::is_data)
                .collect();
            // Element cards punch [n1, n2, n3, element number].
            let node_digits = decimal_digits(nodes);
            for (ordinal, descriptor) in data.iter().enumerate().take(3) {
                if let EditDescriptor::Int { width } = descriptor {
                    if node_digits > *width && nodes > 0 {
                        self.emit(
                            report,
                            LintCode::FormatFieldTooNarrowForCount,
                            element_span(Some(ordinal + 1)),
                            format!(
                                "element cards reference up to node {nodes} but field \
                                 {} is I{width}",
                                ordinal + 1
                            ),
                            Some(format!("widen the field to I{node_digits}")),
                        );
                        break;
                    }
                }
            }
            if data.len() >= 4 {
                if let Some(EditDescriptor::Int { width }) = data.last() {
                    let digits = decimal_digits(elements);
                    if digits > *width && elements > 0 {
                        self.emit(
                            report,
                            LintCode::FormatFieldTooNarrowForCount,
                            element_span(Some(data.len())),
                            format!(
                                "the deck will number {elements} elements but the \
                                 element-number field is I{width}"
                            ),
                            Some(format!("widen the element-number field to I{digits}")),
                        );
                    }
                }
            }
        }
    }

    /// The most demanding finite x and y values the shape lines pin down
    /// (arc bulges are ignored: this under-approximates, so a firing
    /// F001 is always a real overflow).
    fn coordinate_extremes(&self) -> (Vec<f64>, Vec<f64>) {
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for lines in self.spec.shape_lines().values() {
            for line in lines {
                for p in [line.start, line.end] {
                    if p.x.is_finite() {
                        xs.push(p.x);
                    }
                    if p.y.is_finite() {
                        ys.push(p.y);
                    }
                }
            }
        }
        let extremes = |v: &[f64]| -> Vec<f64> {
            let mut out = Vec::new();
            if let Some(&min) = v.iter().min_by(|a, b| a.total_cmp(b)) {
                out.push(min);
            }
            if let Some(&max) = v.iter().max_by(|a, b| a.total_cmp(b)) {
                out.push(max);
            }
            out.dedup();
            out
        };
        (extremes(&xs), extremes(&ys))
    }
}

/// The consecutive side nodes a shape line covers, or `None` when its end
/// points share no side — the static version of the shaping pass's own
/// run search (reversed runs are fine; direction does not matter here).
fn side_run(sub: &Subdivision, from: GridPoint, to: GridPoint) -> Option<Vec<GridPoint>> {
    for side in Side::ALL {
        let nodes = sub.side_nodes(side);
        let i = nodes.iter().position(|&p| p == from);
        let j = nodes.iter().position(|&p| p == to);
        if let (Some(i), Some(j)) = (i, j) {
            let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
            return Some(nodes[lo..=hi].to_vec());
        }
    }
    None
}

/// Minimum column width an `Fw.d` field needs for `value`: integer
/// digits + point + decimals + sign, with the leading zero of `0.x`
/// droppable (the writer's own fallback).
fn fixed_width_required(value: f64, decimals: usize) -> usize {
    let magnitude = value.abs();
    let int_digits = if magnitude < 1.0 {
        0
    } else {
        decimal_digits(magnitude.trunc() as usize)
    };
    int_digits + 1 + decimals + usize::from(value < 0.0)
}

/// Number of decimal digits of `n` (`0` needs one digit).
fn decimal_digits(n: usize) -> usize {
    let mut digits = 1;
    let mut rest = n / 10;
    while rest > 0 {
        digits += 1;
        rest /= 10;
    }
    digits
}

/// Largest value an `Iw` field can hold.
fn max_for_digits(width: usize) -> u64 {
    10u64.saturating_pow(width.min(19) as u32).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafemio_geom::Point;

    #[test]
    fn digits_and_widths() {
        assert_eq!(decimal_digits(0), 1);
        assert_eq!(decimal_digits(9), 1);
        assert_eq!(decimal_digits(10), 2);
        assert_eq!(decimal_digits(850), 3);
        assert_eq!(fixed_width_required(0.5, 4), 5); // ".5000"
        assert_eq!(fixed_width_required(-0.5, 4), 6);
        assert_eq!(fixed_width_required(1234.5, 3), 8); // "1234.500"
        assert_eq!(fixed_width_required(-99.0, 5), 9);
    }

    #[test]
    fn side_run_matches_shaping_semantics() {
        let sub = Subdivision::rectangular(1, (0, 0), (4, 2)).unwrap();
        assert_eq!(side_run(&sub, (0, 0), (4, 0)).unwrap().len(), 5);
        assert_eq!(side_run(&sub, (4, 0), (0, 0)).unwrap().len(), 5);
        assert!(side_run(&sub, (0, 0), (4, 2)).is_none());
        // A single shared end point is a valid one-node run.
        assert_eq!(side_run(&sub, (4, 0), (4, 0)).unwrap().len(), 1);
    }

    #[test]
    fn spec_level_lint_flags_overlap_without_layout() {
        let mut spec = IdealizationSpec::new("OVERLAP");
        spec.add_subdivision(Subdivision::rectangular(1, (0, 0), (2, 2)).unwrap());
        spec.add_subdivision(Subdivision::rectangular(2, (0, 0), (2, 2)).unwrap());
        let report = lint_specs(std::slice::from_ref(&spec), &LintConfig::new());
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::OverlappingSubdivisions));
    }

    #[test]
    fn clean_spec_is_clean() {
        let mut spec = IdealizationSpec::new("CLEAN");
        spec.add_subdivision(Subdivision::rectangular(1, (0, 0), (4, 2)).unwrap());
        spec.add_shape_line(
            1,
            ShapeLine::straight((0, 0), (4, 0), Point::new(0.0, 0.0), Point::new(2.0, 0.0)),
        );
        spec.add_shape_line(
            1,
            ShapeLine::straight((0, 2), (4, 2), Point::new(0.0, 0.5), Point::new(2.0, 0.5)),
        );
        let report = lint_specs(std::slice::from_ref(&spec), &LintConfig::new());
        assert!(report.is_clean(), "{:?}", report.diagnostics());
    }
}

//! Golden lint corpus: one minimal deck per lint code, each designed to
//! trigger exactly that diagnostic at a known card. The corpus is the
//! executable specification of the lint catalog — `decklint --golden`
//! and the integration tests both run [`verify_corpus`].

use crate::diagnostic::{LintCode, LintConfig, LintReport};
use crate::idlz_lints::lint_deck_text;
use crate::ospl_lints::lint_ospl_deck_text;

/// Which front end parses the golden deck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeckKind {
    /// Appendix-B idealization deck.
    Idlz,
    /// Appendix-C contour-plot deck.
    Ospl,
}

/// One golden deck and the single diagnostic it must produce.
#[derive(Debug, Clone, Copy)]
pub struct GoldenCase {
    /// The lint code the deck triggers.
    pub code: LintCode,
    /// The parser front end for the deck text.
    pub kind: DeckKind,
    /// The deck text.
    pub deck: &'static str,
    /// Zero-based index of the card the diagnostic must point at.
    pub card: usize,
}

/// The golden corpus, one case per lint code in catalog order.
pub fn golden_cases() -> Vec<GoldenCase> {
    vec![
        GoldenCase {
            code: LintCode::OverlappingSubdivisions,
            kind: DeckKind::Idlz,
            card: 4,
            deck: concat!(
                "    1\n",
                "OVERLAPPING BOXES\n",
                "    1    1    1    2\n",
                "    1    0    0    2    2         0    0\n",
                "    2    0    0    2    2         0    0\n",
                "    1    0\n",
                "    2    0\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::DisconnectedAssemblage,
            kind: DeckKind::Idlz,
            card: 4,
            deck: concat!(
                "    1\n",
                "ISLAND SUBDIVISION\n",
                "    1    1    1    2\n",
                "    1    0    0    2    2         0    0\n",
                "    2   10    0   12    2         0    0\n",
                "    1    0\n",
                "    2    0\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::DuplicateSubdivisionId,
            kind: DeckKind::Idlz,
            card: 4,
            deck: concat!(
                "    1\n",
                "TWIN NUMBERS\n",
                "    1    1    1    2\n",
                "    1    0    0    2    2         0    0\n",
                "    1    2    0    4    2         0    0\n",
                "    1    0\n",
                "    1    0\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::GridLimitProximity,
            kind: DeckKind::Idlz,
            card: 3,
            deck: concat!(
                "    1\n",
                "NEAR THE GRID LIMIT\n",
                "    1    1    1    1\n",
                "    1    0    0   38    2         0    0\n",
                "    1    0\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::ShapeSegmentSpanMismatch,
            kind: DeckKind::Idlz,
            card: 5,
            deck: concat!(
                "    1\n",
                "DIAGONAL SHAPE LINE\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    1    1\n",
                "    0    0    4    2  0.0000  0.0000  2.0000  1.0000  0.0000\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::ArcSweepExceeds90,
            kind: DeckKind::Idlz,
            card: 5,
            deck: concat!(
                "    1\n",
                "HALF TURN ARC\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    1    1\n",
                "    0    0    4    0  0.0000  0.0000  2.0000  0.0000  1.0000\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::DeadShapeLine,
            kind: DeckKind::Idlz,
            card: 5,
            deck: concat!(
                "    1\n",
                "DEAD SHAPE LINE\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    1    2\n",
                "    0    0    4    0  0.0000  0.0000  2.0000  0.0000  0.0000\n",
                "    0    0    4    0  0.0000  0.1000  2.0000  0.1000  0.0000\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::ShapeLineUnknownSubdivision,
            kind: DeckKind::Idlz,
            card: 4,
            deck: concat!(
                "    1\n",
                "PHANTOM SUBDIVISION\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    2    0\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::BandwidthHostileNumbering,
            kind: DeckKind::Idlz,
            card: 2,
            deck: concat!(
                "    1\n",
                "WIDE FLAT NO RENUMBER\n",
                "    1    0    1    1\n",
                "    1    0    0   30    1         0    0\n",
                "    1    0\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::FormatFieldTooNarrowForCoordinateRange,
            kind: DeckKind::Idlz,
            card: 6,
            deck: concat!(
                "    1\n",
                "COORDINATES OVERFLOW F6.3\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    1    1\n",
                "    0    0    4    0  0.0000  0.0000  1234.5  0.0000  0.0000\n",
                "(2F6.3, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::FormatFieldTooNarrowForCount,
            kind: DeckKind::Idlz,
            card: 5,
            deck: concat!(
                "    1\n",
                "NODE NUMBER OVERFLOWS I2\n",
                "    1    1    1    1\n",
                "    1    0    0    9    9         0    0\n",
                "    1    0\n",
                "(2F9.5, 52X, I3, 5X, I2)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::ContourWindowOutsideExtents,
            kind: DeckKind::Ospl,
            card: 0,
            deck: concat!(
                "    3    1     104.0     100.0     103.0     100.0       0.0\n",
                "WINDOW OFF THE MESH\n",
                "LINT CORPUS\n",
                "  0.00000  0.00000                           5.0002\n",
                "  4.00000  0.00000                          15.0002\n",
                "  2.00000  3.00000                          35.0002\n",
                "    1    2    3\n",
            ),
        },
        GoldenCase {
            code: LintCode::IntervalExceedsFieldRange,
            kind: DeckKind::Ospl,
            card: 0,
            deck: concat!(
                "    3    1       0.0       0.0       0.0       0.0    1000.0\n",
                "HUGE DELTA\n",
                "LINT CORPUS\n",
                "  0.00000  0.00000                           5.0002\n",
                "  4.00000  0.00000                          15.0002\n",
                "  2.00000  3.00000                          35.0002\n",
                "    1    2    3\n",
            ),
        },
    ]
}

/// Lints one golden deck at default severity.
///
/// # Errors
///
/// A human-readable message when the deck does not even parse.
pub fn run_case(case: &GoldenCase) -> Result<LintReport, String> {
    let config = LintConfig::new();
    match case.kind {
        DeckKind::Idlz => lint_deck_text(case.deck, &config)
            .map_err(|e| format!("{} corpus deck failed to parse: {e}", case.code.code())),
        DeckKind::Ospl => lint_ospl_deck_text(case.deck, &config)
            .map_err(|e| format!("{} corpus deck failed to parse: {e}", case.code.code())),
    }
}

/// Runs the whole corpus, checking that every case produces exactly its
/// expected diagnostic — right code, right default severity, right card.
///
/// # Errors
///
/// One message per failing case, all collected.
pub fn verify_corpus() -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    let cases = golden_cases();
    for missing in LintCode::ALL
        .iter()
        .filter(|code| !cases.iter().any(|c| c.code == **code))
    {
        problems.push(format!("no corpus deck covers {missing}"));
    }
    for case in &cases {
        let code = case.code.code();
        let report = match run_case(case) {
            Ok(report) => report,
            Err(e) => {
                problems.push(e);
                continue;
            }
        };
        let diagnostics = report.diagnostics();
        if diagnostics.len() != 1 {
            problems.push(format!(
                "{code}: expected exactly one diagnostic, got {}: {:?}",
                diagnostics.len(),
                diagnostics.iter().map(ToString::to_string).collect::<Vec<_>>(),
            ));
            continue;
        }
        let d = &diagnostics[0];
        if d.code != case.code {
            problems.push(format!("{code}: deck triggered {} instead", d.code));
        }
        if d.severity != case.code.default_severity() {
            problems.push(format!(
                "{code}: severity {} does not match the default {}",
                d.severity,
                case.code.default_severity()
            ));
        }
        if d.span.card != Some(case.card) {
            problems.push(format!(
                "{code}: diagnostic points at {:?}, expected card {}",
                d.span.card, case.card
            ));
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_code_has_a_golden_deck_that_triggers_it() {
        if let Err(problems) = verify_corpus() {
            panic!("corpus failures:\n{}", problems.join("\n"));
        }
    }
}

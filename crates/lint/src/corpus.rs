//! Golden lint corpus: one minimal deck per lint code, each designed to
//! trigger exactly that diagnostic at a known card, plus a before/after
//! *fix corpus* — one pair per machine-applicable code — that pins the
//! auto-fix engine's exact output. The corpus is the executable
//! specification of the lint catalog: `decklint --golden` and the
//! integration tests run [`verify_corpus`] and [`verify_fix_corpus`].

use crate::diagnostic::{Diagnostic, LintCode, LintConfig, LintReport};
use crate::fix::apply_fixes;
use crate::idlz_lints::lint_deck_text;
use crate::ospl_lints::lint_ospl_deck_text;

/// Which front end parses the golden deck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeckKind {
    /// Appendix-B idealization deck.
    Idlz,
    /// Appendix-C contour-plot deck.
    Ospl,
}

/// One golden deck and the single primary diagnostic it must produce.
#[derive(Debug, Clone, Copy)]
pub struct GoldenCase {
    /// The lint code the deck triggers.
    pub code: LintCode,
    /// The parser front end for the deck text.
    pub kind: DeckKind,
    /// The deck text.
    pub deck: &'static str,
    /// Zero-based index of the card the diagnostic must point at.
    pub card: usize,
    /// One-based field the diagnostic must name, when the code is
    /// field-precise.
    pub field: Option<usize>,
    /// Secondary codes the deck is allowed to co-trigger — some hazards
    /// are intrinsically linked (a duplicate shape group always leaves
    /// some subdivision unshaped).
    pub also: &'static [LintCode],
}

/// The golden corpus, one case per lint code in catalog order.
pub fn golden_cases() -> Vec<GoldenCase> {
    vec![
        GoldenCase {
            code: LintCode::OverlappingSubdivisions,
            kind: DeckKind::Idlz,
            card: 4,
            field: None,
            also: &[],
            deck: concat!(
                "    1\n",
                "OVERLAPPING BOXES\n",
                "    1    1    1    2\n",
                "    1    0    0    2    2         0    0\n",
                "    2    0    0    2    2         0    0\n",
                "    1    0\n",
                "    2    0\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::DisconnectedAssemblage,
            kind: DeckKind::Idlz,
            card: 4,
            field: None,
            also: &[],
            deck: concat!(
                "    1\n",
                "ISLAND SUBDIVISION\n",
                "    1    1    1    2\n",
                "    1    0    0    2    2         0    0\n",
                "    2   10    0   12    2         0    0\n",
                "    1    0\n",
                "    2    0\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::DuplicateSubdivisionId,
            kind: DeckKind::Idlz,
            card: 4,
            field: None,
            // Both Type-5 groups must name the twin number, so the
            // duplicate-group hazard co-fires by construction.
            also: &[LintCode::DuplicateShapeGroup],
            deck: concat!(
                "    1\n",
                "TWIN NUMBERS\n",
                "    1    1    1    2\n",
                "    1    0    0    2    2         0    0\n",
                "    1    2    0    4    2         0    0\n",
                "    1    0\n",
                "    1    0\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::GridLimitProximity,
            kind: DeckKind::Idlz,
            card: 3,
            field: None,
            also: &[],
            deck: concat!(
                "    1\n",
                "NEAR THE GRID LIMIT\n",
                "    1    1    1    1\n",
                "    1    0    0   38    2         0    0\n",
                "    1    0\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::UnshapedSubdivision,
            kind: DeckKind::Idlz,
            card: 4,
            field: None,
            // The group that should have shaped subdivision 2 points at
            // 1 instead, so the duplicate-group hazard co-fires.
            also: &[LintCode::DuplicateShapeGroup],
            deck: concat!(
                "    1\n",
                "UNSHAPED SUBDIVISION\n",
                "    1    1    1    2\n",
                "    1    0    0    2    2         0    0\n",
                "    2    2    0    4    2         0    0\n",
                "    1    0\n",
                "    1    0\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::TrailingCardsIgnored,
            kind: DeckKind::Idlz,
            card: 7,
            field: None,
            also: &[],
            deck: concat!(
                "    1\n",
                "TRAILING BLANK CARD\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    1    0\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
                "\n",
            ),
        },
        GoldenCase {
            code: LintCode::ShapeSegmentSpanMismatch,
            kind: DeckKind::Idlz,
            card: 5,
            field: Some(1),
            also: &[],
            deck: concat!(
                "    1\n",
                "DIAGONAL SHAPE LINE\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    1    1\n",
                "    0    0    4    2  0.0000  0.0000  2.0000  1.0000  0.0000\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::ArcSweepExceeds90,
            kind: DeckKind::Idlz,
            card: 5,
            field: Some(9),
            also: &[],
            deck: concat!(
                "    1\n",
                "HALF TURN ARC\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    1    1\n",
                "    0    0    4    0  0.0000  0.0000  2.0000  0.0000  1.0000\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::DeadShapeLine,
            kind: DeckKind::Idlz,
            card: 5,
            field: None,
            also: &[],
            deck: concat!(
                "    1\n",
                "DEAD SHAPE LINE\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    1    2\n",
                "    0    0    4    0  0.0000  0.0000  4.0000  0.0000  0.0000\n",
                "    0    0    4    0  0.0000  0.0000  4.0000  0.0000  0.0000\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::ShapeLineUnknownSubdivision,
            kind: DeckKind::Idlz,
            card: 4,
            field: Some(1),
            // The only group names a phantom subdivision, so the real
            // subdivision 1 is left unshaped.
            also: &[LintCode::UnshapedSubdivision],
            deck: concat!(
                "    1\n",
                "PHANTOM SUBDIVISION\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    2    0\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::ConflictingPointPosition,
            kind: DeckKind::Idlz,
            card: 6,
            field: None,
            also: &[],
            deck: concat!(
                "    1\n",
                "CONFLICTING CORNER PIN\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    1    2\n",
                "    0    0    4    0  0.0000  0.0000  2.0000  0.0000  0.0000\n",
                "    4    0    4    2  2.5000  0.0000  2.5000  1.0000  0.0000\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::DuplicateShapeGroup,
            kind: DeckKind::Idlz,
            card: 6,
            field: Some(1),
            // The second group's true target (subdivision 2) is left
            // unshaped by the same mistake.
            also: &[LintCode::UnshapedSubdivision],
            deck: concat!(
                "    1\n",
                "DOUBLY SHAPED SUBDIVISION\n",
                "    1    1    1    2\n",
                "    1    0    0    2    2         0    0\n",
                "    2    2    0    4    2         0    0\n",
                "    1    0\n",
                "    1    0\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::BandwidthHostileNumbering,
            kind: DeckKind::Idlz,
            card: 2,
            field: Some(2),
            also: &[],
            deck: concat!(
                "    1\n",
                "WIDE FLAT NO RENUMBER\n",
                "    1    0    1    1\n",
                "    1    0    0   30    1         0    0\n",
                "    1    0\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::FormatFieldTooNarrowForCoordinateRange,
            kind: DeckKind::Idlz,
            card: 6,
            field: Some(1),
            also: &[],
            deck: concat!(
                "    1\n",
                "COORDINATES OVERFLOW F6.3\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    1    1\n",
                "    0    0    4    0  0.0000  0.0000  1234.5  0.0000  0.0000\n",
                "(2F6.3, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::FormatFieldTooNarrowForCount,
            kind: DeckKind::Idlz,
            card: 5,
            field: Some(4),
            also: &[],
            deck: concat!(
                "    1\n",
                "NODE NUMBER OVERFLOWS I2\n",
                "    1    1    1    1\n",
                "    1    0    0    9    9         0    0\n",
                "    1    0\n",
                "(2F9.5, 52X, I3, 5X, I2)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        GoldenCase {
            code: LintCode::ContourWindowOutsideExtents,
            kind: DeckKind::Ospl,
            card: 0,
            field: Some(3),
            also: &[],
            deck: concat!(
                "    3    1     104.0     100.0     103.0     100.0       0.0\n",
                "WINDOW OFF THE MESH\n",
                "LINT CORPUS\n",
                "  0.00000  0.00000                           5.0002\n",
                "  4.00000  0.00000                          15.0002\n",
                "  2.00000  3.00000                          35.0002\n",
                "    1    2    3\n",
            ),
        },
        GoldenCase {
            code: LintCode::IntervalExceedsFieldRange,
            kind: DeckKind::Ospl,
            card: 0,
            field: Some(7),
            also: &[],
            deck: concat!(
                "    3    1       0.0       0.0       0.0       0.0    1000.0\n",
                "HUGE DELTA\n",
                "LINT CORPUS\n",
                "  0.00000  0.00000                           5.0002\n",
                "  4.00000  0.00000                          15.0002\n",
                "  2.00000  3.00000                          35.0002\n",
                "    1    2    3\n",
            ),
        },
        GoldenCase {
            code: LintCode::UnreferencedPlotNode,
            kind: DeckKind::Ospl,
            card: 6,
            field: None,
            also: &[],
            deck: concat!(
                "    4    1       0.0       0.0       0.0       0.0       0.0\n",
                "UNREFERENCED NODE\n",
                "LINT CORPUS\n",
                "  0.00000  0.00000                           5.0002\n",
                "  4.00000  0.00000                          15.0002\n",
                "  2.00000  3.00000                          35.0002\n",
                "  9.00000  9.00000                           0.0002\n",
                "    1    2    3\n",
            ),
        },
    ]
}

/// Lints one golden deck at default severity.
///
/// # Errors
///
/// A human-readable message when the deck does not even parse.
pub fn run_case(case: &GoldenCase) -> Result<LintReport, String> {
    let config = LintConfig::new();
    match case.kind {
        DeckKind::Idlz => lint_deck_text(case.deck, &config)
            .map_err(|e| format!("{} corpus deck failed to parse: {e}", case.code.code())),
        DeckKind::Ospl => lint_ospl_deck_text(case.deck, &config)
            .map_err(|e| format!("{} corpus deck failed to parse: {e}", case.code.code())),
    }
}

/// Runs the whole corpus, checking that every deck-derivable code has a
/// case, that each case produces exactly its expected primary diagnostic
/// (right code, right default severity, right card/field), and that any
/// extra diagnostics are declared in the case's `also` list.
///
/// # Errors
///
/// One message per failing case, all collected.
pub fn verify_corpus() -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    let cases = golden_cases();
    for missing in LintCode::ALL.iter().filter(|code| {
        !LintCode::SESSION.contains(code) && !cases.iter().any(|c| c.code == **code)
    }) {
        problems.push(format!("no corpus deck covers {missing}"));
    }
    for case in &cases {
        let code = case.code.code();
        let report = match run_case(case) {
            Ok(report) => report,
            Err(e) => {
                problems.push(e);
                continue;
            }
        };
        let diagnostics = report.diagnostics();
        let primary: Vec<&Diagnostic> =
            diagnostics.iter().filter(|d| d.code == case.code).collect();
        if primary.len() != 1 {
            problems.push(format!(
                "{code}: expected exactly one {code} diagnostic, got {}: {:?}",
                primary.len(),
                diagnostics.iter().map(ToString::to_string).collect::<Vec<_>>(),
            ));
            continue;
        }
        for extra in diagnostics.iter().filter(|d| d.code != case.code) {
            if !case.also.contains(&extra.code) {
                problems.push(format!(
                    "{code}: deck also triggered undeclared {} ({})",
                    extra.code, extra.message
                ));
            }
        }
        let d = primary[0];
        if d.severity != case.code.default_severity() {
            problems.push(format!(
                "{code}: severity {} does not match the default {}",
                d.severity,
                case.code.default_severity()
            ));
        }
        if d.span.card != Some(case.card) {
            problems.push(format!(
                "{code}: diagnostic points at {:?}, expected card {}",
                d.span.card, case.card
            ));
        }
        if case.field.is_some() && d.span.field != case.field {
            problems.push(format!(
                "{code}: diagnostic names field {:?}, expected {:?}",
                d.span.field, case.field
            ));
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

/// Pipeline-parity class of a machine-applicable fix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixClass {
    /// The repaired deck idealizes to a bit-identical mesh — the fix
    /// touches only punch formats or unread cards.
    Formatting,
    /// The repair changes exactly the documented artifact (the deck
    /// becomes idealizable, the renumbering flips, the contour request
    /// widens); the repaired deck must process cleanly.
    Semantic,
}

/// One before/after pair of the fix corpus.
#[derive(Debug, Clone, Copy)]
pub struct FixCase {
    /// The machine-applicable code under test.
    pub code: LintCode,
    /// The parser front end.
    pub kind: DeckKind,
    /// Parity class, enforced by [`verify_fix_corpus`].
    pub class: FixClass,
    /// Deck text triggering the code.
    pub before: &'static str,
    /// The exact engine output.
    pub after: &'static str,
}

/// The fix corpus: one before/after pair per machine-applicable code.
pub fn fix_cases() -> Vec<FixCase> {
    vec![
        FixCase {
            code: LintCode::TrailingCardsIgnored,
            kind: DeckKind::Idlz,
            class: FixClass::Formatting,
            before: concat!(
                "    1\n",
                "TRAILING BLANK CARDS\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    1    2\n",
                "    0    0    4    0  0.0000  0.0000  4.0000  0.0000  0.0000\n",
                "    0    2    4    2  0.0000  2.0000  4.0000  2.0000  0.0000\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
                "\n",
                "\n",
            ),
            after: concat!(
                "    1\n",
                "TRAILING BLANK CARDS\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    1    2\n",
                "    0    0    4    0  0.0000  0.0000  4.0000  0.0000  0.0000\n",
                "    0    2    4    2  0.0000  2.0000  4.0000  2.0000  0.0000\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        FixCase {
            code: LintCode::ArcSweepExceeds90,
            kind: DeckKind::Idlz,
            class: FixClass::Semantic,
            before: concat!(
                "    1\n",
                "NEGATIVE RADIUS ARC\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    1    2\n",
                "    0    0    4    0  0.0000  0.0000  2.0000  0.0000 -2.0000\n",
                "    0    2    4    2  0.0000  2.0000  2.0000  2.0000  0.0000\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
            after: concat!(
                "    1\n",
                "NEGATIVE RADIUS ARC\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    1    2\n",
                "    4    0    0    0  2.0000  0.0000  0.0000  0.0000  2.0000\n",
                "    0    2    4    2  0.0000  2.0000  2.0000  2.0000  0.0000\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        FixCase {
            code: LintCode::DeadShapeLine,
            kind: DeckKind::Idlz,
            class: FixClass::Formatting,
            before: concat!(
                "    1\n",
                "DEAD SHAPE LINE\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    1    3\n",
                "    0    0    4    0  0.0000  0.0000  4.0000  0.0000  0.0000\n",
                "    0    0    4    0  0.0000  0.0000  4.0000  0.0000  0.0000\n",
                "    0    2    4    2  0.0000  2.0000  4.0000  2.0000  0.0000\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
            after: concat!(
                "    1\n",
                "DEAD SHAPE LINE\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    1    2\n",
                "    0    0    4    0  0.0000  0.0000  4.0000  0.0000  0.0000\n",
                "    0    2    4    2  0.0000  2.0000  4.0000  2.0000  0.0000\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        FixCase {
            code: LintCode::BandwidthHostileNumbering,
            kind: DeckKind::Idlz,
            class: FixClass::Semantic,
            before: concat!(
                "    1\n",
                "WIDE FLAT NO RENUMBER\n",
                "    1    0    1    1\n",
                "    1    0    0   30    1         0    0\n",
                "    1    2\n",
                "    0    0   30    0  0.0000  0.0000 30.0000  0.0000  0.0000\n",
                "    0    1   30    1  0.0000  1.0000 30.0000  1.0000  0.0000\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
            after: concat!(
                "    1\n",
                "WIDE FLAT NO RENUMBER\n",
                "    1    1    1    1\n",
                "    1    0    0   30    1         0    0\n",
                "    1    2\n",
                "    0    0   30    0  0.0000  0.0000 30.0000  0.0000  0.0000\n",
                "    0    1   30    1  0.0000  1.0000 30.0000  1.0000  0.0000\n",
                "(2F9.5, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        FixCase {
            code: LintCode::FormatFieldTooNarrowForCoordinateRange,
            kind: DeckKind::Idlz,
            class: FixClass::Formatting,
            before: concat!(
                "    1\n",
                "COORDINATES OVERFLOW F6.3\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    1    2\n",
                "    0    0    4    0  0.0000  0.0000  1234.5  0.0000  0.0000\n",
                "    0    2    4    2  0.0000  2.0000  1234.5  2.0000  0.0000\n",
                "(2F6.3, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
            after: concat!(
                "    1\n",
                "COORDINATES OVERFLOW F6.3\n",
                "    1    1    1    1\n",
                "    1    0    0    4    2         0    0\n",
                "    1    2\n",
                "    0    0    4    0  0.0000  0.0000  1234.5  0.0000  0.0000\n",
                "    0    2    4    2  0.0000  2.0000  1234.5  2.0000  0.0000\n",
                "(F8.3, F6.3, 51X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        FixCase {
            code: LintCode::FormatFieldTooNarrowForCount,
            kind: DeckKind::Idlz,
            class: FixClass::Formatting,
            before: concat!(
                "    1\n",
                "NODE NUMBER OVERFLOWS I2\n",
                "    1    1    1    1\n",
                "    1    0    0    9    9         0    0\n",
                "    1    2\n",
                "    0    0    9    0  0.0000  0.0000  9.0000  0.0000  0.0000\n",
                "    0    9    9    9  0.0000  9.0000  9.0000  9.0000  0.0000\n",
                "(2F9.5, 52X, I3, 5X, I2)\n",
                "(3I5, 62X, I3)\n",
            ),
            after: concat!(
                "    1\n",
                "NODE NUMBER OVERFLOWS I2\n",
                "    1    1    1    1\n",
                "    1    0    0    9    9         0    0\n",
                "    1    2\n",
                "    0    0    9    0  0.0000  0.0000  9.0000  0.0000  0.0000\n",
                "    0    9    9    9  0.0000  9.0000  9.0000  9.0000  0.0000\n",
                "(2F9.5, 52X, I3, 5X, I3)\n",
                "(3I5, 62X, I3)\n",
            ),
        },
        FixCase {
            code: LintCode::ContourWindowOutsideExtents,
            kind: DeckKind::Ospl,
            class: FixClass::Semantic,
            before: concat!(
                "    3    1     104.0     100.0     103.0     100.0       0.0\n",
                "WINDOW OFF THE MESH\n",
                "LINT CORPUS\n",
                "  0.00000  0.00000                           5.0002\n",
                "  4.00000  0.00000                          15.0002\n",
                "  2.00000  3.00000                          35.0002\n",
                "    1    2    3\n",
            ),
            after: concat!(
                "    3    1    0.0000    0.0000    0.0000    0.0000       0.0\n",
                "WINDOW OFF THE MESH\n",
                "LINT CORPUS\n",
                "  0.00000  0.00000                           5.0002\n",
                "  4.00000  0.00000                          15.0002\n",
                "  2.00000  3.00000                          35.0002\n",
                "    1    2    3\n",
            ),
        },
        FixCase {
            code: LintCode::IntervalExceedsFieldRange,
            kind: DeckKind::Ospl,
            class: FixClass::Semantic,
            before: concat!(
                "    3    1       0.0       0.0       0.0       0.0    1000.0\n",
                "HUGE DELTA\n",
                "LINT CORPUS\n",
                "  0.00000  0.00000                           5.0002\n",
                "  4.00000  0.00000                          15.0002\n",
                "  2.00000  3.00000                          35.0002\n",
                "    1    2    3\n",
            ),
            after: concat!(
                "    3    1       0.0       0.0       0.0       0.0    0.0000\n",
                "HUGE DELTA\n",
                "LINT CORPUS\n",
                "  0.00000  0.00000                           5.0002\n",
                "  4.00000  0.00000                          15.0002\n",
                "  2.00000  3.00000                          35.0002\n",
                "    1    2    3\n",
            ),
        },
    ]
}

/// The fix-corpus gate's tally, consumed by `decklint --golden` and the
/// `lint-fix` verify stage.
#[derive(Debug, Clone, Default)]
pub struct FixCorpusReport {
    /// Before/after pairs exercised.
    pub cases: usize,
    /// Total fixes the engine applied across all pairs.
    pub fixes_applied: usize,
    /// Pipeline-parity comparisons run (idealize before and after).
    pub parity_checks: usize,
    /// Formatting-class pairs whose meshes were NOT bit-identical —
    /// must be zero.
    pub parity_mismatches: usize,
    /// Pairs where the engine failed to converge — must be zero.
    pub unconverged: usize,
    /// Every failure, human-readable; empty means the gate passed.
    pub problems: Vec<String>,
}

/// Runs the fix corpus: every machine-applicable code must have a pair;
/// each pair's `before` must repair to exactly `after`; the output must
/// re-lint with no machine-applicable fixes left and be a fixpoint
/// (applying again changes nothing); Formatting-class IDLZ pairs must
/// idealize to bit-identical meshes, Semantic-class IDLZ pairs must
/// idealize cleanly after repair.
pub fn verify_fix_corpus() -> FixCorpusReport {
    let mut report = FixCorpusReport::default();
    let cases = fix_cases();
    let config = LintConfig::new();
    for missing in LintCode::ALL
        .iter()
        .filter(|code| code.fixable() && !cases.iter().any(|c| c.code == **code))
    {
        report
            .problems
            .push(format!("no fix-corpus pair covers {missing}"));
    }
    for case in &cases {
        let code = case.code.code();
        report.cases += 1;
        let outcome = match apply_fixes(case.before, case.kind, &config) {
            Ok(outcome) => outcome,
            Err(e) => {
                if matches!(e, crate::fix::FixError::NoConvergence { .. }) {
                    report.unconverged += 1;
                }
                report.problems.push(format!("{code}: apply_fixes failed: {e}"));
                continue;
            }
        };
        report.fixes_applied += outcome.applied.len();
        if !outcome.applied.iter().any(|a| a.code == case.code) {
            report.problems.push(format!(
                "{code}: the engine never applied a {code} fix (applied: {:?})",
                outcome.applied.iter().map(|a| a.code.code()).collect::<Vec<_>>()
            ));
        }
        if outcome.text != case.after {
            report.problems.push(format!(
                "{code}: repaired text differs from the golden `after`:\n--- got\n{}--- want\n{}",
                outcome.text, case.after
            ));
            continue;
        }
        if outcome
            .report
            .diagnostics()
            .iter()
            .any(Diagnostic::is_machine_fixable)
        {
            report.problems.push(format!(
                "{code}: the repaired deck still carries machine-fixable diagnostics"
            ));
        }
        // Idempotence: a second run is a no-op.
        match apply_fixes(case.after, case.kind, &config) {
            Ok(second) => {
                if !second.applied.is_empty() || second.text != case.after {
                    report.problems.push(format!(
                        "{code}: the engine is not idempotent on its own output"
                    ));
                }
            }
            Err(e) => report
                .problems
                .push(format!("{code}: re-running on `after` failed: {e}")),
        }
        // Pipeline parity.
        if case.kind == DeckKind::Idlz {
            report.parity_checks += 1;
            if let Err(problem) = check_idlz_parity(case) {
                if case.class == FixClass::Formatting {
                    report.parity_mismatches += 1;
                }
                report.problems.push(format!("{code}: {problem}"));
            }
        }
    }
    report
}

/// Formatting: the before/after decks idealize to bit-identical meshes.
/// Semantic: the after deck idealizes cleanly (the before deck need
/// not — several semantic repairs exist to make the deck runnable).
fn check_idlz_parity(case: &FixCase) -> Result<(), String> {
    use cafemio_cards::Deck;
    use cafemio_idlz::Idealization;
    let run = |text: &str| -> Result<Vec<cafemio_mesh::TriMesh>, String> {
        let deck = Deck::from_text(text).map_err(|e| e.to_string())?;
        let sets = Idealization::run_deck(&deck).map_err(|e| e.to_string())?;
        Ok(sets.into_iter().map(|(_, r)| r.mesh).collect())
    };
    let after = run(case.after).map_err(|e| format!("repaired deck does not idealize: {e}"))?;
    if case.class == FixClass::Formatting {
        let before = run(case.before)
            .map_err(|e| format!("formatting-class before deck does not idealize: {e}"))?;
        if before != after {
            return Err("formatting-class fix changed the idealized mesh".to_owned());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_code_has_a_golden_deck_that_triggers_it() {
        if let Err(problems) = verify_corpus() {
            panic!("corpus failures:\n{}", problems.join("\n"));
        }
    }

    #[test]
    fn every_fixable_code_round_trips_through_the_fix_corpus() {
        let report = verify_fix_corpus();
        assert!(
            report.problems.is_empty(),
            "fix corpus failures:\n{}",
            report.problems.join("\n")
        );
        assert_eq!(report.parity_mismatches, 0);
        assert_eq!(report.unconverged, 0);
        assert!(report.cases >= 8);
    }
}

//! Static analysis of IDLZ/OSPL card decks: `cafemio-lint`.
//!
//! The lint pass inspects a *parsed* deck — no mesh is generated and no
//! matrix is assembled — and reports structured [`Diagnostic`]s, each
//! carrying a stable [`LintCode`], a [`Severity`] (configurable per code
//! through [`LintConfig`]), a [`SourceSpan`] pointing back at the
//! offending card (down to keypunch columns), a message, and an optional
//! [`Fix`] — advice, or span-anchored card [`Edit`]s that [`apply_fixes`]
//! applies mechanically to convergence. Checks that mirror a runtime
//! rejection replicate the runtime's exact criterion, so a deck that
//! lints clean at default severity cannot hit that rejection later;
//! `Warn`-level codes flag decks that run today but are fragile
//! (capacity proximity, bandwidth-hostile numbering, dead shape lines,
//! dataflow hazards over the [`dataflow::DeckGraph`] reference graph).
//!
//! Entry points by input form:
//!
//! - deck text: [`lint_deck_text`] (IDLZ), [`lint_ospl_deck_text`] (OSPL)
//! - parsed cards: [`lint_idlz_deck`], [`lint_ospl_deck`]
//! - structured input: [`lint_specs`] / [`lint_idlz`] (card provenance
//!   optional), [`lint_ospl_input`]
//!
//! The golden corpus in [`corpus`] holds one minimal deck per lint code
//! and is the catalog's executable specification.
//!
//! ```
//! use cafemio_lint::{lint_deck_text, LintCode, LintConfig};
//! # fn main() -> Result<(), cafemio_idlz::IdlzError> {
//! let deck = concat!(
//!     "    1\n",
//!     "OVERLAPPING BOXES\n",
//!     "    1    1    1    2\n",
//!     "    1    0    0    2    2         0    0\n",
//!     "    2    0    0    2    2         0    0\n",
//!     "    1    0\n",
//!     "    2    0\n",
//!     "(2F9.5, 51X, I3, 5X, I3)\n",
//!     "(3I5, 62X, I3)\n",
//! );
//! let report = lint_deck_text(deck, &LintConfig::new())?;
//! assert_eq!(report.denied_count(), 1);
//! let d = &report.diagnostics()[0];
//! assert_eq!(d.code, LintCode::OverlappingSubdivisions);
//! assert_eq!(d.span.card, Some(4)); // the second Type-4 card
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod dataflow;
mod diagnostic;
pub mod docs;
mod fix;
mod idlz_lints;
mod ospl_lints;

pub use corpus::{
    fix_cases, golden_cases, run_case, verify_corpus, verify_fix_corpus, DeckKind, FixCase,
    FixClass, FixCorpusReport, GoldenCase,
};
pub use diagnostic::{
    Diagnostic, Edit, Fix, LintCode, LintConfig, LintError, LintReport, Severity, SourceSpan,
};
pub use fix::{apply_fixes, AppliedFix, FixError, FixOutcome, MAX_PASSES};
pub use idlz_lints::{
    lint_deck_text, lint_idlz, lint_idlz_deck, lint_idlz_with_deck, lint_specs,
};
pub use ospl_lints::{
    lint_component_request, lint_ospl_deck, lint_ospl_deck_text, lint_ospl_input,
};

//! The auto-fix engine: applies machine-applicable [`Fix`]es to deck
//! text until the deck stops producing fixable diagnostics.
//!
//! The engine is a classic fixpoint loop with two guarantees:
//!
//! - **Convergence**: at most [`MAX_PASSES`] re-lint rounds; a deck whose
//!   fixes keep producing new fixable diagnostics past that bound is an
//!   engine bug and reported as [`FixError::NoConvergence`] instead of
//!   looping.
//! - **Idempotence**: the returned text re-lints with zero
//!   machine-applicable fixes, so running the engine on its own output
//!   applies nothing.
//!
//! Within one pass, fixes apply in diagnostic order under a conflict
//! policy: card-replacing fixes claim disjoint card sets, and at most
//! one card-*deleting* fix runs per pass (applied last, deletions in
//! descending card order) because deletions shift every later card
//! index. Conflicting or inapplicable fixes simply wait for the next
//! pass, where the re-lint re-derives their spans.

use std::collections::BTreeSet;

use cafemio_cards::{Card, Deck};

use crate::corpus::DeckKind;
use crate::diagnostic::{Diagnostic, Edit, Fix, LintCode, LintConfig, LintReport};
use crate::idlz_lints::lint_deck_text;
use crate::ospl_lints::lint_ospl_deck_text;

/// Upper bound on re-lint rounds before the engine declares divergence.
/// Every shipped fix removes its own diagnostic in one round, so real
/// decks converge in one or two passes; the bound exists to turn an
/// engine bug into an error instead of a loop.
pub const MAX_PASSES: usize = 8;

/// One fix the engine applied.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedFix {
    /// The code of the diagnostic the fix repaired.
    pub code: LintCode,
    /// The fix's human-readable label.
    pub label: String,
    /// The 1-based pass in which it applied.
    pub pass: usize,
}

/// The engine's result: repaired text plus an audit trail.
#[derive(Debug, Clone)]
pub struct FixOutcome {
    /// The repaired deck text (the input verbatim when nothing applied).
    pub text: String,
    /// Every fix applied, in application order.
    pub applied: Vec<AppliedFix>,
    /// Number of apply-and-re-lint passes that changed the deck.
    pub passes: usize,
    /// The lint report of the final text — what remains after repair
    /// (advice-only diagnostics, or fixable ones whose edits could not
    /// apply).
    pub report: LintReport,
}

/// Why the engine could not produce a repaired deck.
#[derive(Debug, Clone, PartialEq)]
pub enum FixError {
    /// The deck text (input or an intermediate) failed to parse; the
    /// message carries the front end's own card-anchored error.
    Parse(String),
    /// The fixpoint did not converge within [`MAX_PASSES`] passes.
    NoConvergence {
        /// Passes run before giving up.
        passes: usize,
    },
}

impl std::fmt::Display for FixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FixError::Parse(message) => write!(f, "deck does not parse: {message}"),
            FixError::NoConvergence { passes } => write!(
                f,
                "fixes did not converge after {passes} passes; the deck keeps producing \
                 machine-applicable diagnostics"
            ),
        }
    }
}

impl std::error::Error for FixError {}

/// Applies every machine-applicable fix to `text`, re-linting between
/// passes until the deck produces no more fixable diagnostics.
///
/// # Errors
///
/// [`FixError::Parse`] when the text does not parse (before or after a
/// pass — a fix that breaks parsing is an engine bug surfaced, not
/// swallowed); [`FixError::NoConvergence`] when [`MAX_PASSES`] rounds do
/// not reach the fixpoint.
pub fn apply_fixes(
    text: &str,
    kind: DeckKind,
    config: &LintConfig,
) -> Result<FixOutcome, FixError> {
    let mut text = text.to_owned();
    let mut applied: Vec<AppliedFix> = Vec::new();
    let mut passes = 0usize;
    loop {
        let report = relint(&text, kind, config)?;
        if !report.diagnostics().iter().any(Diagnostic::is_machine_fixable) {
            return Ok(FixOutcome {
                text,
                applied,
                passes,
                report,
            });
        }
        if passes == MAX_PASSES {
            return Err(FixError::NoConvergence { passes });
        }
        let pass_applied = match apply_one_pass(&mut text, &report, passes + 1) {
            Ok(pass_applied) => pass_applied,
            Err(message) => return Err(FixError::Parse(message)),
        };
        if pass_applied.is_empty() {
            // Fixable diagnostics remain but none of their edits can
            // actually apply (stale spans, overflow): stop — rerunning
            // would hit the same wall, so this is already the fixpoint.
            return Ok(FixOutcome {
                text,
                applied,
                passes,
                report,
            });
        }
        applied.extend(pass_applied);
        passes += 1;
    }
}

fn relint(text: &str, kind: DeckKind, config: &LintConfig) -> Result<LintReport, FixError> {
    match kind {
        DeckKind::Idlz => lint_deck_text(text, config).map_err(|e| FixError::Parse(e.to_string())),
        DeckKind::Ospl => {
            lint_ospl_deck_text(text, config).map_err(|e| FixError::Parse(e.to_string()))
        }
    }
}

/// One pass: select non-conflicting fixes, apply their card
/// replacements, then the (single) deleting fix's deletions. Returns
/// the fixes applied; `text` is rewritten in place.
fn apply_one_pass(
    text: &mut String,
    report: &LintReport,
    pass: usize,
) -> Result<Vec<AppliedFix>, String> {
    let mut deck = Deck::from_text(text).map_err(|e| e.to_string())?;
    let mut claimed: BTreeSet<usize> = BTreeSet::new();
    let mut selected: Vec<(&Diagnostic, &Fix)> = Vec::new();
    let mut deleting: Option<(&Diagnostic, &Fix)> = None;

    // Replacement-only fixes first, each claiming its cards.
    for d in report.diagnostics() {
        let Some(fix) = &d.fix else { continue };
        if !fix.is_machine_applicable() || fix.edits.iter().any(Edit::deletes) {
            continue;
        }
        let cards: BTreeSet<usize> = fix.edits.iter().map(Edit::card).collect();
        if cards.iter().all(|c| !claimed.contains(c) && *c < deck.len()) {
            claimed.extend(cards);
            selected.push((d, fix));
        }
    }
    // Then at most one deleting fix (deletions shift later indices, so
    // two in one pass could delete the wrong cards).
    for d in report.diagnostics() {
        let Some(fix) = &d.fix else { continue };
        if !fix.is_machine_applicable() || !fix.edits.iter().any(Edit::deletes) {
            continue;
        }
        let cards: BTreeSet<usize> = fix.edits.iter().map(Edit::card).collect();
        if cards.iter().all(|c| !claimed.contains(c) && *c < deck.len()) {
            claimed.extend(cards);
            deleting = Some((d, fix));
            break;
        }
    }

    let mut applied = Vec::new();
    for (d, fix) in &selected {
        if apply_replacements(&mut deck, &fix.edits).is_ok() {
            applied.push(AppliedFix {
                code: d.code,
                label: fix.label.clone(),
                pass,
            });
        }
    }
    if let Some((d, fix)) = deleting {
        // The deleting fix is atomic too: deletions only run when its
        // replacement edits succeeded.
        if apply_replacements(&mut deck, &fix.edits).is_ok() {
            let mut cards: Vec<usize> = fix
                .edits
                .iter()
                .filter(|e| e.deletes())
                .map(Edit::card)
                .collect();
            cards.sort_unstable();
            cards.dedup();
            for &card in cards.iter().rev() {
                if card < deck.len() {
                    deck.remove_card(card);
                }
            }
            applied.push(AppliedFix {
                code: d.code,
                label: fix.label.clone(),
                pass,
            });
        }
    }
    if !applied.is_empty() {
        *text = deck.to_text();
    }
    Ok(applied)
}

/// Applies the non-deleting edits of one fix. Any failure (bad column
/// range, text overflow, malformed card image) abandons the whole fix —
/// a half-applied fix would be worse than none.
fn apply_replacements(deck: &mut Deck, edits: &[Edit]) -> Result<(), String> {
    // Dry-run against a clone so failure leaves the deck untouched.
    let mut staged = deck.clone();
    for edit in edits {
        match edit {
            Edit::ReplaceColumns {
                card,
                columns: (from, to),
                text,
            } => {
                if *card >= staged.len() || *from < 1 || from > to || *to > 80 {
                    return Err(format!("edit out of range: card {card} cols {from}-{to}"));
                }
                let rewritten = staged
                    .card(*card)
                    .with_columns(*from, *to, text)
                    .map_err(|e| e.to_string())?;
                staged.replace_card(*card, rewritten);
            }
            Edit::ReplaceCard { card, text } => {
                if *card >= staged.len() {
                    return Err(format!("edit out of range: card {card}"));
                }
                let rewritten = Card::new(text).map_err(|e| e.to_string())?;
                staged.replace_card(*card, rewritten);
            }
            Edit::DeleteCard { .. } => {}
        }
    }
    *deck = staged;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The N001 golden deck: renumber off, wide flat model. Its fix
    /// flips the renumber flag in place — a one-pass, one-card repair.
    const BANDWIDTH_DECK: &str = concat!(
        "    1\n",
        "WIDE FLAT NO RENUMBER\n",
        "    1    0    1    1\n",
        "    1    0    0   30    1         0    0\n",
        "    1    0\n",
        "(2F9.5, 51X, I3, 5X, I3)\n",
        "(3I5, 62X, I3)\n",
    );

    #[test]
    fn fixes_apply_and_the_output_relints_clean() {
        let outcome = apply_fixes(BANDWIDTH_DECK, DeckKind::Idlz, &LintConfig::new()).unwrap();
        assert_eq!(outcome.applied.len(), 1);
        assert_eq!(outcome.applied[0].code, LintCode::BandwidthHostileNumbering);
        assert_eq!(outcome.passes, 1);
        assert!(outcome.report.is_clean(), "{:?}", outcome.report.diagnostics());
        assert!(outcome.text.contains("    1    1    1    1"));
    }

    #[test]
    fn the_engine_is_idempotent() {
        let once = apply_fixes(BANDWIDTH_DECK, DeckKind::Idlz, &LintConfig::new()).unwrap();
        let twice = apply_fixes(&once.text, DeckKind::Idlz, &LintConfig::new()).unwrap();
        assert!(twice.applied.is_empty());
        assert_eq!(twice.passes, 0);
        assert_eq!(twice.text, once.text);
    }

    #[test]
    fn a_clean_deck_passes_through_verbatim() {
        let deck = concat!(
            "    1\n",
            "CLEAN\n",
            "    1    1    1    1\n",
            "    1    0    0    4    2         0    0\n",
            "    1    0\n",
            "(2F9.5, 51X, I3, 5X, I3)\n",
            "(3I5, 62X, I3)\n",
        );
        let outcome = apply_fixes(deck, DeckKind::Idlz, &LintConfig::new()).unwrap();
        assert!(outcome.applied.is_empty());
        assert_eq!(outcome.text, deck);
    }

    #[test]
    fn unparseable_text_reports_a_parse_error() {
        let err = apply_fixes("not a deck", DeckKind::Idlz, &LintConfig::new()).unwrap_err();
        assert!(matches!(err, FixError::Parse(_)));
    }
}

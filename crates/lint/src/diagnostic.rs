//! The diagnostic model: stable lint codes, severities, source spans,
//! and the report type every lint pass returns.

use std::collections::BTreeMap;
use std::fmt;

use cafemio_instrument::{CounterRecord, PerfReport};

/// How seriously a diagnostic is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suppressed entirely: the diagnostic is dropped from the report.
    Allow,
    /// Reported but does not fail the run.
    Warn,
    /// Reported and fails the run (a lint "denial").
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// The stable lint-code registry. The `Dxxx`/`Sxxx`/`Nxxx`/`Fxxx`/`Oxxx`
/// text codes are the public contract: tooling may key on them, so a code
/// is never renumbered, only retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `D001`: two subdivisions produce the same element.
    OverlappingSubdivisions,
    /// `D002`: the assemblage splits into disconnected pieces.
    DisconnectedAssemblage,
    /// `D003`: two Type-4 cards carry the same subdivision number.
    DuplicateSubdivisionId,
    /// `D004`: the deck uses more than 90 % of an active capacity limit
    /// (Table 2 by default; a `LargeMesh` session lifts them).
    GridLimitProximity,
    /// `S001`: a shape line's end points do not lie on a common side.
    ShapeSegmentSpanMismatch,
    /// `S002`: a circular-arc shape line subtends more than 90 degrees
    /// (or has an impossible chord/radius combination).
    ArcSweepExceeds90,
    /// `S003`: a shape line is fully overwritten by later lines.
    DeadShapeLine,
    /// `S004`: a Type-5 card names a subdivision that does not exist.
    ShapeLineUnknownSubdivision,
    /// `N001`: renumbering is off and the natural grid numbering has a
    /// much wider bandwidth than the transposed ordering would.
    BandwidthHostileNumbering,
    /// `F001`: a punch-format field is too narrow for the coordinate
    /// range the shape lines imply (the static twin of `FieldOverflow`).
    FormatFieldTooNarrowForCoordinateRange,
    /// `F002`: a punch-format integer field is too narrow for the node
    /// or element numbers the deck will generate.
    FormatFieldTooNarrowForCount,
    /// `O001`: the OSPL plot window excludes every node of the mesh.
    ContourWindowOutsideExtents,
    /// `O002`: the contour interval exceeds the whole field range.
    IntervalExceedsFieldRange,
}

impl LintCode {
    /// Every registered code, in registry order.
    pub const ALL: [LintCode; 13] = [
        LintCode::OverlappingSubdivisions,
        LintCode::DisconnectedAssemblage,
        LintCode::DuplicateSubdivisionId,
        LintCode::GridLimitProximity,
        LintCode::ShapeSegmentSpanMismatch,
        LintCode::ArcSweepExceeds90,
        LintCode::DeadShapeLine,
        LintCode::ShapeLineUnknownSubdivision,
        LintCode::BandwidthHostileNumbering,
        LintCode::FormatFieldTooNarrowForCoordinateRange,
        LintCode::FormatFieldTooNarrowForCount,
        LintCode::ContourWindowOutsideExtents,
        LintCode::IntervalExceedsFieldRange,
    ];

    /// The stable text code (e.g. `"D001"`).
    pub fn code(self) -> &'static str {
        match self {
            LintCode::OverlappingSubdivisions => "D001",
            LintCode::DisconnectedAssemblage => "D002",
            LintCode::DuplicateSubdivisionId => "D003",
            LintCode::GridLimitProximity => "D004",
            LintCode::ShapeSegmentSpanMismatch => "S001",
            LintCode::ArcSweepExceeds90 => "S002",
            LintCode::DeadShapeLine => "S003",
            LintCode::ShapeLineUnknownSubdivision => "S004",
            LintCode::BandwidthHostileNumbering => "N001",
            LintCode::FormatFieldTooNarrowForCoordinateRange => "F001",
            LintCode::FormatFieldTooNarrowForCount => "F002",
            LintCode::ContourWindowOutsideExtents => "O001",
            LintCode::IntervalExceedsFieldRange => "O002",
        }
    }

    /// The kebab-case name (e.g. `"overlapping-subdivisions"`).
    pub fn name(self) -> &'static str {
        match self {
            LintCode::OverlappingSubdivisions => "overlapping-subdivisions",
            LintCode::DisconnectedAssemblage => "disconnected-assemblage",
            LintCode::DuplicateSubdivisionId => "duplicate-subdivision-id",
            LintCode::GridLimitProximity => "grid-limit-proximity",
            LintCode::ShapeSegmentSpanMismatch => "shape-segment-span-mismatch",
            LintCode::ArcSweepExceeds90 => "arc-sweep-exceeds-90",
            LintCode::DeadShapeLine => "dead-shape-line",
            LintCode::ShapeLineUnknownSubdivision => "shape-line-unknown-subdivision",
            LintCode::BandwidthHostileNumbering => "bandwidth-hostile-numbering",
            LintCode::FormatFieldTooNarrowForCoordinateRange => {
                "format-field-too-narrow-for-coordinate-range"
            }
            LintCode::FormatFieldTooNarrowForCount => "format-field-too-narrow-for-count",
            LintCode::ContourWindowOutsideExtents => "contour-window-outside-extents",
            LintCode::IntervalExceedsFieldRange => "interval-exceeds-field-range",
        }
    }

    /// The severity in force when [`LintConfig`] carries no override.
    ///
    /// A code denies by default exactly when the runtime pipeline would
    /// reject the same deck with a hard error later; advisory conditions
    /// (capacity proximity, dead lines, hostile numbering, coarse
    /// intervals) warn.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::OverlappingSubdivisions
            | LintCode::DisconnectedAssemblage
            | LintCode::DuplicateSubdivisionId
            | LintCode::ShapeSegmentSpanMismatch
            | LintCode::ArcSweepExceeds90
            | LintCode::ShapeLineUnknownSubdivision
            | LintCode::FormatFieldTooNarrowForCoordinateRange
            | LintCode::FormatFieldTooNarrowForCount
            | LintCode::ContourWindowOutsideExtents => Severity::Deny,
            LintCode::GridLimitProximity
            | LintCode::DeadShapeLine
            | LintCode::BandwidthHostileNumbering
            | LintCode::IntervalExceedsFieldRange => Severity::Warn,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// Where in the deck a diagnostic points: a card index and, when it can
/// be pinned down, the one-based data-field ordinal on that card.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourceSpan {
    /// Zero-based card index in the deck (displayed one-based).
    pub card: Option<usize>,
    /// One-based data-field ordinal on the card.
    pub field: Option<usize>,
}

impl SourceSpan {
    /// A span with no provenance (spec-level lints without a deck).
    pub fn none() -> SourceSpan {
        SourceSpan::default()
    }

    /// A span naming a card.
    pub fn card(card: usize) -> SourceSpan {
        SourceSpan {
            card: Some(card),
            field: None,
        }
    }

    /// A span naming a card and a data field on it.
    pub fn card_field(card: usize, field: usize) -> SourceSpan {
        SourceSpan {
            card: Some(card),
            field: Some(field),
        }
    }
}

impl fmt::Display for SourceSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.card, self.field) {
            (Some(card), Some(field)) => write!(f, "card {}, field {field}", card + 1),
            (Some(card), None) => write!(f, "card {}", card + 1),
            _ => f.write_str("deck"),
        }
    }
}

/// One finding of the lint pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The registry code.
    pub code: LintCode,
    /// The effective severity (after [`LintConfig`] overrides).
    pub severity: Severity,
    /// Where the finding points.
    pub span: SourceSpan,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when a concrete fix is known.
    pub suggestion: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {} at {}: {}",
            self.severity,
            self.code.code(),
            self.code.name(),
            self.span,
            self.message
        )?;
        if let Some(fix) = &self.suggestion {
            write!(f, " (help: {fix})")?;
        }
        Ok(())
    }
}

/// Per-code severity configuration.
///
/// # Examples
///
/// ```
/// use cafemio_lint::{LintCode, LintConfig, Severity};
/// let config = LintConfig::new().with(LintCode::DeadShapeLine, Severity::Deny);
/// assert_eq!(config.severity(LintCode::DeadShapeLine), Severity::Deny);
/// assert_eq!(
///     config.severity(LintCode::OverlappingSubdivisions),
///     LintCode::OverlappingSubdivisions.default_severity()
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintConfig {
    overrides: BTreeMap<LintCode, Severity>,
}

impl LintConfig {
    /// Default severities for every code.
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Overrides one code's severity (builder style).
    pub fn with(mut self, code: LintCode, severity: Severity) -> LintConfig {
        self.overrides.insert(code, severity);
        self
    }

    /// Suppresses one code entirely.
    pub fn allow(self, code: LintCode) -> LintConfig {
        self.with(code, Severity::Allow)
    }

    /// Escalates every warning to a denial (the `-D warnings` of decks).
    pub fn deny_warnings(mut self) -> LintConfig {
        for code in LintCode::ALL {
            if self.severity(code) == Severity::Warn {
                self.overrides.insert(code, Severity::Deny);
            }
        }
        self
    }

    /// The effective severity of a code.
    pub fn severity(&self, code: LintCode) -> Severity {
        self.overrides
            .get(&code)
            .copied()
            .unwrap_or_else(|| code.default_severity())
    }
}

/// The outcome of a lint pass: every non-suppressed diagnostic, in deck
/// order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty (clean) report.
    pub fn new() -> LintReport {
        LintReport::default()
    }

    /// Records a diagnostic unless its severity is [`Severity::Allow`].
    pub fn push(&mut self, diagnostic: Diagnostic) {
        if diagnostic.severity != Severity::Allow {
            self.diagnostics.push(diagnostic);
        }
    }

    /// All recorded diagnostics.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The denials only.
    pub fn denied(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
    }

    /// Number of denials.
    pub fn denied_count(&self) -> usize {
        self.denied().count()
    }

    /// Number of warnings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// True when nothing was reported at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Merges another report's diagnostics into this one.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// The report as instrumentation counters (`lint.diagnostics`,
    /// `lint.denied`, `lint.warnings`, plus one `lint.<CODE>` counter per
    /// code that fired) — the JSON-emission layer shared with the rest of
    /// the workspace.
    pub fn to_perf_report(&self) -> PerfReport {
        let mut per_code: BTreeMap<&'static str, u64> = BTreeMap::new();
        for d in &self.diagnostics {
            *per_code.entry(d.code.code()).or_insert(0) += 1;
        }
        let mut counters = vec![
            CounterRecord {
                name: "lint.diagnostics".to_owned(),
                value: self.diagnostics.len() as u64,
            },
            CounterRecord {
                name: "lint.denied".to_owned(),
                value: self.denied_count() as u64,
            },
            CounterRecord {
                name: "lint.warnings".to_owned(),
                value: self.warning_count() as u64,
            },
        ];
        for (code, count) in per_code {
            counters.push(CounterRecord {
                name: format!("lint.{code}"),
                value: count,
            });
        }
        PerfReport {
            spans: Vec::new(),
            counters,
        }
    }

    /// The counter view of the report, serialized as JSON.
    pub fn to_json(&self) -> String {
        self.to_perf_report().to_json()
    }
}

/// The error a denying lint run raises: the denials themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct LintError {
    /// Every denial of the run, in deck order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintError {
    /// Builds the error from a report's denials; `None` when the report
    /// denies nothing.
    pub fn from_report(report: &LintReport) -> Option<LintError> {
        let diagnostics: Vec<Diagnostic> = report.denied().cloned().collect();
        if diagnostics.is_empty() {
            None
        } else {
            Some(LintError { diagnostics })
        }
    }
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} lint denial(s)", self.diagnostics.len())?;
        if let Some(first) = self.diagnostics.first() {
            write!(f, ", first: {first}")?;
        }
        Ok(())
    }
}

impl std::error::Error for LintError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut codes: Vec<&str> = LintCode::ALL.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), LintCode::ALL.len(), "duplicate code text");
        assert_eq!(LintCode::OverlappingSubdivisions.code(), "D001");
        assert_eq!(LintCode::ContourWindowOutsideExtents.code(), "O001");
    }

    #[test]
    fn config_overrides_and_deny_warnings() {
        let config = LintConfig::new().allow(LintCode::GridLimitProximity);
        assert_eq!(config.severity(LintCode::GridLimitProximity), Severity::Allow);
        let strict = LintConfig::new().deny_warnings();
        assert_eq!(strict.severity(LintCode::DeadShapeLine), Severity::Deny);
        assert_eq!(
            strict.severity(LintCode::OverlappingSubdivisions),
            Severity::Deny
        );
    }

    #[test]
    fn allowed_diagnostics_are_dropped() {
        let mut report = LintReport::new();
        report.push(Diagnostic {
            code: LintCode::DeadShapeLine,
            severity: Severity::Allow,
            span: SourceSpan::none(),
            message: "suppressed".into(),
            suggestion: None,
        });
        assert!(report.is_clean());
    }

    #[test]
    fn report_counters_round_trip() {
        let mut report = LintReport::new();
        report.push(Diagnostic {
            code: LintCode::OverlappingSubdivisions,
            severity: Severity::Deny,
            span: SourceSpan::card(4),
            message: "overlap".into(),
            suggestion: None,
        });
        report.push(Diagnostic {
            code: LintCode::DeadShapeLine,
            severity: Severity::Warn,
            span: SourceSpan::card_field(6, 2),
            message: "dead".into(),
            suggestion: Some("remove it".into()),
        });
        let perf = report.to_perf_report();
        assert_eq!(perf.counter("lint.diagnostics"), Some(2));
        assert_eq!(perf.counter("lint.denied"), Some(1));
        assert_eq!(perf.counter("lint.warnings"), Some(1));
        assert_eq!(perf.counter("lint.D001"), Some(1));
        assert_eq!(perf.counter("lint.S003"), Some(1));
        let round = PerfReport::from_json(&report.to_json()).unwrap();
        assert_eq!(round.counter("lint.D001"), Some(1));
    }

    #[test]
    fn display_formats() {
        let d = Diagnostic {
            code: LintCode::ArcSweepExceeds90,
            severity: Severity::Deny,
            span: SourceSpan::card_field(5, 9),
            message: "arc subtends 180 degrees".into(),
            suggestion: Some("split the arc".into()),
        };
        assert_eq!(
            d.to_string(),
            "deny[S002] arc-sweep-exceeds-90 at card 6, field 9: arc subtends 180 \
             degrees (help: split the arc)"
        );
        let err = LintError {
            diagnostics: vec![d],
        };
        assert!(err.to_string().starts_with("1 lint denial(s), first: deny[S002]"));
    }
}

//! The diagnostic model: stable lint codes, severities, source spans,
//! and the report type every lint pass returns.

use std::collections::BTreeMap;
use std::fmt;

use cafemio_instrument::{CounterRecord, PerfReport};

/// How seriously a diagnostic is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suppressed entirely: the diagnostic is dropped from the report.
    Allow,
    /// Reported but does not fail the run.
    Warn,
    /// Reported and fails the run (a lint "denial").
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// The stable lint-code registry. The `Dxxx`/`Sxxx`/`Nxxx`/`Fxxx`/`Oxxx`
/// text codes are the public contract: tooling may key on them, so a code
/// is never renumbered, only retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `D001`: two subdivisions produce the same element.
    OverlappingSubdivisions,
    /// `D002`: the assemblage splits into disconnected pieces.
    DisconnectedAssemblage,
    /// `D003`: two Type-4 cards carry the same subdivision number.
    DuplicateSubdivisionId,
    /// `D004`: the deck uses more than 90 % of an active capacity limit
    /// (Table 2 by default; a `LargeMesh` session lifts them).
    GridLimitProximity,
    /// `S001`: a shape line's end points do not lie on a common side.
    ShapeSegmentSpanMismatch,
    /// `S002`: a circular-arc shape line subtends more than 90 degrees
    /// (or has an impossible chord/radius combination).
    ArcSweepExceeds90,
    /// `S003`: a shape line is fully overwritten by later lines.
    DeadShapeLine,
    /// `S004`: a Type-5 card names a subdivision that does not exist.
    ShapeLineUnknownSubdivision,
    /// `N001`: renumbering is off and the natural grid numbering has a
    /// much wider bandwidth than the transposed ordering would.
    BandwidthHostileNumbering,
    /// `F001`: a punch-format field is too narrow for the coordinate
    /// range the shape lines imply (the static twin of `FieldOverflow`).
    FormatFieldTooNarrowForCoordinateRange,
    /// `F002`: a punch-format integer field is too narrow for the node
    /// or element numbers the deck will generate.
    FormatFieldTooNarrowForCount,
    /// `D005`: a subdivision is defined on a Type-4 card but shaped by no
    /// Type-5 group, so its region keeps unshaped straight edges.
    UnshapedSubdivision,
    /// `D006`: cards after the last parsed data set are silently ignored
    /// by the reader.
    TrailingCardsIgnored,
    /// `S005`: two shape-line end points pin the same grid point to
    /// different physical positions; the later card silently wins.
    ConflictingPointPosition,
    /// `S006`: two Type-5 groups name the same subdivision; their lines
    /// are concatenated in deck order, an order-dependence hazard.
    DuplicateShapeGroup,
    /// `O001`: the OSPL plot window excludes every node of the mesh.
    ContourWindowOutsideExtents,
    /// `O002`: the contour interval exceeds the whole field range.
    IntervalExceedsFieldRange,
    /// `O003`: a contour was requested over a stress component the
    /// requested analysis kind never produces (identically zero).
    ComponentNotProduced,
    /// `O004`: an OSPL node is defined by a Type-3 card but referenced by
    /// no Type-4 element.
    UnreferencedPlotNode,
}

impl LintCode {
    /// Every registered code, in registry order.
    pub const ALL: [LintCode; 19] = [
        LintCode::OverlappingSubdivisions,
        LintCode::DisconnectedAssemblage,
        LintCode::DuplicateSubdivisionId,
        LintCode::GridLimitProximity,
        LintCode::UnshapedSubdivision,
        LintCode::TrailingCardsIgnored,
        LintCode::ShapeSegmentSpanMismatch,
        LintCode::ArcSweepExceeds90,
        LintCode::DeadShapeLine,
        LintCode::ShapeLineUnknownSubdivision,
        LintCode::ConflictingPointPosition,
        LintCode::DuplicateShapeGroup,
        LintCode::BandwidthHostileNumbering,
        LintCode::FormatFieldTooNarrowForCoordinateRange,
        LintCode::FormatFieldTooNarrowForCount,
        LintCode::ContourWindowOutsideExtents,
        LintCode::IntervalExceedsFieldRange,
        LintCode::ComponentNotProduced,
        LintCode::UnreferencedPlotNode,
    ];

    /// Codes derived from session state rather than deck text alone;
    /// these cannot appear in the deck-based golden corpus.
    pub const SESSION: [LintCode; 1] = [LintCode::ComponentNotProduced];

    /// The stable text code (e.g. `"D001"`).
    pub fn code(self) -> &'static str {
        match self {
            LintCode::OverlappingSubdivisions => "D001",
            LintCode::DisconnectedAssemblage => "D002",
            LintCode::DuplicateSubdivisionId => "D003",
            LintCode::GridLimitProximity => "D004",
            LintCode::ShapeSegmentSpanMismatch => "S001",
            LintCode::ArcSweepExceeds90 => "S002",
            LintCode::DeadShapeLine => "S003",
            LintCode::ShapeLineUnknownSubdivision => "S004",
            LintCode::BandwidthHostileNumbering => "N001",
            LintCode::FormatFieldTooNarrowForCoordinateRange => "F001",
            LintCode::FormatFieldTooNarrowForCount => "F002",
            LintCode::ContourWindowOutsideExtents => "O001",
            LintCode::IntervalExceedsFieldRange => "O002",
            LintCode::UnshapedSubdivision => "D005",
            LintCode::TrailingCardsIgnored => "D006",
            LintCode::ConflictingPointPosition => "S005",
            LintCode::DuplicateShapeGroup => "S006",
            LintCode::ComponentNotProduced => "O003",
            LintCode::UnreferencedPlotNode => "O004",
        }
    }

    /// Looks a code up by its stable text code (`"D001"`) or kebab-case
    /// name (`"overlapping-subdivisions"`), case-insensitively on the
    /// text code.
    pub fn parse(text: &str) -> Option<LintCode> {
        LintCode::ALL
            .into_iter()
            .find(|c| c.code().eq_ignore_ascii_case(text) || c.name() == text)
    }

    /// The kebab-case name (e.g. `"overlapping-subdivisions"`).
    pub fn name(self) -> &'static str {
        match self {
            LintCode::OverlappingSubdivisions => "overlapping-subdivisions",
            LintCode::DisconnectedAssemblage => "disconnected-assemblage",
            LintCode::DuplicateSubdivisionId => "duplicate-subdivision-id",
            LintCode::GridLimitProximity => "grid-limit-proximity",
            LintCode::ShapeSegmentSpanMismatch => "shape-segment-span-mismatch",
            LintCode::ArcSweepExceeds90 => "arc-sweep-exceeds-90",
            LintCode::DeadShapeLine => "dead-shape-line",
            LintCode::ShapeLineUnknownSubdivision => "shape-line-unknown-subdivision",
            LintCode::BandwidthHostileNumbering => "bandwidth-hostile-numbering",
            LintCode::FormatFieldTooNarrowForCoordinateRange => {
                "format-field-too-narrow-for-coordinate-range"
            }
            LintCode::FormatFieldTooNarrowForCount => "format-field-too-narrow-for-count",
            LintCode::ContourWindowOutsideExtents => "contour-window-outside-extents",
            LintCode::IntervalExceedsFieldRange => "interval-exceeds-field-range",
            LintCode::UnshapedSubdivision => "unshaped-subdivision",
            LintCode::TrailingCardsIgnored => "trailing-cards-ignored",
            LintCode::ConflictingPointPosition => "conflicting-point-position",
            LintCode::DuplicateShapeGroup => "duplicate-shape-group",
            LintCode::ComponentNotProduced => "component-not-produced",
            LintCode::UnreferencedPlotNode => "unreferenced-plot-node",
        }
    }

    /// The severity in force when [`LintConfig`] carries no override.
    ///
    /// A code denies by default exactly when the runtime pipeline would
    /// reject the same deck with a hard error later; advisory conditions
    /// (capacity proximity, dead lines, hostile numbering, coarse
    /// intervals) warn.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::OverlappingSubdivisions
            | LintCode::DisconnectedAssemblage
            | LintCode::DuplicateSubdivisionId
            | LintCode::ShapeSegmentSpanMismatch
            | LintCode::ArcSweepExceeds90
            | LintCode::ShapeLineUnknownSubdivision
            | LintCode::FormatFieldTooNarrowForCoordinateRange
            | LintCode::FormatFieldTooNarrowForCount
            | LintCode::ContourWindowOutsideExtents => Severity::Deny,
            LintCode::GridLimitProximity
            | LintCode::DeadShapeLine
            | LintCode::BandwidthHostileNumbering
            | LintCode::IntervalExceedsFieldRange
            | LintCode::UnshapedSubdivision
            | LintCode::TrailingCardsIgnored
            | LintCode::ConflictingPointPosition
            | LintCode::DuplicateShapeGroup
            | LintCode::ComponentNotProduced
            | LintCode::UnreferencedPlotNode => Severity::Warn,
        }
    }

    /// True when the lint pass can attach a machine-applicable [`Fix`]
    /// for at least one shape of this finding (some codes, like `S002`,
    /// are repairable only in specific sub-cases).
    pub fn fixable(self) -> bool {
        matches!(
            self,
            LintCode::TrailingCardsIgnored
                | LintCode::ArcSweepExceeds90
                | LintCode::DeadShapeLine
                | LintCode::BandwidthHostileNumbering
                | LintCode::FormatFieldTooNarrowForCoordinateRange
                | LintCode::FormatFieldTooNarrowForCount
                | LintCode::ContourWindowOutsideExtents
                | LintCode::IntervalExceedsFieldRange
        )
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// Where in the deck a diagnostic points: a card index and, when they
/// can be pinned down, the one-based data-field ordinal and its
/// one-based inclusive column range on that card. Cards are one byte
/// per column, so the column range doubles as the field's byte range
/// within the 80-column card image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourceSpan {
    /// Zero-based card index in the deck (displayed one-based).
    pub card: Option<usize>,
    /// One-based data-field ordinal on the card.
    pub field: Option<usize>,
    /// One-based inclusive column (= byte) range of the field.
    pub columns: Option<(usize, usize)>,
}

impl SourceSpan {
    /// A span with no provenance (spec-level lints without a deck).
    pub fn none() -> SourceSpan {
        SourceSpan::default()
    }

    /// A span naming a card.
    pub fn card(card: usize) -> SourceSpan {
        SourceSpan {
            card: Some(card),
            field: None,
            columns: None,
        }
    }

    /// A span naming a card and a data field on it.
    pub fn card_field(card: usize, field: usize) -> SourceSpan {
        SourceSpan {
            card: Some(card),
            field: Some(field),
            columns: None,
        }
    }

    /// The same span with the field's column range attached.
    pub fn with_columns(mut self, from: usize, to: usize) -> SourceSpan {
        self.columns = Some((from, to));
        self
    }
}

impl fmt::Display for SourceSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.card, self.field) {
            (Some(card), Some(field)) => write!(f, "card {}, field {field}", card + 1)?,
            (Some(card), None) => write!(f, "card {}", card + 1)?,
            _ => return f.write_str("deck"),
        }
        if let Some((from, to)) = self.columns {
            write!(f, " (cols {from}-{to})")?;
        }
        Ok(())
    }
}

/// One card rewrite of a [`Fix`]. Card indices are zero-based into the
/// deck the diagnostic was produced from; column ranges are one-based
/// inclusive keypunch columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Edit {
    /// Replace columns `from..=to` of one card with `text`,
    /// right-justified and blank-padded ([`cafemio_cards::Card::with_columns`]).
    ReplaceColumns {
        /// Zero-based card index.
        card: usize,
        /// One-based inclusive column range.
        columns: (usize, usize),
        /// Replacement text (right-justified into the span).
        text: String,
    },
    /// Replace one card's whole image.
    ReplaceCard {
        /// Zero-based card index.
        card: usize,
        /// The new card image (at most 80 columns).
        text: String,
    },
    /// Delete one card, shifting later cards up.
    DeleteCard {
        /// Zero-based card index.
        card: usize,
    },
}

impl Edit {
    /// The card this edit touches.
    pub fn card(&self) -> usize {
        match self {
            Edit::ReplaceColumns { card, .. }
            | Edit::ReplaceCard { card, .. }
            | Edit::DeleteCard { card } => *card,
        }
    }

    /// True for card deletions (which invalidate later card indices).
    pub fn deletes(&self) -> bool {
        matches!(self, Edit::DeleteCard { .. })
    }
}

/// A structured repair attached to a diagnostic: a human-readable label
/// plus zero or more span-anchored card edits. A fix with no edits is
/// advice only; a fix with edits is machine-applicable through
/// [`crate::apply_fixes`].
#[derive(Debug, Clone, PartialEq)]
pub struct Fix {
    /// One-line description of the repair (shown as `help:` text).
    pub label: String,
    /// The card rewrites realizing the repair; empty for advice.
    pub edits: Vec<Edit>,
}

impl Fix {
    /// An advice-only fix (no machine-applicable edits).
    pub fn advice(label: impl Into<String>) -> Fix {
        Fix {
            label: label.into(),
            edits: Vec::new(),
        }
    }

    /// A machine-applicable fix.
    pub fn edits(label: impl Into<String>, edits: Vec<Edit>) -> Fix {
        Fix {
            label: label.into(),
            edits,
        }
    }

    /// True when the fix carries edits a machine can apply.
    pub fn is_machine_applicable(&self) -> bool {
        !self.edits.is_empty()
    }
}

/// One finding of the lint pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The registry code.
    pub code: LintCode,
    /// The effective severity (after [`LintConfig`] overrides).
    pub severity: Severity,
    /// Where the finding points.
    pub span: SourceSpan,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when a concrete repair is known.
    pub fix: Option<Fix>,
}

impl Diagnostic {
    /// True when the diagnostic carries a machine-applicable fix.
    pub fn is_machine_fixable(&self) -> bool {
        self.fix
            .as_ref()
            .is_some_and(Fix::is_machine_applicable)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {} at {}: {}",
            self.severity,
            self.code.code(),
            self.code.name(),
            self.span,
            self.message
        )?;
        if let Some(fix) = &self.fix {
            write!(f, " (help: {})", fix.label)?;
        }
        Ok(())
    }
}

/// Per-code severity configuration.
///
/// # Examples
///
/// ```
/// use cafemio_lint::{LintCode, LintConfig, Severity};
/// let config = LintConfig::new().with(LintCode::DeadShapeLine, Severity::Deny);
/// assert_eq!(config.severity(LintCode::DeadShapeLine), Severity::Deny);
/// assert_eq!(
///     config.severity(LintCode::OverlappingSubdivisions),
///     LintCode::OverlappingSubdivisions.default_severity()
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintConfig {
    overrides: BTreeMap<LintCode, Severity>,
}

impl LintConfig {
    /// Default severities for every code.
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Overrides one code's severity (builder style).
    pub fn with(mut self, code: LintCode, severity: Severity) -> LintConfig {
        self.overrides.insert(code, severity);
        self
    }

    /// Suppresses one code entirely.
    pub fn allow(self, code: LintCode) -> LintConfig {
        self.with(code, Severity::Allow)
    }

    /// Escalates every warning to a denial (the `-D warnings` of decks).
    pub fn deny_warnings(mut self) -> LintConfig {
        for code in LintCode::ALL {
            if self.severity(code) == Severity::Warn {
                self.overrides.insert(code, Severity::Deny);
            }
        }
        self
    }

    /// The effective severity of a code.
    pub fn severity(&self, code: LintCode) -> Severity {
        self.overrides
            .get(&code)
            .copied()
            .unwrap_or_else(|| code.default_severity())
    }
}

/// The outcome of a lint pass: every non-suppressed diagnostic, in deck
/// order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty (clean) report.
    pub fn new() -> LintReport {
        LintReport::default()
    }

    /// Records a diagnostic unless its severity is [`Severity::Allow`].
    pub fn push(&mut self, diagnostic: Diagnostic) {
        if diagnostic.severity != Severity::Allow {
            self.diagnostics.push(diagnostic);
        }
    }

    /// All recorded diagnostics.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The denials only.
    pub fn denied(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
    }

    /// Number of denials.
    pub fn denied_count(&self) -> usize {
        self.denied().count()
    }

    /// Number of warnings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// True when nothing was reported at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Merges another report's diagnostics into this one.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// The report as instrumentation counters (`lint.diagnostics`,
    /// `lint.denied`, `lint.warnings`, plus one `lint.<CODE>` counter per
    /// code that fired) — the JSON-emission layer shared with the rest of
    /// the workspace.
    pub fn to_perf_report(&self) -> PerfReport {
        let mut per_code: BTreeMap<&'static str, u64> = BTreeMap::new();
        for d in &self.diagnostics {
            *per_code.entry(d.code.code()).or_insert(0) += 1;
        }
        let mut counters = vec![
            CounterRecord {
                name: "lint.diagnostics".to_owned(),
                value: self.diagnostics.len() as u64,
            },
            CounterRecord {
                name: "lint.denied".to_owned(),
                value: self.denied_count() as u64,
            },
            CounterRecord {
                name: "lint.warnings".to_owned(),
                value: self.warning_count() as u64,
            },
        ];
        for (code, count) in per_code {
            counters.push(CounterRecord {
                name: format!("lint.{code}"),
                value: count,
            });
        }
        PerfReport {
            spans: Vec::new(),
            counters,
        }
    }

    /// The counter view of the report, serialized as JSON.
    pub fn to_json(&self) -> String {
        self.to_perf_report().to_json()
    }
}

/// The error a denying lint run raises: the denials themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct LintError {
    /// Every denial of the run, in deck order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintError {
    /// Builds the error from a report's denials; `None` when the report
    /// denies nothing.
    pub fn from_report(report: &LintReport) -> Option<LintError> {
        let diagnostics: Vec<Diagnostic> = report.denied().cloned().collect();
        if diagnostics.is_empty() {
            None
        } else {
            Some(LintError { diagnostics })
        }
    }

    /// How many of the denials carry a machine-applicable fix — the
    /// number `decklint --fix` or `POST /lint` would repair.
    pub fn machine_fixable_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.is_machine_fixable())
            .count()
    }
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} lint denial(s)", self.diagnostics.len())?;
        let fixable = self.machine_fixable_count();
        if fixable > 0 {
            write!(f, " ({fixable} machine-fixable)")?;
        }
        if let Some(first) = self.diagnostics.first() {
            write!(f, ", first: {first}")?;
        }
        Ok(())
    }
}

impl std::error::Error for LintError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut codes: Vec<&str> = LintCode::ALL.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), LintCode::ALL.len(), "duplicate code text");
        assert_eq!(LintCode::OverlappingSubdivisions.code(), "D001");
        assert_eq!(LintCode::ContourWindowOutsideExtents.code(), "O001");
        assert_eq!(LintCode::UnshapedSubdivision.code(), "D005");
        assert_eq!(LintCode::ComponentNotProduced.code(), "O003");
    }

    #[test]
    fn codes_parse_by_text_code_and_name() {
        assert_eq!(LintCode::parse("O002"), Some(LintCode::IntervalExceedsFieldRange));
        assert_eq!(LintCode::parse("o002"), Some(LintCode::IntervalExceedsFieldRange));
        assert_eq!(
            LintCode::parse("dead-shape-line"),
            Some(LintCode::DeadShapeLine)
        );
        assert_eq!(LintCode::parse("Z999"), None);
    }

    #[test]
    fn session_codes_are_registered() {
        for code in LintCode::SESSION {
            assert!(LintCode::ALL.contains(&code), "{code}");
        }
    }

    #[test]
    fn config_overrides_and_deny_warnings() {
        let config = LintConfig::new().allow(LintCode::GridLimitProximity);
        assert_eq!(config.severity(LintCode::GridLimitProximity), Severity::Allow);
        let strict = LintConfig::new().deny_warnings();
        assert_eq!(strict.severity(LintCode::DeadShapeLine), Severity::Deny);
        assert_eq!(
            strict.severity(LintCode::OverlappingSubdivisions),
            Severity::Deny
        );
    }

    #[test]
    fn allowed_diagnostics_are_dropped() {
        let mut report = LintReport::new();
        report.push(Diagnostic {
            code: LintCode::DeadShapeLine,
            severity: Severity::Allow,
            span: SourceSpan::none(),
            message: "suppressed".into(),
            fix: None,
        });
        assert!(report.is_clean());
    }

    #[test]
    fn report_counters_round_trip() {
        let mut report = LintReport::new();
        report.push(Diagnostic {
            code: LintCode::OverlappingSubdivisions,
            severity: Severity::Deny,
            span: SourceSpan::card(4),
            message: "overlap".into(),
            fix: None,
        });
        report.push(Diagnostic {
            code: LintCode::DeadShapeLine,
            severity: Severity::Warn,
            span: SourceSpan::card_field(6, 2),
            message: "dead".into(),
            fix: Some(Fix::advice("remove it")),
        });
        let perf = report.to_perf_report();
        assert_eq!(perf.counter("lint.diagnostics"), Some(2));
        assert_eq!(perf.counter("lint.denied"), Some(1));
        assert_eq!(perf.counter("lint.warnings"), Some(1));
        assert_eq!(perf.counter("lint.D001"), Some(1));
        assert_eq!(perf.counter("lint.S003"), Some(1));
        let round = PerfReport::from_json(&report.to_json()).unwrap();
        assert_eq!(round.counter("lint.D001"), Some(1));
    }

    #[test]
    fn display_formats() {
        let d = Diagnostic {
            code: LintCode::ArcSweepExceeds90,
            severity: Severity::Deny,
            span: SourceSpan::card_field(5, 9),
            message: "arc subtends 180 degrees".into(),
            fix: Some(Fix::advice("split the arc")),
        };
        assert_eq!(
            d.to_string(),
            "deny[S002] arc-sweep-exceeds-90 at card 6, field 9: arc subtends 180 \
             degrees (help: split the arc)"
        );
        let err = LintError {
            diagnostics: vec![d],
        };
        assert!(err.to_string().starts_with("1 lint denial(s), first: deny[S002]"));
    }

    #[test]
    fn spans_carry_and_display_column_ranges() {
        let span = SourceSpan::card_field(0, 7).with_columns(51, 60);
        assert_eq!(span.columns, Some((51, 60)));
        assert_eq!(span.to_string(), "card 1, field 7 (cols 51-60)");
        assert_eq!(SourceSpan::card(2).to_string(), "card 3");
    }

    #[test]
    fn machine_fixable_denials_are_counted_in_the_error() {
        let advice = Diagnostic {
            code: LintCode::ShapeSegmentSpanMismatch,
            severity: Severity::Deny,
            span: SourceSpan::card(4),
            message: "span mismatch".into(),
            fix: Some(Fix::advice("re-point the line")),
        };
        let machine = Diagnostic {
            code: LintCode::IntervalExceedsFieldRange,
            severity: Severity::Deny,
            span: SourceSpan::card_field(0, 7),
            message: "interval too wide".into(),
            fix: Some(Fix::edits(
                "zero DELTA for the automatic interval",
                vec![Edit::ReplaceColumns {
                    card: 0,
                    columns: (51, 60),
                    text: "0.0000".into(),
                }],
            )),
        };
        assert!(!advice.is_machine_fixable());
        assert!(machine.is_machine_fixable());
        let err = LintError {
            diagnostics: vec![advice, machine],
        };
        assert_eq!(err.machine_fixable_count(), 1);
        assert!(
            err.to_string().starts_with("2 lint denial(s) (1 machine-fixable)"),
            "{err}"
        );
    }
}

//! Triangle geometry and the quality measures used by element reforming.

use crate::{BoundingBox, Point};

/// Winding order of a triangle's vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Counter-clockwise (positive signed area).
    CounterClockwise,
    /// Clockwise (negative signed area).
    Clockwise,
    /// Collinear vertices (zero area within tolerance).
    Degenerate,
}

/// A triangle given by its three vertices.
///
/// IDLZ's elements "are reformed … where necessary" when they have
/// "needle-like corners"; the decision is driven by the minimum interior
/// angle computed here.
///
/// # Examples
///
/// ```
/// use cafemio_geom::{Point, Triangle};
/// let t = Triangle::new(
///     Point::new(0.0, 0.0),
///     Point::new(2.0, 0.0),
///     Point::new(1.0, 3.0_f64.sqrt()),
/// );
/// // Equilateral: all angles 60 degrees.
/// assert!((t.min_angle().to_degrees() - 60.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// The three vertices.
    pub vertices: [Point; 3],
}

impl Triangle {
    /// Creates a triangle from three vertices.
    pub const fn new(a: Point, b: Point, c: Point) -> Self {
        Self {
            vertices: [a, b, c],
        }
    }

    /// Signed area: positive for counter-clockwise vertex order.
    pub fn signed_area(&self) -> f64 {
        let [a, b, c] = self.vertices;
        0.5 * (b - a).cross(c - a)
    }

    /// Absolute area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Winding order, with collinearity decided against the triangle's own
    /// scale so large and small meshes behave alike.
    pub fn orientation(&self) -> Orientation {
        let [a, b, c] = self.vertices;
        let scale = (b - a).norm().max((c - a).norm()).max((c - b).norm());
        let area2 = (b - a).cross(c - a);
        if area2.abs() <= 1e-14 * scale * scale {
            Orientation::Degenerate
        } else if area2 > 0.0 {
            Orientation::CounterClockwise
        } else {
            Orientation::Clockwise
        }
    }

    /// True when the vertex order is counter-clockwise.
    pub fn is_ccw(&self) -> bool {
        self.orientation() == Orientation::CounterClockwise
    }

    /// Centroid of the triangle.
    pub fn centroid(&self) -> Point {
        let [a, b, c] = self.vertices;
        Point::new((a.x + b.x + c.x) / 3.0, (a.y + b.y + c.y) / 3.0)
    }

    /// Lengths of the three edges, ordered opposite to each vertex
    /// (`edge[i]` faces `vertices[i]`).
    pub fn edge_lengths(&self) -> [f64; 3] {
        let [a, b, c] = self.vertices;
        [b.distance_to(c), c.distance_to(a), a.distance_to(b)]
    }

    /// The three interior angles in radians, `angles[i]` at `vertices[i]`.
    ///
    /// Degenerate triangles yield zero for the collapsed corners.
    pub fn angles(&self) -> [f64; 3] {
        let [a, b, c] = self.vertices;
        [
            corner_angle(a, b, c),
            corner_angle(b, c, a),
            corner_angle(c, a, b),
        ]
    }

    /// Smallest interior angle in radians — IDLZ's "needle" criterion.
    pub fn min_angle(&self) -> f64 {
        let ang = self.angles();
        ang[0].min(ang[1]).min(ang[2])
    }

    /// Largest interior angle in radians.
    pub fn max_angle(&self) -> f64 {
        let ang = self.angles();
        ang[0].max(ang[1]).max(ang[2])
    }

    /// Ratio of longest to shortest edge (1 for equilateral).
    pub fn aspect_ratio(&self) -> f64 {
        let e = self.edge_lengths();
        let longest = e[0].max(e[1]).max(e[2]);
        let shortest = e[0].min(e[1]).min(e[2]);
        if shortest <= f64::EPSILON {
            f64::INFINITY
        } else {
            longest / shortest
        }
    }

    /// True when `p` lies inside or on the triangle (orientation
    /// independent).
    pub fn contains(&self, p: Point) -> bool {
        let [a, b, c] = self.vertices;
        let d1 = (b - a).cross(p - a);
        let d2 = (c - b).cross(p - b);
        let d3 = (a - c).cross(p - c);
        let has_neg = d1 < 0.0 || d2 < 0.0 || d3 < 0.0;
        let has_pos = d1 > 0.0 || d2 > 0.0 || d3 > 0.0;
        !(has_neg && has_pos)
    }

    /// True when the triangle and the box have any point in common —
    /// touching at an edge or a corner counts. Separating-axis test over
    /// the box axes and the three edge normals, so partial overlaps with
    /// no vertex of either shape inside the other are still detected
    /// (the O001 window lint needs exactly that case).
    pub fn intersects_box(&self, bbox: &BoundingBox) -> bool {
        if bbox.is_empty() {
            return false;
        }
        let (min, max) = (bbox.min(), bbox.max());
        let [a, b, c] = self.vertices;
        // Box axes: project the triangle.
        let (tx_lo, tx_hi) = (a.x.min(b.x).min(c.x), a.x.max(b.x).max(c.x));
        if tx_hi < min.x || tx_lo > max.x {
            return false;
        }
        let (ty_lo, ty_hi) = (a.y.min(b.y).min(c.y), a.y.max(b.y).max(c.y));
        if ty_hi < min.y || ty_lo > max.y {
            return false;
        }
        // Edge-normal axes: project the box corners.
        let corners = [
            min,
            Point::new(max.x, min.y),
            max,
            Point::new(min.x, max.y),
        ];
        for (p, q) in [(a, b), (b, c), (c, a)] {
            // Outward-ish normal of edge p→q; direction does not matter
            // for an interval-overlap test.
            let nx = q.y - p.y;
            let ny = p.x - q.x;
            let project = |pt: Point| nx * pt.x + ny * pt.y;
            let mut t_lo = f64::INFINITY;
            let mut t_hi = f64::NEG_INFINITY;
            for v in self.vertices {
                let s = project(v);
                t_lo = t_lo.min(s);
                t_hi = t_hi.max(s);
            }
            let mut b_lo = f64::INFINITY;
            let mut b_hi = f64::NEG_INFINITY;
            for v in corners {
                let s = project(v);
                b_lo = b_lo.min(s);
                b_hi = b_hi.max(s);
            }
            if t_hi < b_lo || t_lo > b_hi {
                return false;
            }
        }
        true
    }

    /// Barycentric coordinates of `p` with respect to the triangle, or
    /// `None` for a degenerate triangle. Useful for interpolating nodal
    /// values at arbitrary points (OSPL's per-element view of the field).
    pub fn barycentric(&self, p: Point) -> Option<[f64; 3]> {
        let [a, b, c] = self.vertices;
        let denom = (b - a).cross(c - a);
        if denom.abs() <= f64::EPSILON {
            return None;
        }
        let w_a = (b - p).cross(c - p) / denom;
        let w_b = (c - p).cross(a - p) / denom;
        let w_c = 1.0 - w_a - w_b;
        Some([w_a, w_b, w_c])
    }
}

/// Interior angle at `at` formed by rays to `p` and `q`.
fn corner_angle(at: Point, p: Point, q: Point) -> f64 {
    let u = p - at;
    let v = q - at;
    let nu = u.norm();
    let nv = v.norm();
    if nu <= f64::EPSILON || nv <= f64::EPSILON {
        return 0.0;
    }
    (u.dot(v) / (nu * nv)).clamp(-1.0, 1.0).acos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn right_triangle() -> Triangle {
        Triangle::new(
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 3.0),
        )
    }

    #[test]
    fn area_of_right_triangle() {
        assert!((right_triangle().area() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn signed_area_flips_with_orientation() {
        let t = right_triangle();
        let r = Triangle::new(t.vertices[0], t.vertices[2], t.vertices[1]);
        assert!((t.signed_area() + r.signed_area()).abs() < 1e-12);
        assert!(t.is_ccw());
        assert!(!r.is_ccw());
    }

    #[test]
    fn angles_sum_to_pi() {
        let t = Triangle::new(
            Point::new(0.3, 0.1),
            Point::new(5.2, 0.7),
            Point::new(2.0, 4.0),
        );
        let sum: f64 = t.angles().iter().sum();
        assert!((sum - PI).abs() < 1e-12);
    }

    #[test]
    fn needle_triangle_has_small_min_angle() {
        let needle = Triangle::new(
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 0.05),
        );
        assert!(needle.min_angle().to_degrees() < 1.0);
        assert!(needle.aspect_ratio() > 1.9);
    }

    #[test]
    fn degenerate_orientation_detected() {
        let t = Triangle::new(
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        );
        assert_eq!(t.orientation(), Orientation::Degenerate);
    }

    #[test]
    fn orientation_is_scale_invariant() {
        // A tiny but healthy triangle must not be classified degenerate.
        let t = Triangle::new(
            Point::new(0.0, 0.0),
            Point::new(1e-6, 0.0),
            Point::new(0.0, 1e-6),
        );
        assert_eq!(t.orientation(), Orientation::CounterClockwise);
    }

    #[test]
    fn contains_centroid_and_excludes_outside() {
        let t = right_triangle();
        assert!(t.contains(t.centroid()));
        assert!(t.contains(Point::new(0.0, 0.0))); // vertex counts as inside
        assert!(!t.contains(Point::new(4.0, 3.0)));
    }

    #[test]
    fn barycentric_reconstructs_point() {
        let t = right_triangle();
        let p = Point::new(1.0, 1.0);
        let w = t.barycentric(p).unwrap();
        assert!((w[0] + w[1] + w[2] - 1.0).abs() < 1e-12);
        let [a, b, c] = t.vertices;
        let back = Point::new(
            w[0] * a.x + w[1] * b.x + w[2] * c.x,
            w[0] * a.y + w[1] * b.y + w[2] * c.y,
        );
        assert!(back.approx_eq(p, 1e-12));
    }

    #[test]
    fn barycentric_of_degenerate_is_none() {
        let t = Triangle::new(Point::ORIGIN, Point::new(1.0, 0.0), Point::new(2.0, 0.0));
        assert!(t.barycentric(Point::new(0.5, 0.0)).is_none());
    }

    #[test]
    fn intersects_box_covers_partial_overlaps() {
        let t = right_triangle(); // (0,0) (4,0) (0,3)
        let boxed = |x0: f64, y0: f64, x1: f64, y1: f64| {
            BoundingBox::new(Point::new(x0, y0), Point::new(x1, y1))
        };
        // Box fully inside the triangle.
        assert!(t.intersects_box(&boxed(0.5, 0.5, 1.0, 1.0)));
        // Triangle fully inside the box.
        assert!(t.intersects_box(&boxed(-1.0, -1.0, 5.0, 4.0)));
        // Partial overlap with no contained vertices either way: a thin
        // horizontal band crossing the middle of the triangle.
        assert!(t.intersects_box(&boxed(-1.0, 1.0, 5.0, 1.2)));
        // Touching the hypotenuse from outside at a single point counts.
        assert!(t.intersects_box(&boxed(2.0, 1.5, 4.0, 3.5)));
        // Outside the bounding box entirely.
        assert!(!t.intersects_box(&boxed(5.0, 5.0, 6.0, 6.0)));
        // Inside the triangle's bounding box but beyond the hypotenuse —
        // only the edge-normal axis separates this one.
        assert!(!t.intersects_box(&boxed(3.0, 2.0, 3.9, 2.9)));
        // Empty boxes never intersect.
        assert!(!t.intersects_box(&BoundingBox::empty()));
    }

    #[test]
    fn aspect_ratio_of_equilateral_is_one() {
        let t = Triangle::new(
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 0.75_f64.sqrt()),
        );
        assert!((t.aspect_ratio() - 1.0).abs() < 1e-12);
    }
}

//! Linear interpolation helpers.
//!
//! Both shaping (interior node placement between two located sides, report
//! section "Node Locations") and isogram extraction (contour end points on
//! element edges, Figure 12) are defined by the paper in terms of linear
//! interpolation; these helpers are the single shared implementation.

use crate::Point;

/// Linear interpolation between two scalars: `a` at `t = 0`, `b` at `t = 1`.
///
/// # Examples
///
/// ```
/// assert_eq!(cafemio_geom::lerp(10.0, 30.0, 0.25), 15.0);
/// ```
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Inverse of [`lerp`]: the parameter at which the line from `a` to `b`
/// takes the value `v`.
///
/// Returns `None` when `a == b` (the value is constant along the edge, so
/// no unique parameter exists). This is exactly the degenerate case OSPL
/// must skip when a contour level coincides with a flat element edge.
///
/// # Examples
///
/// ```
/// assert_eq!(cafemio_geom::inverse_lerp(10.0, 30.0, 15.0), Some(0.25));
/// assert_eq!(cafemio_geom::inverse_lerp(5.0, 5.0, 5.0), None);
/// ```
pub fn inverse_lerp(a: f64, b: f64, v: f64) -> Option<f64> {
    if a == b {
        None
    } else {
        Some((v - a) / (b - a))
    }
}

/// Linear interpolation between two points.
///
/// # Examples
///
/// ```
/// use cafemio_geom::{lerp_point, Point};
/// let m = lerp_point(Point::new(0.0, 0.0), Point::new(2.0, 4.0), 0.5);
/// assert_eq!(m, Point::new(1.0, 2.0));
/// ```
pub fn lerp_point(a: Point, b: Point, t: f64) -> Point {
    Point::new(lerp(a.x, b.x, t), lerp(a.y, b.y, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(-3.0, 7.0, 0.0), -3.0);
        assert_eq!(lerp(-3.0, 7.0, 1.0), 7.0);
    }

    #[test]
    fn lerp_extrapolates() {
        assert_eq!(lerp(0.0, 10.0, 1.5), 15.0);
        assert_eq!(lerp(0.0, 10.0, -0.5), -5.0);
    }

    #[test]
    fn inverse_lerp_round_trip() {
        let (a, b) = (2.0, 9.0);
        for &t in &[0.0, 0.125, 0.5, 0.875, 1.0] {
            let v = lerp(a, b, t);
            let back = inverse_lerp(a, b, v).unwrap();
            assert!((back - t).abs() < 1e-14);
        }
    }

    #[test]
    fn inverse_lerp_decreasing_edge() {
        // Values may decrease along an edge; the parameter must still be in
        // [0, 1] for a bounded value.
        let t = inverse_lerp(30.0, 10.0, 15.0).unwrap();
        assert!((t - 0.75).abs() < 1e-14);
    }

    #[test]
    fn lerp_point_midpoint_matches_point_midpoint() {
        let a = Point::new(1.0, -1.0);
        let b = Point::new(5.0, 3.0);
        assert_eq!(lerp_point(a, b, 0.5), a.midpoint(b));
    }
}

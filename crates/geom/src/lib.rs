//! # cafemio-geom
//!
//! Plane-geometry substrate for the `cafemio` workspace.
//!
//! Everything in the IDLZ/OSPL reproduction happens in two dimensions: the
//! integer subdivision grid, the shaped cross-section, the plotter frame.
//! This crate supplies the small, well-tested vocabulary those layers share:
//!
//! * [`Point`] / [`Vector`] — double-precision plane coordinates,
//! * [`Segment`] — straight boundary pieces,
//! * [`Arc`] — circular boundary pieces (the paper restricts arcs to a
//!   subtended angle of at most 90°),
//! * [`Triangle`] — element geometry with the quality metrics IDLZ's
//!   reforming pass optimizes,
//! * [`BoundingBox`] — plot extents and zoom windows,
//! * linear interpolation helpers used by both shaping and isogram
//!   extraction.
//!
//! # Examples
//!
//! ```
//! use cafemio_geom::{Point, Triangle};
//!
//! let tri = Triangle::new(
//!     Point::new(0.0, 0.0),
//!     Point::new(1.0, 0.0),
//!     Point::new(0.0, 1.0),
//! );
//! assert!((tri.area() - 0.5).abs() < 1e-12);
//! assert!(tri.is_ccw());
//! ```
#![forbid(unsafe_code)]

mod arc;
mod bbox;
mod bvh;
mod interp;
mod point;
mod segment;
mod triangle;

pub use arc::{Arc, ArcError};
pub use bbox::BoundingBox;
pub use bvh::Bvh;
pub use interp::{inverse_lerp, lerp, lerp_point};
pub use point::{Point, Vector};
pub use segment::Segment;
pub use triangle::{Orientation, Triangle};

/// Comparison tolerance used throughout the workspace for geometric
/// coincidence tests (distinct from solver tolerances, which are stricter).
pub const GEOM_EPS: f64 = 1e-9;

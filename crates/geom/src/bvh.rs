//! A bounding-volume hierarchy over axis-aligned boxes.
//!
//! The contour hot path (isogram tracing, the audit's endpoint-on-edge
//! check, the O001 window lint, label overlap suppression) used to be a
//! family of point-against-everything scans. This flat, std-only BVH
//! turns each of them into an `O(log n + k)` query while staying
//! **bit-identical** to the scans it replaces: overlap and stabbing
//! queries return the *exact* box-match set in ascending item order,
//! and the caller still re-applies whatever finer predicate the
//! brute-force loop used on those candidates.
//!
//! Determinism discipline:
//!
//! * construction is a median split on the widest centroid axis, with
//!   ties broken by item index (`total_cmp`, then index) — the tree
//!   shape is a pure function of the input boxes;
//! * [`overlapping`](Bvh::overlapping) and [`stabbing`](Bvh::stabbing)
//!   sort their results ascending, so callers iterate candidates in the
//!   same order the brute-force scan visited them;
//! * [`nearest_by`](Bvh::nearest_by) prunes with a slack factor so a
//!   rounded box lower bound can never discard the true minimum, and
//!   resolves distance ties toward the lower item index.
//!
//! Items with an empty (or non-finite) bounding box are excluded from
//! the tree: they can never satisfy an overlap query, and their
//! distances are NaN, which the scans ignored as well.
//!
//! # Examples
//!
//! ```
//! use cafemio_geom::{BoundingBox, Bvh, Point};
//! let boxes: Vec<BoundingBox> = (0..10)
//!     .map(|i| {
//!         let x = i as f64;
//!         BoundingBox::new(Point::new(x, 0.0), Point::new(x + 1.5, 1.0))
//!     })
//!     .collect();
//! let bvh = Bvh::build(&boxes);
//! // Boxes 3..=5 span x in [3, 6.5] and overlap the query window.
//! let query = BoundingBox::new(Point::new(3.6, 0.2), Point::new(5.2, 0.8));
//! assert_eq!(bvh.overlapping(&query), vec![3, 4, 5]);
//! ```

use crate::{BoundingBox, Point};

/// Items per leaf; small enough that leaves stay cache-friendly, large
/// enough that the tree stays shallow.
const LEAF_SIZE: usize = 8;

/// Relative slack applied when pruning nearest-neighbour subtrees: a box
/// lower bound within a few ulps of the current best must not prune, or
/// rounding could hide the true minimum and break bit-parity with the
/// brute-force fold. Under-pruning only costs a few extra node visits.
const NEAREST_PRUNE_SLACK: f64 = 1.0 + 1e-9;

#[derive(Debug, Clone)]
enum NodeKind {
    /// `start..start + count` into the item order.
    Leaf { start: usize, count: usize },
    /// Indices of the two children in the node array.
    Internal { left: usize, right: usize },
}

#[derive(Debug, Clone)]
struct Node {
    bbox: BoundingBox,
    kind: NodeKind,
}

/// A static bounding-box hierarchy over the boxes passed to
/// [`build`](Bvh::build). Item indices returned by queries refer to
/// positions in that input slice.
#[derive(Debug, Clone)]
pub struct Bvh {
    nodes: Vec<Node>,
    /// Item indices, partitioned so each leaf owns a contiguous,
    /// ascending run.
    order: Vec<usize>,
    /// Copy of the input boxes, so leaves can filter candidates exactly
    /// instead of reporting the whole leaf.
    boxes: Vec<BoundingBox>,
}

impl Bvh {
    /// Builds a hierarchy over `boxes`. Items whose box is empty are
    /// excluded from every query (see the module docs).
    pub fn build(boxes: &[BoundingBox]) -> Bvh {
        let mut order: Vec<usize> = (0..boxes.len()).filter(|&i| !boxes[i].is_empty()).collect();
        let mut nodes = Vec::new();
        if !order.is_empty() {
            let n = order.len();
            let centroids: Vec<Point> = boxes
                .iter()
                .map(|b| if b.is_empty() { Point::ORIGIN } else { b.center() })
                .collect();
            build_node(&mut nodes, boxes, &centroids, &mut order, 0, n);
        }
        Bvh {
            nodes,
            order,
            boxes: boxes.to_vec(),
        }
    }

    /// Number of boxes the hierarchy was built over.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// True when built over no boxes.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// The box enclosing every (non-empty) item, or an empty box.
    pub fn bounding_box(&self) -> BoundingBox {
        self.nodes
            .first()
            .map(|root| root.bbox)
            .unwrap_or_default()
    }

    /// Indices of the items whose box overlaps `query` (sharing an edge
    /// counts), in ascending order — the order the brute-force scan
    /// visited them.
    pub fn overlapping(&self, query: &BoundingBox) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_overlapping(query, |i| out.push(i));
        out.sort_unstable();
        out
    }

    /// Calls `f` for every item whose box overlaps `query`, in tree
    /// traversal order (NOT ascending item order — use
    /// [`overlapping`](Self::overlapping) when order matters).
    pub fn for_each_overlapping(&self, query: &BoundingBox, mut f: impl FnMut(usize)) {
        if self.nodes.is_empty() || query.is_empty() {
            return;
        }
        let mut stack = vec![0usize];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            if !node.bbox.intersects(query) {
                continue;
            }
            match node.kind {
                NodeKind::Leaf { start, count } => {
                    for &item in &self.order[start..start + count] {
                        if self.boxes[item].intersects(query) {
                            f(item);
                        }
                    }
                }
                NodeKind::Internal { left, right } => {
                    stack.push(right);
                    stack.push(left);
                }
            }
        }
    }

    /// Indices of the items whose box contains `p` (boundary inclusive),
    /// in ascending order.
    pub fn stabbing(&self, p: Point) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_stabbing(p, |i| out.push(i));
        out.sort_unstable();
        out
    }

    /// Calls `f` for every item whose box contains `p`, in tree
    /// traversal order.
    pub fn for_each_stabbing(&self, p: Point, mut f: impl FnMut(usize)) {
        if self.nodes.is_empty() {
            return;
        }
        let mut stack = vec![0usize];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            if !node.bbox.contains(p) {
                continue;
            }
            match node.kind {
                NodeKind::Leaf { start, count } => {
                    for &item in &self.order[start..start + count] {
                        if self.boxes[item].contains(p) {
                            f(item);
                        }
                    }
                }
                NodeKind::Internal { left, right } => {
                    stack.push(right);
                    stack.push(left);
                }
            }
        }
    }

    /// The item minimizing `distance(item)` from `p`, with the exact
    /// distance — branch-and-bound over the box lower bounds. The
    /// distance closure must be bounded below by the Euclidean distance
    /// from `p` to the item's box (true for any geometry inside the
    /// box). Ties resolve to the lower item index; items whose distance
    /// is NaN are ignored, like `f64::min` ignores them in a fold.
    pub fn nearest_by(&self, p: Point, distance: impl Fn(usize) -> f64) -> Option<(usize, f64)> {
        if self.nodes.is_empty() {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        let mut stack = vec![0usize];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            if let Some((_, best_d)) = best {
                let bound_sq = distance_sq_to_box(p, &node.bbox);
                // NaN bound compares false and therefore never prunes.
                if bound_sq > best_d * best_d * NEAREST_PRUNE_SLACK {
                    continue;
                }
            }
            match node.kind {
                NodeKind::Leaf { start, count } => {
                    for &item in &self.order[start..start + count] {
                        let d = distance(item);
                        let better = match best {
                            None => !d.is_nan(),
                            Some((best_i, best_d)) => {
                                d < best_d || (d == best_d && item < best_i)
                            }
                        };
                        if better {
                            best = Some((item, d));
                        }
                    }
                }
                NodeKind::Internal { left, right } => {
                    // Visit the nearer child first so the bound tightens
                    // early; push the farther one to revisit later.
                    let dl = distance_sq_to_box(p, &self.nodes[left].bbox);
                    let dr = distance_sq_to_box(p, &self.nodes[right].bbox);
                    if dl <= dr {
                        stack.push(right);
                        stack.push(left);
                    } else {
                        stack.push(left);
                        stack.push(right);
                    }
                }
            }
        }
        best
    }
}

/// Squared Euclidean distance from `p` to the nearest point of `bbox`
/// (zero inside). NaN for an empty box — callers treat NaN bounds as
/// "do not prune".
fn distance_sq_to_box(p: Point, bbox: &BoundingBox) -> f64 {
    if bbox.is_empty() {
        return f64::NAN;
    }
    let (min, max) = (bbox.min(), bbox.max());
    let dx = (min.x - p.x).max(0.0).max(p.x - max.x);
    let dy = (min.y - p.y).max(0.0).max(p.y - max.y);
    dx * dx + dy * dy
}

/// Recursively builds the subtree over `order[start..start + count]`
/// (count >= 1) and returns its node index. Children follow their parent
/// in the node array.
fn build_node(
    nodes: &mut Vec<Node>,
    boxes: &[BoundingBox],
    centroids: &[Point],
    order: &mut [usize],
    start: usize,
    count: usize,
) -> usize {
    let slot = nodes.len();
    let mut bbox = BoundingBox::empty();
    for &i in &order[start..start + count] {
        bbox.expand_box(&boxes[i]);
    }
    // Placeholder; patched below once the children exist.
    nodes.push(Node {
        bbox,
        kind: NodeKind::Leaf { start, count },
    });
    if count <= LEAF_SIZE {
        // Ascending order inside the leaf keeps traversal deterministic
        // regardless of how the splits shuffled the slice.
        order[start..start + count].sort_unstable();
        return slot;
    }
    // Median split on the widest centroid axis; total_cmp plus the index
    // tiebreak makes the partition a pure function of the input.
    let mut cb = BoundingBox::empty();
    for &i in &order[start..start + count] {
        cb.expand(centroids[i]);
    }
    let split_x = cb.width() >= cb.height();
    order[start..start + count].sort_unstable_by(|&a, &b| {
        let (ka, kb) = if split_x {
            (centroids[a].x, centroids[b].x)
        } else {
            (centroids[a].y, centroids[b].y)
        };
        ka.total_cmp(&kb).then(a.cmp(&b))
    });
    let half = count / 2;
    let left = build_node(nodes, boxes, centroids, order, start, half);
    let right = build_node(nodes, boxes, centroids, order, start + half, count - half);
    nodes[slot].kind = NodeKind::Internal { left, right };
    slot
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — the workspace's dependency-free test RNG.
    struct Rng(u64);

    impl Rng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
            let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            lo + unit * (hi - lo)
        }
    }

    fn random_boxes(rng: &mut Rng, n: usize) -> Vec<BoundingBox> {
        (0..n)
            .map(|_| {
                let x = rng.f64_in(-10.0, 10.0);
                let y = rng.f64_in(-10.0, 10.0);
                let w = rng.f64_in(0.0, 3.0);
                let h = rng.f64_in(0.0, 3.0);
                BoundingBox::new(Point::new(x, y), Point::new(x + w, y + h))
            })
            .collect()
    }

    #[test]
    fn overlap_matches_brute_force_scan() {
        let mut rng = Rng(7);
        for n in [0usize, 1, 3, 8, 9, 64, 257] {
            let boxes = random_boxes(&mut rng, n);
            let bvh = Bvh::build(&boxes);
            for _ in 0..20 {
                let q = random_boxes(&mut rng, 1)[0];
                let brute: Vec<usize> = (0..n).filter(|&i| boxes[i].intersects(&q)).collect();
                assert_eq!(bvh.overlapping(&q), brute, "n = {n}");
            }
        }
    }

    #[test]
    fn stabbing_matches_brute_force_scan() {
        let mut rng = Rng(11);
        let boxes = random_boxes(&mut rng, 200);
        let bvh = Bvh::build(&boxes);
        for _ in 0..200 {
            let p = Point::new(rng.f64_in(-12.0, 14.0), rng.f64_in(-12.0, 14.0));
            let brute: Vec<usize> = (0..boxes.len()).filter(|&i| boxes[i].contains(p)).collect();
            assert_eq!(bvh.stabbing(p), brute);
        }
    }

    #[test]
    fn nearest_matches_brute_force_fold() {
        let mut rng = Rng(13);
        let boxes = random_boxes(&mut rng, 150);
        // Distance to each box's center point — a geometry inside the box.
        let centers: Vec<Point> = boxes.iter().map(|b| b.center()).collect();
        let bvh = Bvh::build(&boxes);
        for _ in 0..200 {
            let p = Point::new(rng.f64_in(-15.0, 15.0), rng.f64_in(-15.0, 15.0));
            let brute = centers
                .iter()
                .map(|c| c.distance_to(p))
                .fold(f64::INFINITY, f64::min);
            let (_, d) = bvh.nearest_by(p, |i| centers[i].distance_to(p)).unwrap();
            assert_eq!(d, brute, "bit-identical minimum distance");
        }
    }

    #[test]
    fn nearest_ties_resolve_to_the_lower_index() {
        // Two items at the same spot: index 0 wins however the tree
        // arranges them.
        let b = BoundingBox::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0));
        let bvh = Bvh::build(&[b, b]);
        let (i, _) = bvh
            .nearest_by(Point::ORIGIN, |_| Point::new(1.0, 1.0).distance_to(Point::ORIGIN))
            .unwrap();
        assert_eq!(i, 0);
    }

    #[test]
    fn empty_boxes_are_invisible_to_queries() {
        let boxes = vec![
            BoundingBox::empty(),
            BoundingBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            BoundingBox::empty(),
        ];
        let bvh = Bvh::build(&boxes);
        assert_eq!(bvh.len(), 3);
        let everything = BoundingBox::new(Point::new(-9.0, -9.0), Point::new(9.0, 9.0));
        assert_eq!(bvh.overlapping(&everything), vec![1]);
        assert_eq!(bvh.stabbing(Point::new(0.5, 0.5)), vec![1]);
        let (i, _) = bvh.nearest_by(Point::ORIGIN, |_| 1.0).unwrap();
        assert_eq!(i, 1);
    }

    #[test]
    fn empty_hierarchy_answers_empty() {
        let bvh = Bvh::build(&[]);
        assert!(bvh.is_empty());
        assert!(bvh.bounding_box().is_empty());
        let q = BoundingBox::new(Point::ORIGIN, Point::new(1.0, 1.0));
        assert!(bvh.overlapping(&q).is_empty());
        assert!(bvh.nearest_by(Point::ORIGIN, |_| 0.0).is_none());
    }

    #[test]
    fn bounding_box_covers_all_items() {
        let mut rng = Rng(17);
        let boxes = random_boxes(&mut rng, 50);
        let bvh = Bvh::build(&boxes);
        let root = bvh.bounding_box();
        for b in &boxes {
            assert!(root.contains(b.min()) && root.contains(b.max()));
        }
    }

    #[test]
    fn nan_distances_are_ignored_like_a_min_fold() {
        let boxes = random_boxes(&mut Rng(23), 20);
        let bvh = Bvh::build(&boxes);
        // Every distance NaN: no nearest item, as the fold would yield
        // its INFINITY seed.
        assert!(bvh.nearest_by(Point::ORIGIN, |_| f64::NAN).is_none());
        // One finite distance: that item wins.
        let (i, d) = bvh
            .nearest_by(Point::ORIGIN, |i| if i == 7 { 4.5 } else { f64::NAN })
            .unwrap();
        assert_eq!((i, d), (7, 4.5));
    }

    #[test]
    fn degenerate_interval_boxes_support_stabbing() {
        // The isogram tracer keys elements by their value interval as a
        // zero-height box; stabbing at (level, 0) must behave like the
        // lo <= level <= hi scan.
        let intervals = [(0.0, 2.0), (1.5, 1.5), (3.0, 7.0), (-4.0, -1.0)];
        let boxes: Vec<BoundingBox> = intervals
            .iter()
            .map(|&(lo, hi)| BoundingBox::new(Point::new(lo, 0.0), Point::new(hi, 0.0)))
            .collect();
        let bvh = Bvh::build(&boxes);
        for level in [-5.0, -2.0, 0.0, 1.5, 1.7, 3.0, 7.0, 8.0] {
            let brute: Vec<usize> = (0..intervals.len())
                .filter(|&i| intervals[i].0 <= level && level <= intervals[i].1)
                .collect();
            assert_eq!(bvh.stabbing(Point::new(level, 0.0)), brute, "level {level}");
        }
    }
}

//! Circular arcs for boundary shaping.
//!
//! IDLZ's Type-6 data card specifies a boundary piece by its two end nodes
//! and a `RADIUS`; "the center of curvature is located such that moving from
//! end 1 to end 2 on the arc is a counterclockwise motion", and the report's
//! general restrictions require "the angle subtended by the arc must be less
//! than or equal to 90 degrees". [`Arc::from_endpoints_radius`] implements
//! exactly those rules.

use std::f64::consts::TAU;
use std::fmt;

use crate::{Point, Vector};

/// Error constructing an [`Arc`] from end points and a radius.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArcError {
    /// The radius is smaller than half the chord length, so no circle of
    /// that radius passes through both end points.
    RadiusTooSmall,
    /// The two end points coincide; the arc is undefined.
    DegenerateChord,
    /// The counter-clockwise arc from end 1 to end 2 subtends more than
    /// 90°, which the paper's shaping procedure forbids.
    ExceedsQuarterTurn,
    /// The radius is zero or negative.
    NonPositiveRadius,
    /// An end point coordinate or the radius is NaN or infinite.
    NonFiniteInput,
}

impl fmt::Display for ArcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArcError::RadiusTooSmall => {
                write!(f, "radius is smaller than half the chord length")
            }
            ArcError::DegenerateChord => write!(f, "arc end points coincide"),
            ArcError::ExceedsQuarterTurn => {
                write!(f, "arc subtends more than 90 degrees")
            }
            ArcError::NonPositiveRadius => write!(f, "arc radius must be positive"),
            ArcError::NonFiniteInput => {
                write!(f, "arc end points and radius must be finite")
            }
        }
    }
}

impl std::error::Error for ArcError {}

/// A counter-clockwise circular arc.
///
/// # Examples
///
/// ```
/// use cafemio_geom::{Arc, Point};
/// # fn main() -> Result<(), cafemio_geom::ArcError> {
/// // Quarter circle of radius 1 from (1, 0) to (0, 1), CCW about the origin.
/// let arc = Arc::from_endpoints_radius(
///     Point::new(1.0, 0.0),
///     Point::new(0.0, 1.0),
///     1.0,
/// )?;
/// assert!(arc.center().approx_eq(Point::new(0.0, 0.0), 1e-9));
/// let mid = arc.point_at(0.5);
/// let s = std::f64::consts::FRAC_1_SQRT_2;
/// assert!(mid.approx_eq(Point::new(s, s), 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arc {
    center: Point,
    radius: f64,
    /// Angle of the first end point, radians CCW from +x.
    start_angle: f64,
    /// Subtended angle, radians, positive (CCW sweep).
    sweep: f64,
}

impl Arc {
    /// Builds the arc through `start` and `end` with the given `radius`,
    /// traversed counter-clockwise from `start` to `end`, taking the minor
    /// (≤ 180°) solution, exactly as IDLZ's shaping step does.
    ///
    /// # Errors
    ///
    /// * [`ArcError::NonFiniteInput`] if any coordinate or the radius is
    ///   NaN or infinite,
    /// * [`ArcError::NonPositiveRadius`] if `radius <= 0`,
    /// * [`ArcError::DegenerateChord`] if the end points coincide,
    /// * [`ArcError::RadiusTooSmall`] if no circle of that radius passes
    ///   through both points,
    /// * [`ArcError::ExceedsQuarterTurn`] if the subtended angle is more
    ///   than 90° (plus a small tolerance so exact quarter circles pass).
    pub fn from_endpoints_radius(start: Point, end: Point, radius: f64) -> Result<Arc, ArcError> {
        // NaN slips through every comparison below (all compare false)
        // and `.max(0.0)` swallows a NaN radicand, so without this guard
        // a NaN input silently produced a NaN arc for the shaping stage
        // to interpolate from.
        if !(start.x.is_finite()
            && start.y.is_finite()
            && end.x.is_finite()
            && end.y.is_finite()
            && radius.is_finite())
        {
            return Err(ArcError::NonFiniteInput);
        }
        if radius <= 0.0 {
            return Err(ArcError::NonPositiveRadius);
        }
        let chord = end - start;
        let chord_len = chord.norm();
        if chord_len <= f64::EPSILON {
            return Err(ArcError::DegenerateChord);
        }
        let half = 0.5 * chord_len;
        if radius < half * (1.0 - 1e-12) {
            return Err(ArcError::RadiusTooSmall);
        }
        // Height of the center above the chord midpoint. Clamp the radicand
        // so a radius exactly equal to half the chord (a semicircle) does
        // not go negative through rounding.
        let h = (radius * radius - half * half).max(0.0).sqrt();
        // For a CCW minor arc the center lies on the left-hand side of the
        // directed chord (see module tests for the derivation check).
        let left = chord
            .perp()
            .normalized()
            // invariant: the chord_len > EPSILON check above rules out a
            // zero-length chord.
            .expect("non-degenerate chord has a direction");
        let center = start.midpoint(end) + left * h;
        let start_angle = (start - center).angle();
        let end_angle = (end - center).angle();
        let mut sweep = end_angle - start_angle;
        while sweep <= 0.0 {
            sweep += TAU;
        }
        while sweep > TAU {
            sweep -= TAU;
        }
        // The minor-arc construction gives sweep <= PI by geometry; enforce
        // the paper's 90-degree shaping restriction.
        if sweep > std::f64::consts::FRAC_PI_2 * (1.0 + 1e-9) {
            return Err(ArcError::ExceedsQuarterTurn);
        }
        Ok(Arc {
            center,
            radius,
            start_angle,
            sweep,
        })
    }

    /// Builds an arc directly from center, radius, start angle, and CCW
    /// sweep. Unlike [`Arc::from_endpoints_radius`] this does not enforce
    /// the 90° restriction; it serves the plotter, which may draw full
    /// circles.
    ///
    /// # Panics
    ///
    /// Panics if `radius <= 0` or `sweep <= 0`.
    pub fn from_center(center: Point, radius: f64, start_angle: f64, sweep: f64) -> Arc {
        assert!(radius > 0.0, "arc radius must be positive");
        assert!(sweep > 0.0, "arc sweep must be positive");
        Arc {
            center,
            radius,
            start_angle,
            sweep,
        }
    }

    /// Center of curvature.
    pub fn center(&self) -> Point {
        self.center
    }

    /// Radius of curvature.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Subtended angle in radians (positive; CCW).
    pub fn sweep(&self) -> f64 {
        self.sweep
    }

    /// Arc length.
    pub fn length(&self) -> f64 {
        self.radius * self.sweep
    }

    /// Point at parameter `t ∈ [0, 1]` along the arc (equal angular
    /// spacing, which is the rule IDLZ uses to place grid nodes on an arc).
    pub fn point_at(&self, t: f64) -> Point {
        let a = self.start_angle + t * self.sweep;
        self.center + Vector::new(a.cos(), a.sin()) * self.radius
    }

    /// First end point.
    pub fn start(&self) -> Point {
        self.point_at(0.0)
    }

    /// Second end point.
    pub fn end(&self) -> Point {
        self.point_at(1.0)
    }

    /// `n + 1` points at equal angular spacing including both ends.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn subdivide(&self, n: usize) -> Vec<Point> {
        assert!(n > 0, "arc subdivision needs at least one step");
        (0..=n).map(|i| self.point_at(i as f64 / n as f64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn quarter_circle_center_is_left_of_chord() {
        let arc =
            Arc::from_endpoints_radius(Point::new(1.0, 0.0), Point::new(0.0, 1.0), 1.0).unwrap();
        assert!(arc.center().approx_eq(Point::ORIGIN, 1e-9));
        assert!((arc.sweep() - FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn reversing_endpoints_moves_center_to_other_side() {
        // CCW from (0,1) to (1,0) with radius 1 must curve about (1,1).
        let arc =
            Arc::from_endpoints_radius(Point::new(0.0, 1.0), Point::new(1.0, 0.0), 1.0).unwrap();
        assert!(arc.center().approx_eq(Point::new(1.0, 1.0), 1e-9));
    }

    #[test]
    fn radius_too_small_rejected() {
        let err = Arc::from_endpoints_radius(Point::new(0.0, 0.0), Point::new(10.0, 0.0), 1.0)
            .unwrap_err();
        assert_eq!(err, ArcError::RadiusTooSmall);
    }

    #[test]
    fn degenerate_chord_rejected() {
        let p = Point::new(3.0, 3.0);
        assert_eq!(
            Arc::from_endpoints_radius(p, p, 1.0).unwrap_err(),
            ArcError::DegenerateChord
        );
    }

    #[test]
    fn nonpositive_radius_rejected() {
        let err = Arc::from_endpoints_radius(Point::ORIGIN, Point::new(1.0, 0.0), 0.0).unwrap_err();
        assert_eq!(err, ArcError::NonPositiveRadius);
    }

    #[test]
    fn more_than_quarter_turn_rejected() {
        // Chord of a 120° arc on the unit circle has length sqrt(3); the
        // minor CCW arc then subtends 120° > 90°.
        let a = Point::new(1.0, 0.0);
        let b = Point::new((2.0 * PI / 3.0).cos(), (2.0 * PI / 3.0).sin());
        assert_eq!(
            Arc::from_endpoints_radius(a, b, 1.0).unwrap_err(),
            ArcError::ExceedsQuarterTurn
        );
    }

    #[test]
    fn exact_quarter_turn_allowed() {
        // The paper allows angles up to and including 90 degrees.
        let arc =
            Arc::from_endpoints_radius(Point::new(2.0, 0.0), Point::new(0.0, 2.0), 2.0).unwrap();
        assert!((arc.sweep() - FRAC_PI_2).abs() < 1e-9);
        assert!((arc.length() - PI).abs() < 1e-9);
    }

    #[test]
    fn non_finite_inputs_are_a_typed_error_not_a_nan_arc() {
        let good = Point::new(1.0, 0.0);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                Arc::from_endpoints_radius(Point::new(bad, 0.0), good, 1.0).unwrap_err(),
                ArcError::NonFiniteInput
            );
            assert_eq!(
                Arc::from_endpoints_radius(good, Point::new(0.0, bad), 1.0).unwrap_err(),
                ArcError::NonFiniteInput
            );
            assert_eq!(
                Arc::from_endpoints_radius(good, Point::new(0.0, 1.0), bad).unwrap_err(),
                ArcError::NonFiniteInput
            );
        }
    }

    #[test]
    fn exact_quarter_circles_pick_the_minor_arc_in_every_quadrant() {
        // Endpoints one quarter turn apart, started in each quadrant:
        // the constructed arc must deterministically be the 90° minor
        // arc (never the 270° complement), with every sampled point at
        // the radius from the center.
        let r = 3.0;
        for k in 0..4 {
            let a0 = k as f64 * FRAC_PI_2;
            let a1 = a0 + FRAC_PI_2;
            let a = Point::new(r * a0.cos(), r * a0.sin());
            let b = Point::new(r * a1.cos(), r * a1.sin());
            let arc = Arc::from_endpoints_radius(a, b, r).unwrap();
            assert!(
                (arc.sweep() - FRAC_PI_2).abs() < 1e-9,
                "quadrant {k}: sweep {}",
                arc.sweep()
            );
            assert!(arc.center().approx_eq(Point::ORIGIN, 1e-9), "quadrant {k}");
            for p in arc.subdivide(4) {
                assert!((p.distance_to(arc.center()) - r).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn chord_just_past_the_diameter_is_radius_too_small() {
        // The shortest-radius circle through two points has the chord as
        // its diameter; anything past that (beyond the rounding guard)
        // must be the typed error, not NaN coordinates.
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        assert_eq!(
            Arc::from_endpoints_radius(a, b, 1.0 - 1e-9).unwrap_err(),
            ArcError::RadiusTooSmall
        );
        // Exactly half the chord (a semicircle-capable radius) is fine
        // geometrically but exceeds the 90° shaping restriction.
        assert_eq!(
            Arc::from_endpoints_radius(a, b, 1.0).unwrap_err(),
            ArcError::ExceedsQuarterTurn
        );
    }

    #[test]
    fn subdivide_points_lie_on_circle_with_equal_angles() {
        let arc =
            Arc::from_endpoints_radius(Point::new(5.0, 0.0), Point::new(0.0, 5.0), 5.0).unwrap();
        let pts = arc.subdivide(8);
        assert_eq!(pts.len(), 9);
        for p in &pts {
            assert!((p.distance_to(arc.center()) - 5.0).abs() < 1e-9);
        }
        // Equal chord lengths imply equal sub-angles on a circle.
        let chord = pts[0].distance_to(pts[1]);
        for w in pts.windows(2) {
            assert!((w[0].distance_to(w[1]) - chord).abs() < 1e-9);
        }
    }

    #[test]
    fn endpoints_reproduced() {
        let a = Point::new(3.0, 1.0);
        let b = Point::new(1.0, 3.0);
        let arc = Arc::from_endpoints_radius(a, b, 2.5).unwrap();
        assert!(arc.start().approx_eq(a, 1e-9));
        assert!(arc.end().approx_eq(b, 1e-9));
    }

    #[test]
    fn from_center_full_parameters() {
        let arc = Arc::from_center(Point::new(1.0, 1.0), 2.0, 0.0, PI);
        assert!(arc.start().approx_eq(Point::new(3.0, 1.0), 1e-12));
        assert!(arc.end().approx_eq(Point::new(-1.0, 1.0), 1e-9));
        assert!((arc.length() - 2.0 * PI).abs() < 1e-12);
    }
}

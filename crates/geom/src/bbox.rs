//! Axis-aligned bounding boxes: plot extents and OSPL zoom windows.

use crate::Point;

/// An axis-aligned rectangle.
///
/// OSPL's Type-1 card carries `XMX, XMN, YMX, YMN` — "the desired extent of
/// the plot must be a part of the input data" so the analyst can "zoom-in"
/// on a critical area. That window is a `BoundingBox`.
///
/// # Examples
///
/// ```
/// use cafemio_geom::{BoundingBox, Point};
/// let mut bb = BoundingBox::empty();
/// bb.expand(Point::new(1.0, 5.0));
/// bb.expand(Point::new(-2.0, 3.0));
/// assert_eq!(bb.min(), Point::new(-2.0, 3.0));
/// assert_eq!(bb.max(), Point::new(1.0, 5.0));
/// assert!(bb.contains(Point::new(0.0, 4.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    min: Point,
    max: Point,
}

impl BoundingBox {
    /// An empty box that any [`expand`](Self::expand) call will overwrite.
    pub fn empty() -> Self {
        Self {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Box from explicit corners.
    ///
    /// # Panics
    ///
    /// Panics if `min` exceeds `max` in either coordinate.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y,
            "bounding box min must not exceed max"
        );
        Self { min, max }
    }

    /// The smallest box containing every point of the iterator, or an
    /// empty box for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Self {
        let mut bb = Self::empty();
        for p in points {
            bb.expand(p);
        }
        bb
    }

    /// True when no point has been added yet.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Lower-left corner.
    ///
    /// # Panics
    ///
    /// Panics when the box is empty.
    pub fn min(&self) -> Point {
        assert!(!self.is_empty(), "empty bounding box has no corners");
        self.min
    }

    /// Upper-right corner.
    ///
    /// # Panics
    ///
    /// Panics when the box is empty.
    pub fn max(&self) -> Point {
        assert!(!self.is_empty(), "empty bounding box has no corners");
        self.max
    }

    /// Width (x extent). Zero for an empty box.
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max.x - self.min.x
        }
    }

    /// Height (y extent). Zero for an empty box.
    pub fn height(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max.y - self.min.y
        }
    }

    /// Center of the box.
    ///
    /// # Panics
    ///
    /// Panics when the box is empty.
    pub fn center(&self) -> Point {
        self.min().midpoint(self.max())
    }

    /// Grows the box to include `p`.
    pub fn expand(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Grows the box to include another box.
    pub fn expand_box(&mut self, other: &BoundingBox) {
        if !other.is_empty() {
            self.expand(other.min);
            self.expand(other.max);
        }
    }

    /// The box enlarged by `margin` on every side.
    ///
    /// # Panics
    ///
    /// Panics when the box is empty or when a negative margin would turn
    /// the box inside out.
    pub fn inflated(&self, margin: f64) -> BoundingBox {
        let min = self.min();
        let max = self.max();
        BoundingBox::new(
            Point::new(min.x - margin, min.y - margin),
            Point::new(max.x + margin, max.y + margin),
        )
    }

    /// True when `p` lies inside or on the box.
    pub fn contains(&self, p: Point) -> bool {
        !self.is_empty()
            && p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
    }

    /// True when the two boxes overlap (sharing an edge counts).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }
}

impl Default for BoundingBox {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box_contains_nothing() {
        let bb = BoundingBox::empty();
        assert!(bb.is_empty());
        assert!(!bb.contains(Point::ORIGIN));
        assert_eq!(bb.width(), 0.0);
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(3.0, -1.0),
            Point::new(-2.0, 7.0),
        ];
        let bb = BoundingBox::from_points(pts);
        for p in pts {
            assert!(bb.contains(p));
        }
        assert_eq!(bb.width(), 5.0);
        assert_eq!(bb.height(), 8.0);
    }

    #[test]
    fn single_point_box_is_degenerate_but_valid() {
        let bb = BoundingBox::from_points([Point::new(2.0, 2.0)]);
        assert!(!bb.is_empty());
        assert_eq!(bb.width(), 0.0);
        assert!(bb.contains(Point::new(2.0, 2.0)));
    }

    #[test]
    fn inflated_adds_margin() {
        let bb = BoundingBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).inflated(0.5);
        assert_eq!(bb.min(), Point::new(-0.5, -0.5));
        assert_eq!(bb.max(), Point::new(1.5, 1.5));
    }

    #[test]
    fn intersects_shares_edge() {
        let a = BoundingBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = BoundingBox::new(Point::new(1.0, 0.0), Point::new(2.0, 1.0));
        let c = BoundingBox::new(Point::new(1.1, 0.0), Point::new(2.0, 1.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn inverted_box_panics() {
        BoundingBox::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
    }

    #[test]
    fn expand_box_merges() {
        let mut a = BoundingBox::from_points([Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
        let b = BoundingBox::from_points([Point::new(5.0, -2.0)]);
        a.expand_box(&b);
        assert!(a.contains(Point::new(5.0, -2.0)));
        a.expand_box(&BoundingBox::empty()); // no-op
        assert_eq!(a.max(), Point::new(5.0, 1.0));
    }
}

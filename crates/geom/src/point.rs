//! Points and vectors in the plane.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A position in the plane.
///
/// In the axisymmetric problems of the paper the first coordinate is the
/// radial direction `r` and the second the axial direction `z`; for plane
/// problems they are ordinary `x`/`y`. The type is deliberately a plain
/// value type (`Copy`) because meshes hold hundreds of thousands of them.
///
/// # Examples
///
/// ```
/// use cafemio_geom::Point;
/// let a = Point::new(1.0, 2.0);
/// let b = Point::new(4.0, 6.0);
/// assert!((a.distance_to(b) - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal (or radial) coordinate.
    pub x: f64,
    /// Vertical (or axial) coordinate.
    pub y: f64,
}

/// A displacement in the plane.
///
/// Kept distinct from [`Point`] so that "position" and "direction" cannot be
/// confused in shaping and contouring code.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vector {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to another point.
    pub fn distance_to(self, other: Point) -> f64 {
        (other - self).norm()
    }

    /// Squared Euclidean distance (avoids the square root in comparisons).
    pub fn distance_sq_to(self, other: Point) -> f64 {
        (other - self).norm_sq()
    }

    /// The point halfway between `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// Displacement vector from `self` to `other`.
    pub fn to(self, other: Point) -> Vector {
        other - self
    }

    /// True when both coordinates agree within `tol`.
    pub fn approx_eq(self, other: Point, tol: f64) -> bool {
        (self.x - other.x).abs() <= tol && (self.y - other.y).abs() <= tol
    }
}

impl Vector {
    /// Creates a vector from its components.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The zero vector.
    pub const ZERO: Vector = Vector::new(0.0, 0.0);

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean length.
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    pub fn dot(self, other: Vector) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Scalar (z-component of the) cross product.
    ///
    /// Positive when `other` lies counter-clockwise of `self`.
    pub fn cross(self, other: Vector) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction, or `None` for (near-)zero vectors.
    pub fn normalized(self) -> Option<Vector> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// The vector rotated a quarter turn counter-clockwise.
    pub fn perp(self) -> Vector {
        Vector::new(-self.y, self.x)
    }

    /// Angle of the vector measured counter-clockwise from the +x axis,
    /// in radians within `(-π, π]`.
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl From<(f64, f64)> for Vector {
    fn from((x, y): (f64, f64)) -> Self {
        Vector::new(x, y)
    }
}

impl Sub for Point {
    type Output = Vector;
    fn sub(self, rhs: Point) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    fn add(self, rhs: Vector) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    fn sub(self, rhs: Vector) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl AddAssign<Vector> for Point {
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign<Vector> for Point {
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Add for Vector {
    type Output = Vector;
    fn add(self, rhs: Vector) -> Vector {
        Vector::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vector {
    type Output = Vector;
    fn sub(self, rhs: Vector) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        Vector::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vector> for f64 {
    type Output = Vector;
    fn mul(self, rhs: Vector) -> Vector {
        rhs * self
    }
}

impl Div<f64> for Vector {
    type Output = Vector;
    fn div(self, rhs: f64) -> Vector {
        Vector::new(self.x / rhs, self.y / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-1.0, 3.0);
        let b = Point::new(2.0, -1.0);
        assert_eq!(a.distance_to(b), b.distance_to(a));
        assert!((a.distance_to(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn midpoint_bisects() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 2.0);
        let m = a.midpoint(b);
        assert!((m.distance_to(a) - m.distance_to(b)).abs() < 1e-12);
    }

    #[test]
    fn cross_sign_encodes_orientation() {
        let e1 = Vector::new(1.0, 0.0);
        let e2 = Vector::new(0.0, 1.0);
        assert!(e1.cross(e2) > 0.0);
        assert!(e2.cross(e1) < 0.0);
        assert_eq!(e1.cross(e1), 0.0);
    }

    #[test]
    fn perp_is_quarter_turn() {
        let v = Vector::new(3.0, 4.0);
        let p = v.perp();
        assert_eq!(v.dot(p), 0.0);
        assert!(v.cross(p) > 0.0);
        assert_eq!(p.norm(), v.norm());
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vector::ZERO.normalized().is_none());
        let n = Vector::new(0.0, -2.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-15);
        assert_eq!(n, Vector::new(0.0, -1.0));
    }

    #[test]
    fn point_vector_arithmetic_round_trips() {
        let p = Point::new(1.5, -2.5);
        let v = Vector::new(0.5, 4.0);
        assert_eq!((p + v) - v, p);
        assert_eq!((p + v) - p, v);
    }

    #[test]
    fn angle_of_axes() {
        assert_eq!(Vector::new(1.0, 0.0).angle(), 0.0);
        assert!((Vector::new(0.0, 1.0).angle() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }
}

//! Straight line segments.

use crate::{lerp_point, Point, Vector};

/// A straight segment from `start` to `end`.
///
/// IDLZ uses segments to locate boundary nodes ("Adjacent boundary nodes
/// forming a straight line … need only have the coordinates of the two end
/// nodes specified"), and OSPL uses them as the drawn pieces of every
/// isogram.
///
/// # Examples
///
/// ```
/// use cafemio_geom::{Point, Segment};
/// let s = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 0.0));
/// assert_eq!(s.length(), 4.0);
/// assert_eq!(s.point_at(0.25), Point::new(1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First end point.
    pub start: Point,
    /// Second end point.
    pub end: Point,
}

impl Segment {
    /// Creates a segment between two points.
    pub const fn new(start: Point, end: Point) -> Self {
        Self { start, end }
    }

    /// Length of the segment.
    pub fn length(&self) -> f64 {
        self.start.distance_to(self.end)
    }

    /// Direction vector from start to end (not normalized).
    pub fn direction(&self) -> Vector {
        self.end - self.start
    }

    /// Point at parameter `t` (`0` at `start`, `1` at `end`).
    pub fn point_at(&self, t: f64) -> Point {
        lerp_point(self.start, self.end, t)
    }

    /// `n + 1` evenly spaced points including both ends (`n` steps).
    ///
    /// This is the spacing rule IDLZ applies when several integer grid nodes
    /// lie along one user-specified straight shaping line.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn subdivide(&self, n: usize) -> Vec<Point> {
        assert!(n > 0, "segment subdivision needs at least one step");
        (0..=n).map(|i| self.point_at(i as f64 / n as f64)).collect()
    }

    /// The segment with its end points swapped.
    pub fn reversed(&self) -> Segment {
        Segment::new(self.end, self.start)
    }

    /// Perpendicular distance from `p` to the infinite line through the
    /// segment, or to the nearer end point when the projection falls
    /// outside the segment.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        let d = self.direction();
        let len_sq = d.norm_sq();
        if len_sq <= f64::EPSILON {
            return self.start.distance_to(p);
        }
        let t = ((p - self.start).dot(d) / len_sq).clamp(0.0, 1.0);
        self.point_at(t).distance_to(p)
    }

    /// Midpoint of the segment.
    pub fn midpoint(&self) -> Point {
        self.start.midpoint(self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subdivide_counts_and_ends() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 6.0));
        let pts = s.subdivide(3);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0], s.start);
        assert_eq!(pts[3], s.end);
        assert_eq!(pts[1], Point::new(1.0, 2.0));
    }

    #[test]
    fn subdivide_points_evenly_spaced() {
        let s = Segment::new(Point::new(1.0, 1.0), Point::new(5.0, 4.0));
        let pts = s.subdivide(5);
        let step = pts[0].distance_to(pts[1]);
        for w in pts.windows(2) {
            assert!((w[0].distance_to(w[1]) - step).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn subdivide_zero_panics() {
        Segment::new(Point::ORIGIN, Point::new(1.0, 0.0)).subdivide(0);
    }

    #[test]
    fn distance_to_point_interior_and_beyond() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.distance_to_point(Point::new(5.0, 3.0)), 3.0);
        assert_eq!(s.distance_to_point(Point::new(-4.0, 3.0)), 5.0);
        assert_eq!(s.distance_to_point(Point::new(14.0, 3.0)), 5.0);
    }

    #[test]
    fn degenerate_segment_distance() {
        let s = Segment::new(Point::new(2.0, 2.0), Point::new(2.0, 2.0));
        assert_eq!(s.distance_to_point(Point::new(2.0, 5.0)), 3.0);
    }

    #[test]
    fn reversed_swaps_ends() {
        let s = Segment::new(Point::new(1.0, 2.0), Point::new(3.0, 4.0));
        let r = s.reversed();
        assert_eq!(r.start, s.end);
        assert_eq!(r.end, s.start);
        assert_eq!(r.length(), s.length());
    }
}

//! Workspace integration: the full 1970 data path over every model in
//! the catalog — idealize, punch cards, read them back, analyze, contour.

use cafemio::cards::{Field, Format, FormatReader};
use cafemio::idlz::deck::{parse_deck, punch_element_cards, punch_nodal_cards, write_deck};
use cafemio::idlz::Idealization;
use cafemio::models::{catalog, cylinder, joint, viewport};
use cafemio::ospl::deck::{parse_ospl_deck, write_ospl_deck};
use cafemio::prelude::*;

#[test]
fn every_catalog_model_idealizes_and_plots() {
    for entry in catalog() {
        let spec = (entry.spec)();
        let result = Idealization::run(&spec).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        result.mesh.validate().unwrap();
        // Plot frames were produced and contain geometry.
        assert!(!result.frames.is_empty(), "{}", entry.name);
        assert!(result.frames[1].vector_count() > 0, "{}", entry.name);
    }
}

#[test]
fn idlz_deck_round_trip_reproduces_the_mesh() {
    // Deck-serializable models (historical Table-2 limits, card-precision
    // coordinates) must produce the same mesh when their deck is read
    // back.
    for spec in [viewport::juncture_spec(), joint::spec()] {
        let direct = Idealization::run(&spec).unwrap();
        let deck = write_deck(std::slice::from_ref(&spec)).unwrap();
        let parsed = parse_deck(&deck).unwrap();
        let from_cards = Idealization::run(&parsed[0]).unwrap();
        assert_eq!(direct.mesh.node_count(), from_cards.mesh.node_count());
        assert_eq!(direct.mesh.element_count(), from_cards.mesh.element_count());
        for (id, node) in direct.mesh.nodes() {
            assert!(
                node.position
                    .approx_eq(from_cards.mesh.node(id).position, 1e-3),
                "node {id} moved through the card round trip"
            );
        }
    }
}

#[test]
fn punched_cards_feed_the_analysis_format() {
    // The punched nodal cards must read back exactly under the analysis
    // program's own format — that is the whole point of IDLZ.
    let spec = viewport::juncture_spec();
    let result = Idealization::run(&spec).unwrap();
    let nodal = punch_nodal_cards(&result.mesh, spec.nodal_format()).unwrap();
    let element = punch_element_cards(&result.mesh, spec.element_format()).unwrap();
    let nodal_format: Format = spec.nodal_format().parse().unwrap();
    let reader = FormatReader::new(&nodal_format);
    for (i, card) in nodal.iter().enumerate() {
        let values = reader.read_record(card.text()).unwrap();
        assert_eq!(values[3], Field::Int(i as i64 + 1), "node number");
        let x = values[0].as_f64().unwrap();
        let y = values[1].as_f64().unwrap();
        let node = result.mesh.node(NodeId(i));
        assert!((x - node.position.x).abs() < 1e-4);
        assert!((y - node.position.y).abs() < 1e-4);
    }
    let element_format: Format = spec.element_format().parse().unwrap();
    let ereader = FormatReader::new(&element_format);
    for (i, card) in element.iter().enumerate() {
        let values = ereader.read_record(card.text()).unwrap();
        assert_eq!(values[3], Field::Int(i as i64 + 1), "element number");
    }
}

#[test]
fn analysis_to_ospl_deck_to_plot() {
    // Figure 17's full chain with the glass joint: idealize, solve,
    // write the OSPL deck, read it back, contour the radial stress.
    let result = Idealization::run(&joint::spec()).unwrap();
    let model = joint::pressure_model(&result.mesh);
    let solution = model.solve().unwrap();
    let stresses = StressField::compute(&model, &solution).unwrap();
    let field = stresses.radial();
    let deck = write_ospl_deck(
        model.mesh(),
        &field,
        &ContourOptions::new(),
        ("GLASS JOINT RADIAL STRESS", "INTEGRATION TEST"),
    )
    .unwrap();
    let input = parse_ospl_deck(&deck).unwrap();
    let plot = Ospl::run(&input.mesh, &input.field, &input.options).unwrap();
    assert!(plot.drawn_contours() > 0);
    assert!(plot.frame.label_count() > 0);
}

#[test]
fn moderate_problem_data_volume_matches_paper_scale() {
    // C2: "A problem of moderate size requiring 500 elements would need
    // almost 2000 input data values and produce nearly 2000 output data
    // values" — for the *analysis program*. IDLZ's punched output is that
    // input: 4 values per node + 4 per element.
    let spec = cafemio::models::plate::capacity_spec(280);
    let result = Idealization::run(&spec).unwrap();
    let elements = result.mesh.element_count();
    assert!(
        (450..=560).contains(&elements),
        "want a ~500-element problem, got {elements}"
    );
    let analysis_input = result.stats.output_values;
    assert!(
        (1500..=3500).contains(&analysis_input),
        "analysis input data = {analysis_input}"
    );
    // And IDLZ needed a small fraction of that.
    assert!(result.stats.input_fraction() < 0.05);
}

#[test]
fn stiffened_cylinder_full_chain_matches_figure_15_shape() {
    let result = Idealization::run(&cylinder::stiffened_spec()).unwrap();
    let model = cylinder::pressure_model(&result.mesh);
    let plot = PipelineBuilder::new()
        .component(StressComponent::Circumferential)
        .model(model)
        .solve()
        .unwrap()
        .recover()
        .unwrap()
        .contour()
        .unwrap()
        .remove(0);
    // Figure 15c: hoop stress everywhere compressive in the GRP barrel.
    let (lo, hi) = plot.field.min_max().unwrap();
    assert!(hi < 0.0, "hoop range {lo} .. {hi}");
    assert!(plot.contours.drawn_contours() >= 5);
}

#[test]
fn renumbering_does_not_change_the_physics() {
    // Solve the same structure with and without bandwidth renumbering;
    // displacements at matching positions must agree.
    let mut spec = viewport::juncture_spec();
    let renumbered = Idealization::run(&spec).unwrap();
    spec.set_options(cafemio::idlz::Options {
        renumber: false,
        ..cafemio::idlz::Options::default()
    });
    let plain = Idealization::run(&spec).unwrap();
    assert!(renumbered.stats.bandwidth_after <= plain.stats.bandwidth_after);

    let solve_max = |mesh: &TriMesh| {
        let model = viewport::pressure_model(mesh);
        model.solve().unwrap().max_displacement()
    };
    let a = solve_max(&renumbered.mesh);
    let b = solve_max(&plain.mesh);
    assert!((a - b).abs() < 1e-9 * a.max(1e-30), "{a} vs {b}");
}

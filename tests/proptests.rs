//! Property-based tests over the workspace's core invariants
//! (`DESIGN.md` §6).

use proptest::prelude::*;

use cafemio::cards::{Field, Format, FormatReader, FormatWriter};
use cafemio::geom::{Arc, Point, Segment, Triangle};
use cafemio::idlz::reform_elements;
use cafemio::mesh::{cuthill_mckee, BoundaryKind, NodalField, TriMesh};
use cafemio::ospl::{automatic_interval, contour_levels, extract_isograms};

// ---------------------------------------------------------------------
// Card formats
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Iw fields round-trip any integer that fits the width.
    #[test]
    fn integer_fields_round_trip(v in -9999i64..=9999) {
        let format: Format = "(I5)".parse().unwrap();
        let record = FormatWriter::new(&format)
            .write_record(&[Field::Int(v)])
            .unwrap();
        let back = FormatReader::new(&format).read_record(&record).unwrap();
        prop_assert_eq!(back[0].clone(), Field::Int(v));
    }

    /// Fw.d fields round-trip to within half a unit in the last place.
    #[test]
    fn fixed_fields_round_trip(v in -99.0f64..99.0) {
        let format: Format = "(F9.4)".parse().unwrap();
        let record = FormatWriter::new(&format)
            .write_record(&[Field::Real(v)])
            .unwrap();
        let back = FormatReader::new(&format).read_record(&record).unwrap();
        let got = back[0].as_f64().unwrap();
        prop_assert!((got - v).abs() <= 0.5e-4, "{} -> {}", v, got);
    }

    /// Ew.d fields round-trip within the mantissa precision.
    #[test]
    fn exponential_fields_round_trip(m in 0.1f64..1.0, e in -12i32..12, neg: bool) {
        let v = if neg { -m } else { m } * 10f64.powi(e);
        let format: Format = "(E15.7)".parse().unwrap();
        let record = FormatWriter::new(&format)
            .write_record(&[Field::Real(v)])
            .unwrap();
        let back = FormatReader::new(&format).read_record(&record).unwrap();
        let got = back[0].as_f64().unwrap();
        prop_assert!((got - v).abs() <= 1e-6 * v.abs().max(1e-300), "{} -> {}", v, got);
    }

    /// Multi-record format reuse never loses or reorders values.
    #[test]
    fn format_reuse_preserves_order(values in prop::collection::vec(-999i64..=999, 1..30)) {
        let format: Format = "(4I4)".parse().unwrap();
        let fields: Vec<Field> = values.iter().map(|&v| Field::Int(v)).collect();
        let records = FormatWriter::new(&format).write_all(&fields).unwrap();
        let mut back = Vec::new();
        let reader = FormatReader::new(&format);
        for record in &records {
            back.extend(reader.read_record(record).unwrap());
        }
        // Short final records read trailing blanks as zeros; compare the
        // prefix.
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(back[i].as_i64().unwrap(), v);
        }
    }
}

// ---------------------------------------------------------------------
// Geometry
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arc construction: every subdivided point lies on the circle and
    /// consecutive points subtend equal chords.
    #[test]
    fn arc_points_on_circle(
        x0 in -10.0f64..10.0, y0 in -10.0f64..10.0,
        angle in 0.1f64..1.4, radius in 0.5f64..20.0, n in 2usize..12,
    ) {
        let start = Point::new(x0 + radius, y0);
        let end = Point::new(x0 + radius * angle.cos(), y0 + radius * angle.sin());
        let arc = Arc::from_endpoints_radius(start, end, radius).unwrap();
        let pts = arc.subdivide(n);
        let center = arc.center();
        let chord = pts[0].distance_to(pts[1]);
        for w in pts.windows(2) {
            prop_assert!((w[0].distance_to(center) - radius).abs() < 1e-9);
            prop_assert!((w[0].distance_to(w[1]) - chord).abs() < 1e-9);
        }
    }

    /// Segment subdivision: even spacing, exact end points.
    #[test]
    fn segment_subdivision_even(
        ax in -5.0f64..5.0, ay in -5.0f64..5.0,
        bx in -5.0f64..5.0, by in -5.0f64..5.0, n in 1usize..20,
    ) {
        prop_assume!((ax - bx).abs() + (ay - by).abs() > 1e-6);
        let s = Segment::new(Point::new(ax, ay), Point::new(bx, by));
        let pts = s.subdivide(n);
        prop_assert_eq!(pts.len(), n + 1);
        let step = s.length() / n as f64;
        for w in pts.windows(2) {
            prop_assert!((w[0].distance_to(w[1]) - step).abs() < 1e-9);
        }
    }

    /// Triangle angles always sum to π; barycentric coordinates
    /// reconstruct the query point.
    #[test]
    fn triangle_invariants(
        ax in -5.0f64..5.0, ay in -5.0f64..5.0,
        bx in -5.0f64..5.0, by in -5.0f64..5.0,
        cx in -5.0f64..5.0, cy in -5.0f64..5.0,
        wa in 0.05f64..0.9,
    ) {
        let t = Triangle::new(Point::new(ax, ay), Point::new(bx, by), Point::new(cx, cy));
        prop_assume!(t.area() > 1e-3);
        let sum: f64 = t.angles().iter().sum();
        prop_assert!((sum - std::f64::consts::PI).abs() < 1e-9);
        let wb = (1.0 - wa) * 0.6;
        let wc = 1.0 - wa - wb;
        let [a, b, c] = t.vertices;
        let p = Point::new(
            wa * a.x + wb * b.x + wc * c.x,
            wa * a.y + wb * b.y + wc * c.y,
        );
        let w = t.barycentric(p).unwrap();
        prop_assert!((w[0] - wa).abs() < 1e-9);
        prop_assert!((w[1] - wb).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------
// Contour spacing (Appendix D)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The automatic interval is always a base × power of ten, and the
    /// resulting contour count stays in the hand-plot sweet spot.
    #[test]
    fn automatic_interval_properties(lo in -1.0e6f64..1.0e6, span in 1e-3f64..1.0e6) {
        let hi = lo + span;
        let interval = automatic_interval(lo, hi).unwrap();
        let mantissa = interval / 10f64.powf(interval.log10().floor());
        prop_assert!(
            [1.0, 2.5, 5.0].iter().any(|b| (mantissa - b).abs() < 1e-9),
            "interval {} mantissa {}", interval, mantissa
        );
        // About 5 % spacing. The candidate series {1, 2.5, 5}×10^k has
        // its widest relative gap between 1 and 2.5 (a 2.5× step whose
        // midpoint is 1.75), so the closest-to-5% rule bounds the contour
        // count to [20/ (2.5/1.75), 20·1.75] = [14, 35] across the range.
        let count = span / interval;
        prop_assert!((13.9..35.1).contains(&count), "count {}", count);
    }

    /// Contour levels are ascending multiples of the interval, all within
    /// range.
    #[test]
    fn contour_levels_properties(lo in -1000.0f64..1000.0, span in 0.5f64..500.0) {
        let hi = lo + span;
        let interval = automatic_interval(lo, hi).unwrap();
        let levels = contour_levels(lo, hi, interval);
        prop_assert!(!levels.is_empty());
        for w in levels.windows(2) {
            prop_assert!((w[1] - w[0] - interval).abs() < 1e-9 * interval.max(1.0));
        }
        prop_assert!(levels[0] >= lo - 1e-9 * span);
        prop_assert!(*levels.last().unwrap() <= hi + 1e-9 * span);
    }
}

// ---------------------------------------------------------------------
// Mesh algorithms
// ---------------------------------------------------------------------

/// A jittered strip mesh, the staple random workload.
fn strip_mesh(cells: usize, jitter: &[f64]) -> TriMesh {
    let mut mesh = TriMesh::new();
    let mut ids = Vec::new();
    let mut k = 0;
    for j in 0..=1 {
        for i in 0..=cells {
            let dx = jitter.get(k).copied().unwrap_or(0.0) * 0.2;
            let dy = jitter.get(k + 1).copied().unwrap_or(0.0) * 0.2;
            k += 2;
            ids.push(mesh.add_node(
                Point::new(i as f64 + dx, j as f64 + dy),
                BoundaryKind::Boundary,
            ));
        }
    }
    let at = |i: usize, j: usize| ids[j * (cells + 1) + i];
    for i in 0..cells {
        mesh.add_element([at(i, 0), at(i + 1, 0), at(i + 1, 1)]).unwrap();
        mesh.add_element([at(i, 0), at(i + 1, 1), at(i, 1)]).unwrap();
    }
    mesh
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cuthill–McKee always yields a valid permutation and never loses
    /// connectivity.
    #[test]
    fn cuthill_mckee_is_a_permutation(
        cells in 2usize..20,
        jitter in prop::collection::vec(-1.0f64..1.0, 0..80),
    ) {
        let mesh = strip_mesh(cells, &jitter);
        let perm = cuthill_mckee(&mesh);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..mesh.node_count()).collect::<Vec<_>>());
        let mut renumbered = mesh.clone();
        renumbered.renumber_nodes(&perm);
        prop_assert_eq!(renumbered.element_count(), mesh.element_count());
        prop_assert!((renumbered.total_area() - mesh.total_area()).abs() < 1e-9);
        prop_assert_eq!(renumbered.boundary_edges().len(), mesh.boundary_edges().len());
    }

    /// Reforming never shrinks the minimum angle, never changes area,
    /// node positions, or the boundary.
    #[test]
    fn reform_invariants(
        cells in 2usize..15,
        jitter in prop::collection::vec(-1.0f64..1.0, 0..64),
    ) {
        let mut mesh = strip_mesh(cells, &jitter);
        prop_assume!(mesh.validate().is_ok());
        let area = mesh.total_area();
        let min_angle = mesh.quality().min_angle;
        let boundary = mesh.boundary_edges();
        let report = reform_elements(&mut mesh, 20);
        prop_assert!(report.min_angle_after >= min_angle - 1e-12);
        prop_assert!((mesh.total_area() - area).abs() < 1e-9 * area);
        prop_assert_eq!(mesh.boundary_edges(), boundary);
        prop_assert!(mesh.validate().is_ok());
    }

    /// Uniform refinement preserves area, boundary length, and the mesh
    /// minimum angle, and exactly quadruples the element count.
    #[test]
    fn refinement_invariants(
        cells in 2usize..10,
        jitter in prop::collection::vec(-1.0f64..1.0, 0..48),
    ) {
        let coarse = strip_mesh(cells, &jitter);
        prop_assume!(coarse.validate().is_ok());
        let fine = coarse.refined();
        prop_assert!(fine.validate().is_ok());
        prop_assert_eq!(fine.element_count(), 4 * coarse.element_count());
        prop_assert!((fine.total_area() - coarse.total_area()).abs() < 1e-9);
        prop_assert!(
            (fine.quality().min_angle - coarse.quality().min_angle).abs() < 1e-9
        );
        let outline = |m: &cafemio::mesh::TriMesh| -> f64 {
            m.boundary_edges()
                .iter()
                .map(|e| m.node(e.0).position.distance_to(m.node(e.1).position))
                .sum()
        };
        prop_assert!((outline(&fine) - outline(&coarse)).abs() < 1e-9);
    }

    /// Doubling a mesh (all nodes duplicated) and merging restores the
    /// original node count and total area exactly.
    #[test]
    fn merge_undoes_duplication(
        cells in 2usize..10,
        jitter in prop::collection::vec(-1.0f64..1.0, 0..48),
    ) {
        let base = strip_mesh(cells, &jitter);
        prop_assume!(base.validate().is_ok());
        // Rebuild with every node stored twice; elements alternate
        // between the two copies.
        let mut doubled = cafemio::mesh::TriMesh::new();
        let mut first = Vec::new();
        let mut second = Vec::new();
        for (_, node) in base.nodes() {
            first.push(doubled.add_node(node.position, node.boundary));
        }
        for (_, node) in base.nodes() {
            second.push(doubled.add_node(node.position, node.boundary));
        }
        for (i, (_, el)) in base.elements().enumerate() {
            let pick = |n: cafemio::mesh::NodeId| if i % 2 == 0 { first[n.index()] } else { second[n.index()] };
            doubled.add_element([pick(el.nodes[0]), pick(el.nodes[1]), pick(el.nodes[2])]).unwrap();
        }
        let removed = doubled.merge_coincident_nodes(1e-9);
        prop_assert_eq!(removed, base.node_count());
        prop_assert_eq!(doubled.node_count(), base.node_count());
        prop_assert!((doubled.total_area() - base.total_area()).abs() < 1e-9);
        prop_assert!(doubled.validate().is_ok());
    }

    /// Polyline chaining conserves total contour length and never drops a
    /// segment.
    #[test]
    fn polyline_chaining_conserves_length(
        cells in 2usize..10,
        values in prop::collection::vec(-40.0f64..40.0, 6..22),
        t in 0.15f64..0.85,
    ) {
        let mesh = strip_mesh(cells, &[]);
        prop_assume!(values.len() >= mesh.node_count());
        let field = NodalField::new("S", values[..mesh.node_count()].to_vec());
        let (lo, hi) = field.min_max().unwrap();
        prop_assume!(hi - lo > 1.0);
        let level = lo + t * (hi - lo);
        let isograms = extract_isograms(&mesh, &field, &[level]).unwrap();
        let chains = isograms[0].polylines(1e-9);
        let chained: f64 = chains
            .iter()
            .map(|c| c.windows(2).map(|w| w[0].distance_to(w[1])).sum::<f64>())
            .sum();
        prop_assert!((chained - isograms[0].length()).abs() < 1e-9);
        let points: usize = chains.iter().map(|c| c.len() - 1).sum();
        prop_assert_eq!(points, isograms[0].segments.len());
    }

    /// Every isogram segment endpoint interpolates exactly to its level,
    /// and levels outside the field range draw nothing.
    #[test]
    fn isogram_interpolation_exact(
        cells in 2usize..10,
        values in prop::collection::vec(-50.0f64..50.0, 6..22),
        t in 0.1f64..0.9,
    ) {
        let mesh = strip_mesh(cells, &[]);
        prop_assume!(values.len() >= mesh.node_count());
        let values = &values[..mesh.node_count()];
        let field = NodalField::new("S", values.to_vec());
        let (lo, hi) = field.min_max().unwrap();
        prop_assume!(hi - lo > 1.0);
        let level = lo + t * (hi - lo);
        let isograms = extract_isograms(&mesh, &field, &[level, hi + 10.0]).unwrap();
        prop_assert!(isograms[1].segments.is_empty());
        for seg in &isograms[0].segments {
            for p in [seg.a, seg.b] {
                // Find the element containing p and interpolate.
                let mut matched = false;
                for (id, el) in mesh.elements() {
                    let tri = mesh.triangle(id);
                    if let Some(w) = tri.barycentric(p) {
                        if w.iter().all(|&wi| wi >= -1e-9) {
                            let v = w[0] * field.value(el.nodes[0])
                                + w[1] * field.value(el.nodes[1])
                                + w[2] * field.value(el.nodes[2]);
                            prop_assert!((v - level).abs() < 1e-6, "v {} level {}", v, level);
                            matched = true;
                            break;
                        }
                    }
                }
                prop_assert!(matched, "segment endpoint outside the mesh");
            }
        }
    }
}

//! Randomized property tests over the workspace's core invariants
//! (`DESIGN.md` §6).
//!
//! The workspace builds with no external dependencies, so instead of a
//! property-testing framework these run each property over a few hundred
//! cases drawn from a seeded [`Rng`] — deterministic run to run, with the
//! failing case's inputs printed by the assertion messages.

use cafemio::cards::{Field, Format, FormatReader, FormatWriter};
use cafemio::geom::{Arc, Point, Segment, Triangle};
use cafemio::idlz::reform_elements;
use cafemio::mesh::{cuthill_mckee, BoundaryKind, NodalField, TriMesh};
use cafemio::ospl::{automatic_interval, contour_levels, extract_isograms};

/// SplitMix64: tiny, seedable, and plenty random for test-case generation.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// Uniform integer in `[lo, hi]`.
    fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi - lo + 1) as u64;
        lo + (self.next_u64() % span) as i64
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.i64_in(lo as i64, hi as i64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    fn vec_f64(&mut self, lo: f64, hi: f64, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }
}

// ---------------------------------------------------------------------
// Card formats
// ---------------------------------------------------------------------

/// Iw fields round-trip any integer that fits the width.
#[test]
fn integer_fields_round_trip() {
    let mut rng = Rng::new(0x1d1);
    let format: Format = "(I5)".parse().unwrap();
    for _ in 0..128 {
        let v = rng.i64_in(-9999, 9999);
        let record = FormatWriter::new(&format)
            .write_record(&[Field::Int(v)])
            .unwrap();
        let back = FormatReader::new(&format).read_record(&record).unwrap();
        assert_eq!(back[0], Field::Int(v));
    }
}

/// Fw.d fields round-trip to within half a unit in the last place.
#[test]
fn fixed_fields_round_trip() {
    let mut rng = Rng::new(0x1d2);
    let format: Format = "(F9.4)".parse().unwrap();
    for _ in 0..128 {
        let v = rng.f64_in(-99.0, 99.0);
        let record = FormatWriter::new(&format)
            .write_record(&[Field::Real(v)])
            .unwrap();
        let back = FormatReader::new(&format).read_record(&record).unwrap();
        let got = back[0].as_f64().unwrap();
        assert!((got - v).abs() <= 0.5e-4, "{v} -> {got}");
    }
}

/// Ew.d fields round-trip within the mantissa precision.
#[test]
fn exponential_fields_round_trip() {
    let mut rng = Rng::new(0x1d3);
    let format: Format = "(E15.7)".parse().unwrap();
    for _ in 0..128 {
        let m = rng.f64_in(0.1, 1.0);
        let e = rng.i64_in(-12, 11) as i32;
        let v = if rng.bool() { -m } else { m } * 10f64.powi(e);
        let record = FormatWriter::new(&format)
            .write_record(&[Field::Real(v)])
            .unwrap();
        let back = FormatReader::new(&format).read_record(&record).unwrap();
        let got = back[0].as_f64().unwrap();
        assert!((got - v).abs() <= 1e-6 * v.abs().max(1e-300), "{v} -> {got}");
    }
}

/// Multi-record format reuse never loses or reorders values.
#[test]
fn format_reuse_preserves_order() {
    let mut rng = Rng::new(0x1d4);
    let format: Format = "(4I4)".parse().unwrap();
    for _ in 0..128 {
        let values: Vec<i64> = (0..rng.usize_in(1, 29))
            .map(|_| rng.i64_in(-999, 999))
            .collect();
        let fields: Vec<Field> = values.iter().map(|&v| Field::Int(v)).collect();
        let records = FormatWriter::new(&format).write_all(&fields).unwrap();
        let mut back = Vec::new();
        let reader = FormatReader::new(&format);
        for record in &records {
            back.extend(reader.read_record(record).unwrap());
        }
        // Short final records read trailing blanks as zeros; compare the
        // prefix.
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(back[i].as_i64().unwrap(), v);
        }
    }
}

// ---------------------------------------------------------------------
// Geometry
// ---------------------------------------------------------------------

/// Arc construction: every subdivided point lies on the circle and
/// consecutive points subtend equal chords.
#[test]
fn arc_points_on_circle() {
    let mut rng = Rng::new(0x2e1);
    for _ in 0..128 {
        let x0 = rng.f64_in(-10.0, 10.0);
        let y0 = rng.f64_in(-10.0, 10.0);
        let angle = rng.f64_in(0.1, 1.4);
        let radius = rng.f64_in(0.5, 20.0);
        let n = rng.usize_in(2, 11);
        let start = Point::new(x0 + radius, y0);
        let end = Point::new(x0 + radius * angle.cos(), y0 + radius * angle.sin());
        let arc = Arc::from_endpoints_radius(start, end, radius).unwrap();
        let pts = arc.subdivide(n);
        let center = arc.center();
        let chord = pts[0].distance_to(pts[1]);
        for w in pts.windows(2) {
            assert!((w[0].distance_to(center) - radius).abs() < 1e-9);
            assert!((w[0].distance_to(w[1]) - chord).abs() < 1e-9);
        }
    }
}

/// Segment subdivision: even spacing, exact end points.
#[test]
fn segment_subdivision_even() {
    let mut rng = Rng::new(0x2e2);
    for _ in 0..128 {
        let (ax, ay) = (rng.f64_in(-5.0, 5.0), rng.f64_in(-5.0, 5.0));
        let (bx, by) = (rng.f64_in(-5.0, 5.0), rng.f64_in(-5.0, 5.0));
        let n = rng.usize_in(1, 19);
        if (ax - bx).abs() + (ay - by).abs() <= 1e-6 {
            continue;
        }
        let s = Segment::new(Point::new(ax, ay), Point::new(bx, by));
        let pts = s.subdivide(n);
        assert_eq!(pts.len(), n + 1);
        let step = s.length() / n as f64;
        for w in pts.windows(2) {
            assert!((w[0].distance_to(w[1]) - step).abs() < 1e-9);
        }
    }
}

/// Triangle angles always sum to π; barycentric coordinates reconstruct
/// the query point.
#[test]
fn triangle_invariants() {
    let mut rng = Rng::new(0x2e3);
    for _ in 0..128 {
        let t = Triangle::new(
            Point::new(rng.f64_in(-5.0, 5.0), rng.f64_in(-5.0, 5.0)),
            Point::new(rng.f64_in(-5.0, 5.0), rng.f64_in(-5.0, 5.0)),
            Point::new(rng.f64_in(-5.0, 5.0), rng.f64_in(-5.0, 5.0)),
        );
        let wa = rng.f64_in(0.05, 0.9);
        if t.area() <= 1e-3 {
            continue;
        }
        let sum: f64 = t.angles().iter().sum();
        assert!((sum - std::f64::consts::PI).abs() < 1e-9);
        let wb = (1.0 - wa) * 0.6;
        let wc = 1.0 - wa - wb;
        let [a, b, c] = t.vertices;
        let p = Point::new(
            wa * a.x + wb * b.x + wc * c.x,
            wa * a.y + wb * b.y + wc * c.y,
        );
        let w = t.barycentric(p).unwrap();
        assert!((w[0] - wa).abs() < 1e-9);
        assert!((w[1] - wb).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------
// Contour spacing (Appendix D)
// ---------------------------------------------------------------------

/// The automatic interval is always a base × power of ten, and the
/// resulting contour count stays in the hand-plot sweet spot.
#[test]
fn automatic_interval_properties() {
    let mut rng = Rng::new(0x3f1);
    for _ in 0..256 {
        let lo = rng.f64_in(-1.0e6, 1.0e6);
        let span = rng.f64_in(1e-3, 1.0e6);
        let hi = lo + span;
        let interval = automatic_interval(lo, hi).unwrap();
        let mantissa = interval / 10f64.powf(interval.log10().floor());
        assert!(
            [1.0, 2.5, 5.0].iter().any(|b| (mantissa - b).abs() < 1e-9),
            "interval {interval} mantissa {mantissa}"
        );
        // About 5 % spacing. The candidate series {1, 2.5, 5}×10^k has
        // its widest relative gap between 1 and 2.5 (a 2.5× step whose
        // midpoint is 1.75), so the closest-to-5% rule bounds the contour
        // count to [20/ (2.5/1.75), 20·1.75] = [14, 35] across the range.
        let count = span / interval;
        assert!((13.9..35.1).contains(&count), "count {count}");
    }
}

/// Contour levels are ascending multiples of the interval, all within
/// range.
#[test]
fn contour_levels_properties() {
    let mut rng = Rng::new(0x3f2);
    for _ in 0..256 {
        let lo = rng.f64_in(-1000.0, 1000.0);
        let span = rng.f64_in(0.5, 500.0);
        let hi = lo + span;
        let interval = automatic_interval(lo, hi).unwrap();
        let levels = contour_levels(lo, hi, interval);
        assert!(!levels.is_empty());
        for w in levels.windows(2) {
            assert!((w[1] - w[0] - interval).abs() < 1e-9 * interval.max(1.0));
        }
        assert!(levels[0] >= lo - 1e-9 * span);
        assert!(*levels.last().unwrap() <= hi + 1e-9 * span);
    }
}

// ---------------------------------------------------------------------
// Mesh algorithms
// ---------------------------------------------------------------------

/// A jittered strip mesh, the staple random workload.
fn strip_mesh(cells: usize, jitter: &[f64]) -> TriMesh {
    let mut mesh = TriMesh::new();
    let mut ids = Vec::new();
    let mut k = 0;
    for j in 0..=1 {
        for i in 0..=cells {
            let dx = jitter.get(k).copied().unwrap_or(0.0) * 0.2;
            let dy = jitter.get(k + 1).copied().unwrap_or(0.0) * 0.2;
            k += 2;
            ids.push(mesh.add_node(
                Point::new(i as f64 + dx, j as f64 + dy),
                BoundaryKind::Boundary,
            ));
        }
    }
    let at = |i: usize, j: usize| ids[j * (cells + 1) + i];
    for i in 0..cells {
        mesh.add_element([at(i, 0), at(i + 1, 0), at(i + 1, 1)]).unwrap();
        mesh.add_element([at(i, 0), at(i + 1, 1), at(i, 1)]).unwrap();
    }
    mesh
}

/// Cuthill–McKee always yields a valid permutation and never loses
/// connectivity.
#[test]
fn cuthill_mckee_is_a_permutation() {
    let mut rng = Rng::new(0x4a1);
    for _ in 0..64 {
        let cells = rng.usize_in(2, 19);
        let n = rng.usize_in(0, 79);
        let jitter = rng.vec_f64(-1.0, 1.0, n);
        let mesh = strip_mesh(cells, &jitter);
        let perm = cuthill_mckee(&mesh);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..mesh.node_count()).collect::<Vec<_>>());
        let mut renumbered = mesh.clone();
        renumbered.renumber_nodes(&perm);
        assert_eq!(renumbered.element_count(), mesh.element_count());
        assert!((renumbered.total_area() - mesh.total_area()).abs() < 1e-9);
        assert_eq!(renumbered.boundary_edges().len(), mesh.boundary_edges().len());
    }
}

/// Reforming never shrinks the minimum angle, never changes area, node
/// positions, or the boundary.
#[test]
fn reform_invariants() {
    let mut rng = Rng::new(0x4a2);
    for _ in 0..64 {
        let cells = rng.usize_in(2, 14);
        let n = rng.usize_in(0, 63);
        let jitter = rng.vec_f64(-1.0, 1.0, n);
        let mut mesh = strip_mesh(cells, &jitter);
        if mesh.validate().is_err() {
            continue;
        }
        let area = mesh.total_area();
        let min_angle = mesh.quality().min_angle;
        let boundary = mesh.boundary_edges();
        let report = reform_elements(&mut mesh, 20);
        assert!(report.min_angle_after >= min_angle - 1e-12);
        assert!((mesh.total_area() - area).abs() < 1e-9 * area);
        assert_eq!(mesh.boundary_edges(), boundary);
        assert!(mesh.validate().is_ok());
    }
}

/// Uniform refinement preserves area, boundary length, and the mesh
/// minimum angle, and exactly quadruples the element count.
#[test]
fn refinement_invariants() {
    let mut rng = Rng::new(0x4a3);
    for _ in 0..64 {
        let cells = rng.usize_in(2, 9);
        let n = rng.usize_in(0, 47);
        let jitter = rng.vec_f64(-1.0, 1.0, n);
        let coarse = strip_mesh(cells, &jitter);
        if coarse.validate().is_err() {
            continue;
        }
        let fine = coarse.refined();
        assert!(fine.validate().is_ok());
        assert_eq!(fine.element_count(), 4 * coarse.element_count());
        assert!((fine.total_area() - coarse.total_area()).abs() < 1e-9);
        assert!((fine.quality().min_angle - coarse.quality().min_angle).abs() < 1e-9);
        let outline = |m: &TriMesh| -> f64 {
            m.boundary_edges()
                .iter()
                .map(|e| m.node(e.0).position.distance_to(m.node(e.1).position))
                .sum()
        };
        assert!((outline(&fine) - outline(&coarse)).abs() < 1e-9);
    }
}

/// Doubling a mesh (all nodes duplicated) and merging restores the
/// original node count and total area exactly.
#[test]
fn merge_undoes_duplication() {
    let mut rng = Rng::new(0x4a4);
    for _ in 0..64 {
        let cells = rng.usize_in(2, 9);
        let n = rng.usize_in(0, 47);
        let jitter = rng.vec_f64(-1.0, 1.0, n);
        let base = strip_mesh(cells, &jitter);
        if base.validate().is_err() {
            continue;
        }
        // Rebuild with every node stored twice; elements alternate
        // between the two copies.
        let mut doubled = TriMesh::new();
        let mut first = Vec::new();
        let mut second = Vec::new();
        for (_, node) in base.nodes() {
            first.push(doubled.add_node(node.position, node.boundary));
        }
        for (_, node) in base.nodes() {
            second.push(doubled.add_node(node.position, node.boundary));
        }
        for (i, (_, el)) in base.elements().enumerate() {
            let pick = |n: cafemio::mesh::NodeId| {
                if i % 2 == 0 {
                    first[n.index()]
                } else {
                    second[n.index()]
                }
            };
            doubled
                .add_element([pick(el.nodes[0]), pick(el.nodes[1]), pick(el.nodes[2])])
                .unwrap();
        }
        let removed = doubled.merge_coincident_nodes(1e-9);
        assert_eq!(removed, base.node_count());
        assert_eq!(doubled.node_count(), base.node_count());
        assert!((doubled.total_area() - base.total_area()).abs() < 1e-9);
        assert!(doubled.validate().is_ok());
    }
}

/// Polyline chaining conserves total contour length and never drops a
/// segment.
#[test]
fn polyline_chaining_conserves_length() {
    let mut rng = Rng::new(0x4a5);
    for _ in 0..64 {
        let cells = rng.usize_in(2, 9);
        let n = rng.usize_in(6, 21);
        let values = rng.vec_f64(-40.0, 40.0, n);
        let t = rng.f64_in(0.15, 0.85);
        let mesh = strip_mesh(cells, &[]);
        if values.len() < mesh.node_count() {
            continue;
        }
        let field = NodalField::new("S", values[..mesh.node_count()].to_vec());
        let (lo, hi) = field.min_max().unwrap();
        if hi - lo <= 1.0 {
            continue;
        }
        let level = lo + t * (hi - lo);
        let isograms = extract_isograms(&mesh, &field, &[level]).unwrap();
        let chains = isograms[0].polylines(1e-9);
        let chained: f64 = chains
            .iter()
            .map(|c| c.windows(2).map(|w| w[0].distance_to(w[1])).sum::<f64>())
            .sum();
        assert!((chained - isograms[0].length()).abs() < 1e-9);
        let points: usize = chains.iter().map(|c| c.len() - 1).sum();
        assert_eq!(points, isograms[0].segments.len());
    }
}

/// Every isogram segment endpoint interpolates exactly to its level, and
/// levels outside the field range draw nothing.
#[test]
fn isogram_interpolation_exact() {
    let mut rng = Rng::new(0x4a6);
    for _ in 0..64 {
        let cells = rng.usize_in(2, 9);
        let n = rng.usize_in(6, 21);
        let values = rng.vec_f64(-50.0, 50.0, n);
        let t = rng.f64_in(0.1, 0.9);
        let mesh = strip_mesh(cells, &[]);
        if values.len() < mesh.node_count() {
            continue;
        }
        let values = &values[..mesh.node_count()];
        let field = NodalField::new("S", values.to_vec());
        let (lo, hi) = field.min_max().unwrap();
        if hi - lo <= 1.0 {
            continue;
        }
        let level = lo + t * (hi - lo);
        let isograms = extract_isograms(&mesh, &field, &[level, hi + 10.0]).unwrap();
        assert!(isograms[1].segments.is_empty());
        for seg in &isograms[0].segments {
            for p in [seg.a, seg.b] {
                // Find the element containing p and interpolate.
                let mut matched = false;
                for (id, el) in mesh.elements() {
                    let tri = mesh.triangle(id);
                    if let Some(w) = tri.barycentric(p) {
                        if w.iter().all(|&wi| wi >= -1e-9) {
                            let v = w[0] * field.value(el.nodes[0])
                                + w[1] * field.value(el.nodes[1])
                                + w[2] * field.value(el.nodes[2]);
                            assert!((v - level).abs() < 1e-6, "v {v} level {level}");
                            matched = true;
                            break;
                        }
                    }
                }
                assert!(matched, "segment endpoint outside the mesh");
            }
        }
    }
}

/// Audit property: for random jittered strip models under random loads,
/// the solution of *every* backend — band (the default), dense, and
/// skyline — passes the residual and equilibrium audit at 1e-8, and the
/// backends agree with each other to the strict differential bound.
#[test]
fn every_backend_passes_the_residual_audit() {
    use cafemio::audit::{
        check_differential, check_solution, check_sparse_differential, AuditOptions,
    };
    use cafemio::fem::{AnalysisKind, FemModel, Material};

    let mut rng = Rng::new(0x4a7);
    let options = AuditOptions::strict();
    for _ in 0..24 {
        let cells = rng.usize_in(2, 9);
        let n = rng.usize_in(0, 39);
        let jitter = rng.vec_f64(-1.0, 1.0, n);
        let mesh = strip_mesh(cells, &jitter);
        let mut model = FemModel::new(
            mesh.clone(),
            AnalysisKind::PlaneStress {
                thickness: rng.f64_in(0.1, 2.0),
            },
            Material::isotropic(rng.f64_in(1.0e6, 5.0e7), rng.f64_in(0.05, 0.45)),
        );
        for (id, node) in mesh.nodes() {
            if node.position.x < 0.5 {
                model.fix_both(id);
            } else if node.position.x > cells as f64 - 0.5 {
                model.add_force(id, rng.f64_in(-40.0, 40.0), rng.f64_in(-40.0, 40.0));
            }
        }
        let band = model.solve().unwrap();
        let dense = model.solve_dense().unwrap();
        let skyline = model.solve_skyline().unwrap();
        let sparse = model.solve_sparse().unwrap();
        for (backend, solution) in [
            ("band", &band),
            ("dense", &dense),
            ("skyline", &skyline),
            ("sparse-cg", &sparse),
        ] {
            let checks = check_solution(&model, solution, &options)
                .unwrap_or_else(|e| panic!("{backend}: {e}"));
            assert_eq!(checks, 3, "{backend}");
        }
        check_differential(&model, &band, &options).unwrap();
        check_sparse_differential(&model, &band, &options).unwrap();
    }
}

//! The paper's specific numeric claims, tested as stated (experiments
//! C1–C3, F9, F12, T1, T2 in `DESIGN.md`).

use cafemio::idlz::{Idealization, IdlzError, Limits};
use cafemio::models::{catalog, hatch, plate};
use cafemio::ospl::{automatic_interval, extract_isograms, OsplError};
use cafemio::prelude::*;

/// Appendix D: "if the largest and smallest values to be plotted are
/// 50000 psi and 10000 psi, the determined interval would be 2500 psi."
#[test]
fn appendix_d_worked_example() {
    assert_eq!(automatic_interval(10_000.0, 50_000.0), Some(2_500.0));
}

/// Appendix D: "The procedure results in intervals of 1.0, 2.5, 5.0,
/// 10.0, 25.0, 50.0, etc."
#[test]
fn appendix_d_interval_series() {
    let mut range = 1.0f64;
    while range < 1.0e7 {
        let i = automatic_interval(0.0, range).unwrap();
        let mantissa = i / 10f64.powf(i.log10().floor());
        assert!(
            [1.0, 2.5, 5.0].iter().any(|b| (mantissa - b).abs() < 1e-9),
            "interval {i} has mantissa {mantissa}"
        );
        range *= 1.21;
    }
}

/// Figure 12: a triangle with corner values 5, 15, 35 is crossed by the
/// contours 10, 20, 30 ("Assuming an interval of 10 between lines, and
/// beginning with 10, it is seen that lines of value 10, 20, and 30 pass
/// through ABC").
#[test]
fn figure_12_exact() {
    let mut mesh = TriMesh::new();
    let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::BoundaryCorner);
    let b = mesh.add_node(Point::new(4.0, 0.0), BoundaryKind::BoundaryCorner);
    let c = mesh.add_node(Point::new(2.0, 3.0), BoundaryKind::BoundaryCorner);
    mesh.add_element([a, b, c]).unwrap();
    let field = NodalField::new("FIGURE 12", vec![5.0, 15.0, 35.0]);
    let result = Ospl::run(&mesh, &field, &ContourOptions::with_interval(10.0)).unwrap();
    let crossing: Vec<f64> = result
        .isograms
        .iter()
        .filter(|i| !i.segments.is_empty())
        .map(|i| i.level)
        .collect();
    assert_eq!(crossing, vec![10.0, 20.0, 30.0]);
    // And the low-level API agrees: one straight piece per level.
    let isograms = extract_isograms(&mesh, &field, &[10.0, 20.0, 30.0]).unwrap();
    assert!(isograms.iter().all(|i| i.segments.len() == 1));
}

/// Table 1: OSPL allows 800 nodes / 1000 elements; a mesh inside the
/// limits plots, one outside is rejected.
#[test]
fn table_1_boundary() {
    let build = |nx: i32, ny: i32| {
        let result = Idealization::run(&plate::spec(nx, ny, nx as f64, ny as f64)).unwrap();
        let n = result.mesh.node_count();
        let field = NodalField::new(
            "X",
            result.mesh.nodes().map(|(_, nd)| nd.position.x).collect(),
        );
        (result.mesh, field, n)
    };
    // 19 × 39 cells: 800 nodes exactly, 1482 elements — element limit
    // trips first.
    let (mesh, field, nodes) = build(19, 39);
    assert_eq!(nodes, 800);
    assert!(matches!(
        Ospl::run(&mesh, &field, &ContourOptions::new()).unwrap_err(),
        OsplError::LimitExceeded {
            what: "elements",
            ..
        }
    ));
    // 24 × 20 cells: 525 nodes, 960 elements — inside both limits.
    let (mesh, field, _) = build(24, 20);
    assert!(Ospl::run(&mesh, &field, &ContourOptions::new()).is_ok());
    // 27 × 29 cells: 840 nodes — the node limit trips.
    let (mesh, field, nodes) = build(27, 29);
    assert!(nodes > 800);
    assert!(matches!(
        Ospl::run(&mesh, &field, &ContourOptions::new()).unwrap_err(),
        OsplError::LimitExceeded { what: "nodes", .. }
    ));
}

/// Table 2: IDLZ allows 50 subdivisions, 850 elements, 500 nodes, and a
/// 40 × 60 definition grid.
#[test]
fn table_2_boundary() {
    // 15 × 16 cells = 272 nodes, 480 elements: inside.
    let mut inside = plate::spec(15, 16, 1.0, 1.0);
    inside.set_limits(Limits::historical());
    assert!(Idealization::run(&inside).is_ok());
    // 24 × 20 cells = 525 nodes: the node limit trips.
    let mut too_many_nodes = plate::spec(24, 20, 1.0, 1.0);
    too_many_nodes.set_limits(Limits::historical());
    assert!(matches!(
        Idealization::run(&too_many_nodes).unwrap_err(),
        IdlzError::LimitExceeded { what: "nodes", .. }
    ));
    // 20 × 22 cells = 483 nodes but 880 elements: the element limit trips.
    let mut too_many_elements = plate::spec(20, 22, 1.0, 1.0);
    too_many_elements.set_limits(Limits::historical());
    assert!(matches!(
        Idealization::run(&too_many_elements).unwrap_err(),
        IdlzError::LimitExceeded {
            what: "elements",
            ..
        }
    ));
    // Grid coordinate 41 trips regardless of counts.
    let mut too_wide = plate::spec(41, 1, 1.0, 1.0);
    too_wide.set_limits(Limits::historical());
    assert!(matches!(
        Idealization::run(&too_wide).unwrap_err(),
        IdlzError::LimitExceeded {
            what: "horizontal grid coordinate",
            ..
        }
    ));
}

/// C1: "the amount of input data required for IDLZ is less than five
/// percent of the data produced by IDLZ for the finite element analysis"
/// — true for the realistically sized models; small demonstration models
/// sit a little higher, and every model beats 40 %.
#[test]
fn input_output_data_ratio() {
    let mut beats_five_percent = 0;
    let mut total = 0;
    for entry in catalog() {
        let result = Idealization::run(&(entry.spec)()).unwrap();
        let fraction = result.stats.input_fraction();
        assert!(fraction < 0.40, "{}: {fraction}", entry.name);
        total += 1;
        if fraction < 0.05 {
            beats_five_percent += 1;
        }
    }
    assert!(total >= 10);
    // At realistic mesh densities the claim holds outright.
    let dense = Idealization::run(&plate::capacity_spec(450)).unwrap();
    assert!(dense.stats.input_fraction() < 0.02);
    let _ = beats_five_percent;
}

/// F9's economy claim: a complex boundary is located from very little
/// data ("100 boundary nodes needed coordinates of only 24 nodes and the
/// radii of eleven circular arcs").
#[test]
fn figure_9_boundary_economy() {
    let spec = hatch::dsrv_spec();
    let result = Idealization::run(&spec).unwrap();
    let econ = hatch::boundary_economy(&spec, &result.mesh);
    // Shape: boundary nodes per supplied coordinate pair well above 1.
    assert!(
        econ.boundary_nodes as f64 / econ.coordinates_supplied as f64 > 2.0,
        "{econ:?}"
    );
    assert!(econ.radii_supplied >= 4, "{econ:?}");
}

/// The reform pass (Figures 9b→9c, 10a→10b): needle elements are
/// eliminated or reduced, and the minimum angle never degrades.
#[test]
fn reform_improves_the_catalog() {
    for entry in catalog() {
        let result = Idealization::run(&(entry.spec)()).unwrap();
        assert!(
            result.reform.min_angle_after >= result.reform.min_angle_before - 1e-12,
            "{}",
            entry.name
        );
        assert!(
            result.reform.needles_after <= result.reform.needles_before,
            "{}",
            entry.name
        );
    }
}

/// Renumbering (the paper's Reference-2 scheme) narrows the bandwidth on
/// the structures where the initial left-right/bottom-top numbering is
/// poor, and never widens it.
#[test]
fn renumbering_never_hurts() {
    let mut improved = 0;
    for entry in catalog() {
        let result = Idealization::run(&(entry.spec)()).unwrap();
        assert!(
            result.stats.bandwidth_after <= result.stats.bandwidth_before,
            "{}",
            entry.name
        );
        if result.stats.bandwidth_after < result.stats.bandwidth_before {
            improved += 1;
        }
    }
    assert!(improved >= 3, "only {improved} models improved");
}

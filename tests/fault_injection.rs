//! Fault injection: the panic-free contract of the deck pipeline.
//!
//! Hundreds of systematically corrupted IDLZ decks — truncated cards,
//! garbage fields, zero-area subdivisions, out-of-range grid points,
//! over-quarter arcs, and singular boundary conditions — are driven
//! through the staged-session pipeline (`PipelineBuilder`) under
//! `catch_unwind`. Every case must fail with a structured
//! `PipelineError` attributed to the fault's stage; none may panic.
//!
//! The mutation engine lives in `cafemio_bench::mutate` (shared with the
//! CI `fuzz_smoke` binary) and is seeded explicitly, so any failure here
//! reproduces from the seed alone.

use std::panic::{catch_unwind, AssertUnwindSafe};

use cafemio::pipeline::{Idealized, PipelineBuilder, PipelineError, Stage};
use cafemio_bench::mutate::{base_decks, mutate, run_sweep, Fault, SplitMix64};

/// Parse + idealize through a staged session.
fn idealize(text: &str) -> Result<Idealized, PipelineError> {
    PipelineBuilder::new().parse(text)?.idealize()
}

/// The acceptance floor: at least this many mutated decks per sweep.
const MIN_CASES: usize = 200;

#[test]
fn mutated_decks_never_panic_and_always_attribute_a_stage() {
    let per_round = base_decks().len() * Fault::ALL.len();
    assert!(per_round > 0, "no catalog deck survives a round trip");
    let rounds = MIN_CASES.div_ceil(per_round);
    let report = run_sweep(0x0FF1_C1A1_DECC_5EED, rounds);
    assert!(
        report.cases >= MIN_CASES,
        "sweep ran only {} cases (need {MIN_CASES})",
        report.cases
    );
    assert!(
        report.failures.is_empty(),
        "{} of {} cases violated the panic-free contract:\n{}",
        report.failures.len(),
        report.cases,
        report.failures.join("\n")
    );
}

#[test]
fn every_catalog_deck_is_mutable_by_every_deck_fault() {
    // The mutator must actually change the text for every text fault —
    // an identity "mutation" would test nothing.
    let mut rng = SplitMix64::new(9);
    for (name, text) in base_decks() {
        for fault in Fault::ALL {
            let mutated = mutate(&text, fault, &mut rng);
            if fault == Fault::SingularBc {
                assert_eq!(mutated, text, "{name}: singular-bc must not edit the deck");
            } else {
                assert_ne!(mutated, text, "{name}/{} left the deck intact", fault.name());
            }
        }
    }
}

#[test]
fn truncated_decks_report_what_card_was_missing() {
    let (_, text) = &base_decks()[0];
    let mut rng = SplitMix64::new(3);
    let mutated = mutate(text, Fault::TruncateDeck, &mut rng);
    let err = idealize(&mutated).unwrap_err();
    assert_eq!(err.stage(), Stage::DeckParse);
    assert!(
        err.to_string().contains("deck ends where a"),
        "unexpected message: {err}"
    );
}

#[test]
fn deep_mutation_storm_stays_panic_free() {
    // Beyond the structured faults: hammer one deck with many seeds and
    // every fault kind, requiring only "no panic + stage attributed".
    let decks = base_decks();
    let (_, text) = &decks[decks.len() - 1];
    for seed in 0..40u64 {
        let mut rng = SplitMix64::new(seed);
        for fault in Fault::ALL {
            if fault == Fault::SingularBc {
                continue;
            }
            let mutated = mutate(text, fault, &mut rng);
            let outcome = catch_unwind(AssertUnwindSafe(|| idealize(&mutated)));
            let result = outcome.unwrap_or_else(|_| {
                panic!("seed {seed}/{} panicked", fault.name());
            });
            let err = result.expect_err("mutated deck must not idealize");
            assert_eq!(err.stage(), fault.expected_stage(), "seed {seed}: {err}");
        }
    }
}

//! End-to-end contracts of the content-addressed stage cache.
//!
//! Four promises are pinned here:
//!
//! 1. A warm rerun is **bit-identical** to its cold run — and to a run
//!    with no cache at all — for every catalog deck.
//! 2. Failures are never memoized: driving every fault-injected deck
//!    mutation through a shared store leaves the original deck's warm
//!    rerun untouched, and the faulted run's error is identical to the
//!    one a fresh store produces.
//! 3. An edit that touches only one stage (a contour-interval change)
//!    answers every upstream stage from the store — zero `fem.*` spans
//!    on the warm run — and still produces output bit-identical to an
//!    uncached session.
//! 4. With audit mode on, an edited shape line re-idealizes
//!    incrementally (unedited subdivisions reused) and the audit
//!    invariants are re-derived on the incrementally-produced mesh,
//!    which is bit-identical to a cold idealization of the edited spec.
//!
//! The instrument collector is process-global and tests in one binary
//! run concurrently, so every test here serializes on one lock — a
//! neighbour's spans would otherwise bleed into the drained reports.

use std::sync::{Arc, Mutex, MutexGuard};

use cafemio::prelude::*;
use cafemio_bench::jobs::standard_setup;
use cafemio_bench::mutate::{base_decks, mutate, unconstrained_model, Fault, SplitMix64};

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// One full staged session over deck text: parse through contouring of
/// the effective stress, with the caller's config and contour options.
fn run_full(
    config: &SessionConfig,
    text: &str,
    options: &ContourOptions,
) -> Result<Vec<StressPlot>, PipelineError> {
    PipelineBuilder::new()
        .config(config.clone())
        .component(StressComponent::Effective)
        .contour_options(options.clone())
        .parse(text)?
        .idealize()?
        .setup(standard_setup)?
        .solve()?
        .recover()?
        .contour()
}

/// Drives one fault-injected deck as far as its fault allows.
/// [`Fault::SingularBc`] leaves the deck intact and fails at solve; the
/// others fail at parse or idealize.
fn run_faulted(
    config: &SessionConfig,
    text: &str,
    fault: Fault,
) -> Result<(), PipelineError> {
    let builder = PipelineBuilder::new().config(config.clone());
    match fault {
        Fault::SingularBc => {
            builder
                .parse(text)?
                .idealize()?
                .setup(unconstrained_model)?
                .solve()?
                .recover()?
                .contour()?;
        }
        _ => {
            builder.parse(text)?.idealize()?;
        }
    }
    Ok(())
}

#[test]
fn warm_reruns_are_bit_identical_to_cold_across_the_catalog() {
    let _guard = lock();
    let options = ContourOptions::new();
    for (name, text) in &base_decks() {
        let store = Arc::new(StageCache::new());
        let cached = SessionConfig::new().cache(Arc::clone(&store));
        let cold = run_full(&cached, text, &options)
            .unwrap_or_else(|e| panic!("{name}: cold run failed: {e}"));
        let seeded = store.stats();
        assert!(seeded.misses >= 5, "{name}: cold run should miss every stage");
        assert!(seeded.entries >= 5, "{name}: cold run should populate the store");
        assert_eq!(seeded.hits, 0, "{name}: nothing to hit on a cold store");

        let warm = run_full(&cached, text, &options).unwrap();
        let after = store.stats();
        assert!(
            after.hits >= seeded.hits + 5,
            "{name}: warm run should answer every stage from the store ({after:?})"
        );
        assert_eq!(
            after.misses, seeded.misses,
            "{name}: warm run should miss nothing"
        );

        // Equal values and equal Debug renderings: the Debug form
        // round-trips every f64, so equal strings mean bit-identical
        // floats.
        assert_eq!(cold, warm, "{name}: warm rerun diverged");
        assert_eq!(format!("{cold:?}"), format!("{warm:?}"), "{name}");
        let plain = run_full(&SessionConfig::new(), text, &options).unwrap();
        assert_eq!(
            format!("{cold:?}"),
            format!("{plain:?}"),
            "{name}: caching changed the output"
        );
    }
}

#[test]
fn mutated_decks_fail_identically_warm_and_cold_and_never_poison_the_store() {
    let _guard = lock();
    let options = ContourOptions::new();
    let mut rng = SplitMix64::new(0xCAFE_F00D);
    for (name, text) in &base_decks() {
        let store = Arc::new(StageCache::new());
        let cached = SessionConfig::new().cache(Arc::clone(&store));
        let cold = run_full(&cached, text, &options)
            .unwrap_or_else(|e| panic!("{name}: cold run failed: {e}"));
        for fault in Fault::ALL {
            let mutated = mutate(text, fault, &mut rng);
            // Through the shared (warm) store...
            let warm_err = run_faulted(&cached, &mutated, fault).expect_err(&format!(
                "{name}/{}: mutated deck unexpectedly succeeded warm",
                fault.name()
            ));
            // ...and through a fresh store, cold.
            let fresh = SessionConfig::new().cache(Arc::new(StageCache::new()));
            let cold_err = run_faulted(&fresh, &mutated, fault).expect_err(&format!(
                "{name}/{}: mutated deck unexpectedly succeeded cold",
                fault.name()
            ));
            assert_eq!(
                warm_err.stage(),
                fault.expected_stage(),
                "{name}/{}: {warm_err}",
                fault.name()
            );
            assert_eq!(
                format!("{warm_err:?}"),
                format!("{cold_err:?}"),
                "{name}/{}: warm error diverged from cold",
                fault.name()
            );
        }
        // None of the faulted runs may have cached a failure or clobbered
        // a good artifact: the original deck's warm rerun is still
        // bit-identical to its cold run.
        let warm = run_full(&cached, text, &options).unwrap();
        assert_eq!(
            format!("{cold:?}"),
            format!("{warm:?}"),
            "{name}: a faulted run poisoned the cache"
        );
    }
}

#[test]
fn a_contour_only_edit_reuses_every_upstream_artifact() {
    let _guard = lock();
    let (name, text) = &base_decks()[0];
    let store = Arc::new(StageCache::new());
    let cached = SessionConfig::new().cache(Arc::clone(&store));
    run_full(&cached, text, &ContourOptions::new())
        .unwrap_or_else(|e| panic!("{name}: cold run failed: {e}"));
    let before = store.stats();

    // Edit only the contour request and rerun warm, with the collector
    // watching.
    let edited = ContourOptions::new().interval(750.0);
    cafemio_instrument::set_enabled(true);
    let _ = cafemio_instrument::take_report();
    let warm = run_full(&cached, text, &edited).unwrap();
    let report = cafemio_instrument::take_report();
    cafemio_instrument::set_enabled(false);
    let after = store.stats();

    // The solver never ran: parse, idealize, solve, and stress recovery
    // all answered from the store.
    let fem_spans: Vec<&str> = report
        .spans
        .iter()
        .map(|s| s.name.as_str())
        .filter(|n| n.starts_with("fem."))
        .collect();
    assert!(
        fem_spans.is_empty(),
        "{name}: contour-only edit still ran the solver: {fem_spans:?}"
    );
    assert!(
        after.hits >= before.hits + 4,
        "{name}: upstream stages should all hit ({before:?} -> {after:?})"
    );
    assert_eq!(
        after.misses,
        before.misses + 1,
        "{name}: only the contour stage should miss"
    );
    // The cache.hits counter carries the store's running total, not a
    // per-event value.
    assert_eq!(
        report.counter("cache.hits"),
        Some(after.hits),
        "{name}: cache.hits counter out of step with the store"
    );

    // And the incrementally-answered session is bit-identical to an
    // uncached one with the same edited options.
    let plain = run_full(&SessionConfig::new(), text, &edited).unwrap();
    assert_eq!(
        format!("{warm:?}"),
        format!("{plain:?}"),
        "{name}: warm contour edit diverged from the uncached session"
    );
}

/// Every spec obtainable from `spec` by nudging one straight shape line
/// a hair (1e-6) upward — the "analyst edits one Type-6 card" scenario.
fn nudged_specs(spec: &IdealizationSpec) -> Vec<IdealizationSpec> {
    let straights = spec
        .shape_lines()
        .values()
        .flatten()
        .filter(|l| !l.is_arc())
        .count();
    (0..straights)
        .map(|pick| {
            let mut out = IdealizationSpec::new(spec.title());
            out.set_options(spec.options());
            out.set_limits(spec.limits());
            out.set_punch_formats(spec.nodal_format(), spec.element_format());
            for sub in spec.subdivisions() {
                out.add_subdivision(*sub);
            }
            let mut straight_seen = 0;
            for (&id, lines) in spec.shape_lines() {
                for line in lines {
                    let mut line = *line;
                    if !line.is_arc() {
                        if straight_seen == pick {
                            line.start.y += 1.0e-6;
                        }
                        straight_seen += 1;
                    }
                    out.add_shape_line(id, line);
                }
            }
            out
        })
        .collect()
}

#[test]
fn audit_mode_re_derives_invariants_on_incrementally_produced_meshes() {
    let _guard = lock();
    // A catalog structure with several subdivisions and at least one
    // straight shape line to edit.
    let spec = cafemio_models::catalog()
        .into_iter()
        .map(|entry| (entry.spec)())
        .find(|s| {
            s.subdivisions().len() >= 2
                && s.shape_lines().values().flatten().any(|l| !l.is_arc())
        })
        .expect("catalog has a multi-subdivision spec with a straight shape line");

    let strict = SessionConfig::new().audit(AuditOptions::strict());
    let run_specs = |config: &SessionConfig, spec: &IdealizationSpec| {
        PipelineBuilder::new()
            .config(config.clone())
            .specs(vec![spec.clone()])
            .idealize()
    };
    // Not every hair-nudged line survives strict audit (a moved endpoint
    // another line also locates would disagree); pick the first edit
    // that idealizes cleanly.
    let edited = nudged_specs(&spec)
        .into_iter()
        .find(|candidate| run_specs(&strict, candidate).is_ok())
        .expect("some nudged spec passes strict audit");
    assert_ne!(edited, spec, "the nudge must actually change the spec");

    let store = Arc::new(StageCache::new());
    let audited = strict.clone().cache(Arc::clone(&store));
    // Cold run seeds the store and its incremental region table.
    run_specs(&audited, &spec).expect("cold idealization under strict audit");

    // The edited spec re-idealizes incrementally; the collector proves
    // both the reuse and the audit re-check.
    cafemio_instrument::set_enabled(true);
    let _ = cafemio_instrument::take_report();
    let warm = run_specs(&audited, &edited).expect("incremental idealization under strict audit");
    let report = cafemio_instrument::take_report();
    cafemio_instrument::set_enabled(false);

    assert!(
        report.counter("idlz.incremental.reused_subdivisions").unwrap_or(0) >= 1,
        "unedited subdivisions should be reused: {:?}",
        report.counters
    );
    assert!(
        report
            .counter("idlz.incremental.regenerated_subdivisions")
            .unwrap_or(0)
            >= 1,
        "the edited subdivision must regenerate"
    );
    assert!(
        report.spans.iter().any(|s| s.name == "audit.idealize"),
        "audit must re-derive its invariants on the incremental mesh"
    );

    // The incrementally-produced result is bit-identical to a cold,
    // cache-less idealization of the edited spec.
    let cold = run_specs(&strict, &edited).unwrap();
    assert_eq!(
        format!("{:?}", warm.sets()),
        format!("{:?}", cold.sets()),
        "incremental mesh diverged from the cold mesh"
    );
}

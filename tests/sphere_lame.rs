//! Closed-form validation of the axisymmetric substrate on a thick
//! spherical shell under external pressure — the geometry of every
//! deep-submergence structure in the paper's figures.

use cafemio::fem::StressField;
use cafemio::idlz::{Idealization, IdealizationSpec, Limits};
use cafemio::models::shells::add_shell_sector;
use cafemio::models::support::{apply_pressure_where, fix_axis, fix_y_where, SELECT_TOL};
use cafemio::prelude::*;

const RI: f64 = 10.0;
const RO: f64 = 12.0;
const P: f64 = 1000.0;

/// A full hemisphere of shell, meshed fine enough for a 10 % comparison.
fn hemisphere() -> TriMesh {
    let mut spec = IdealizationSpec::new("THICK HEMISPHERE");
    spec.set_limits(Limits::unbounded());
    // Two 45° bands, 3 columns through the thickness.
    add_shell_sector(&mut spec, 1, (0, 0), (3, 8), Point::ORIGIN, RI, RO, 90.0, 45.0);
    add_shell_sector(&mut spec, 2, (0, 8), (3, 16), Point::ORIGIN, RI, RO, 45.0, 0.0);
    Idealization::run(&spec).unwrap().mesh.refined()
}

/// Lamé thick sphere under external pressure: tangential stress
/// σθ(r) = −p·ro³·(2r³ + ri³) / (2r³·(ro³ − ri³)).
fn hoop_exact(r: f64) -> f64 {
    -P * RO.powi(3) * (2.0 * r.powi(3) + RI.powi(3))
        / (2.0 * r.powi(3) * (RO.powi(3) - RI.powi(3)))
}

#[test]
fn thick_sphere_matches_lame() {
    let mesh = hemisphere();
    let mut model = FemModel::new(
        mesh.clone(),
        AnalysisKind::Axisymmetric,
        Material::isotropic(1.0e7, 0.3),
    );
    fix_axis(&mut model);
    // Equator symmetry plane: no axial motion.
    fix_y_where(&mut model, |p| p.y.abs() < SELECT_TOL);
    // External pressure on the outer sphere (generous sag tolerance for
    // the polygonal meridian).
    let loaded = apply_pressure_where(&mut model, P, |p| {
        p.distance_to(Point::ORIGIN) > RO - 0.05
    })
    .unwrap();
    assert!(loaded >= 16, "outer surface loaded ({loaded} edges)");
    let solution = model.solve().unwrap();
    let stresses = StressField::compute(&model, &solution).unwrap();

    // Compare the hoop stress at mid-thickness nodes away from the
    // equator and pole (where the coarse boundary treatment bites).
    let r_mid = 0.5 * (RI + RO);
    let mut checked = 0;
    for (id, node) in model.mesh().nodes() {
        let r = node.position.distance_to(Point::ORIGIN);
        let phi = node.position.x.atan2(node.position.y).to_degrees();
        if (r - r_mid).abs() < 0.2 && (30.0..60.0).contains(&phi) {
            let measured = stresses.node(id).circumferential;
            let exact = hoop_exact(r);
            let err = (measured - exact).abs() / exact.abs();
            assert!(
                err < 0.10,
                "at r = {r:.2}, phi = {phi:.0}: {measured:.0} vs {exact:.0} ({err:.3})"
            );
            checked += 1;
        }
    }
    assert!(checked >= 3, "checked {checked} mid-thickness nodes");
}

#[test]
fn displacement_is_purely_radial_in_the_sphere() {
    // Spherical symmetry: every node's displacement vector points along
    // its own radius (within discretization error).
    let mesh = hemisphere();
    let mut model = FemModel::new(
        mesh.clone(),
        AnalysisKind::Axisymmetric,
        Material::isotropic(1.0e7, 0.3),
    );
    fix_axis(&mut model);
    fix_y_where(&mut model, |p| p.y.abs() < SELECT_TOL);
    apply_pressure_where(&mut model, P, |p| p.distance_to(Point::ORIGIN) > RO - 0.05).unwrap();
    let solution = model.solve().unwrap();
    let mut worst_angle: f64 = 0.0;
    for (id, node) in model.mesh().nodes() {
        let (u, w) = solution.displacement(id);
        let disp = cafemio::geom::Vector::new(u, w);
        let radial = node.position - Point::ORIGIN;
        if disp.norm() < 1e-9 || radial.norm() < 1e-9 {
            continue;
        }
        let cos = disp.dot(radial) / (disp.norm() * radial.norm());
        // Compression: displacement anti-parallel to the radius.
        worst_angle = worst_angle.max(1.0 + cos);
    }
    assert!(worst_angle < 0.05, "max misalignment {worst_angle}");
}

//! Large-mesh mode and sparse-CG backend integration tests: the
//! iterative solver against the direct ones across the whole catalog,
//! the typed non-convergence error, and the capability wiring that
//! lifts the Table-2 card limits (and keeps the D004 proximity lint
//! honest about which limits are active).

use cafemio::fem::{CgOptions, FemError, Material, SolverBackend};
use cafemio::geom::Point;
use cafemio::idlz::{Capability, Idealization, IdealizationSpec, ShapeLine, Subdivision};
use cafemio::lint::{LintCode, LintConfig, Severity};
use cafemio::models::catalog;
use cafemio::pipeline::{PipelineBuilder, Stage, StageError};
use cafemio::SessionConfig;
use cafemio_bench::jobs::standard_setup;

/// The iterative backend must agree with the skyline factorization to
/// the audit's iterative bound (1e-8) on every structure of the paper —
/// the property the sparse differential audit enforces one model at a
/// time, checked here across the full catalog.
#[test]
fn sparse_cg_matches_skyline_on_every_catalog_model() {
    for entry in catalog() {
        let result = Idealization::run(&(entry.spec)()).unwrap();
        let model = standard_setup(&result.mesh).unwrap();
        let skyline = model.solve_skyline().unwrap();
        let sparse = model
            .solve_sparse()
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let magnitude = skyline
            .dofs()
            .iter()
            .fold(0.0f64, |m, u| m.max(u.abs()))
            .max(f64::MIN_POSITIVE);
        let divergence = skyline
            .dofs()
            .iter()
            .zip(sparse.dofs())
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
            / magnitude;
        assert!(
            divergence <= 1e-8,
            "{}: sparse-cg diverges from skyline by {divergence:e}",
            entry.name
        );
    }
}

/// An ill-conditioned model (12 orders of magnitude of stiffness
/// contrast) under a starved iteration budget must fail with the typed
/// [`FemError::CgNoConvergence`] carrying the budget, the reached
/// residual, and the tolerance — not a panic, not a silently wrong
/// answer.
#[test]
fn cg_non_convergence_is_a_typed_error() {
    let mut spec = IdealizationSpec::new("ILL CONDITIONED STRIP");
    spec.add_subdivision(Subdivision::rectangular(1, (0, 0), (8, 2)).unwrap());
    spec.add_shape_line(
        1,
        ShapeLine::straight((0, 0), (8, 0), Point::new(0.0, 0.0), Point::new(8.0, 0.0)),
    );
    spec.add_shape_line(
        1,
        ShapeLine::straight((0, 2), (8, 2), Point::new(0.0, 2.0), Point::new(8.0, 2.0)),
    );
    let result = Idealization::run(&spec).unwrap();
    let mut model = standard_setup(&result.mesh).unwrap();
    // Soft left half, rigid right half: a stiffness contrast the Jacobi
    // preconditioner cannot flatten in a handful of iterations.
    for (id, _) in result.mesh.elements() {
        if result.mesh.triangle(id).centroid().x > 4.0 {
            model.set_element_material(id, Material::isotropic(3.0e13, 0.3));
        } else {
            model.set_element_material(id, Material::isotropic(30.0, 0.3));
        }
    }
    let starved = CgOptions::new()
        .with_tolerance(1e-14)
        .with_max_iterations(10);
    let err = model.solve_sparse_with(&starved).unwrap_err();
    match err {
        FemError::CgNoConvergence {
            iterations,
            residual,
            tolerance,
        } => {
            assert_eq!(iterations, 10);
            assert!(residual > tolerance, "residual {residual:e}");
            assert_eq!(tolerance, 1e-14);
        }
        other => panic!("expected CgNoConvergence, got {other}"),
    }
    let message = model.solve_sparse_with(&starved).unwrap_err().to_string();
    assert!(
        message.starts_with("conjugate gradient did not converge in 10 iterations"),
        "{message}"
    );
}

/// A spec legal under Table 2 but within 10 % of the horizontal grid
/// limit (38 of 40). D004 must fire under the historical capability and
/// stay silent under `LargeMesh` — the lint reads the *active* limits
/// the pipeline installs, not Table 2 unconditionally.
fn near_limit_spec() -> IdealizationSpec {
    let mut spec = IdealizationSpec::new("NEAR THE GRID LIMIT");
    spec.add_subdivision(Subdivision::rectangular(1, (0, 0), (38, 2)).unwrap());
    spec.add_shape_line(
        1,
        ShapeLine::straight((0, 0), (38, 0), Point::new(0.0, 0.0), Point::new(38.0, 0.0)),
    );
    spec.add_shape_line(
        1,
        ShapeLine::straight((0, 2), (38, 2), Point::new(0.0, 1.0), Point::new(38.0, 1.0)),
    );
    spec
}

#[test]
fn d004_reads_the_active_capability_limits() {
    let deny_proximity = LintConfig::new().with(LintCode::GridLimitProximity, Severity::Deny);

    // Historical limits: 38 is within 10 % of Table 2's 40 — denied.
    let err = PipelineBuilder::new()
        .config(SessionConfig::new().lint(deny_proximity.clone()))
        .specs(vec![near_limit_spec()])
        .idealize()
        .unwrap_err();
    assert_eq!(err.stage(), Stage::DeckParse);
    match err.source_error() {
        StageError::Lint(lint) => {
            assert!(lint
                .diagnostics
                .iter()
                .all(|d| d.code == LintCode::GridLimitProximity));
        }
        other => panic!("expected a lint denial, got {other:?}"),
    }

    // Large-mesh limits: nowhere near i32::MAX — clean, no false warning.
    let idealized = PipelineBuilder::new()
        .config(
            SessionConfig::new()
                .capability(Capability::LargeMesh)
                .lint(deny_proximity),
        )
        .specs(vec![near_limit_spec()])
        .idealize()
        .unwrap();
    assert_eq!(idealized.sets().len(), 1);
}

/// A spec beyond Table 2 must fail idealization under the default
/// (historical) capability and succeed under `LargeMesh`, with the
/// sparse backend solving what the direct path never could in 1970.
#[test]
fn large_mesh_capability_lifts_the_table2_ceiling() {
    let mut spec = IdealizationSpec::new("BEYOND TABLE 2");
    // 50 > max_grid_x = 40, and 51 × 11 = 561 nodes > 500.
    spec.add_subdivision(Subdivision::rectangular(1, (0, 0), (50, 10)).unwrap());
    spec.add_shape_line(
        1,
        ShapeLine::straight((0, 0), (50, 0), Point::new(0.0, 0.0), Point::new(50.0, 0.0)),
    );
    spec.add_shape_line(
        1,
        ShapeLine::straight(
            (0, 10),
            (50, 10),
            Point::new(0.0, 10.0),
            Point::new(50.0, 10.0),
        ),
    );

    let err = PipelineBuilder::new()
        .specs(vec![spec.clone()])
        .idealize()
        .unwrap_err();
    assert_eq!(err.stage(), Stage::Idealize);

    let solved = PipelineBuilder::new()
        .config(
            SessionConfig::new()
                .capability(Capability::LargeMesh)
                .solver(SolverBackend::SparseCg),
        )
        .specs(vec![spec])
        .idealize()
        .unwrap()
        .setup(standard_setup)
        .unwrap()
        .solve()
        .unwrap();
    let reference = PipelineBuilder::new()
        .config(SessionConfig::new().capability(Capability::LargeMesh))
        .specs(vec![near_limit_spec()])
        .idealize()
        .unwrap()
        .setup(standard_setup)
        .unwrap()
        .solve()
        .unwrap();
    // Both sessions solved; the sparse one on a mesh the historical
    // limits reject outright.
    assert!(solved.cases()[0].solution().max_displacement() > 0.0);
    assert!(reference.cases()[0].solution().max_displacement() > 0.0);
}

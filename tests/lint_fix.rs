//! Property tests for the auto-fix engine over the fault-mutator corpus:
//! on every deck `apply_fixes` can parse — catalog decks, golden lint
//! decks, fix-corpus decks, and hundreds of mutated variants — fixing
//! must **converge** (well under the pass bound) and be **idempotent**
//! (fixing the fixed text changes nothing). Decks the mutator breaks
//! beyond parsing must fail with a typed parse error, never a
//! convergence failure or a panic.

use cafemio::lint::{
    apply_fixes, fix_cases, golden_cases, DeckKind, FixError, LintConfig, MAX_PASSES,
};
use cafemio_bench::mutate::{base_decks, mutate, Fault, SplitMix64};

/// Fix, assert convergence + idempotence, and return the outcome's text.
/// `None` when the deck does not parse (a legitimate mutator outcome).
fn fix_and_check(label: &str, text: &str, kind: DeckKind) -> Option<String> {
    let config = LintConfig::new();
    let outcome = match apply_fixes(text, kind, &config) {
        Ok(outcome) => outcome,
        Err(FixError::Parse(_)) => return None,
        Err(e @ FixError::NoConvergence { .. }) => panic!("{label}: {e}"),
    };
    // Convergence: the engine reports how many passes it ran, and the
    // bound exists to catch oscillating fixes — real decks settle fast.
    assert!(
        outcome.passes <= MAX_PASSES,
        "{label}: {} passes",
        outcome.passes
    );
    // No machine-applicable fix may survive on the repaired text.
    let refix = apply_fixes(&outcome.text, kind, &config)
        .unwrap_or_else(|e| panic!("{label}: repaired deck must re-parse: {e}"));
    assert_eq!(
        refix.text, outcome.text,
        "{label}: apply_fixes is not idempotent"
    );
    assert!(
        refix.applied.is_empty(),
        "{label}: second fix pass applied {:?}",
        refix.applied
    );
    Some(outcome.text)
}

#[test]
fn fixing_is_idempotent_and_convergent_on_clean_catalog_decks() {
    for (name, text) in base_decks() {
        let fixed = fix_and_check(name, &text, DeckKind::Idlz)
            .unwrap_or_else(|| panic!("{name}: catalog deck must parse"));
        // Clean decks are returned verbatim — no gratuitous rewrites.
        assert_eq!(fixed, text, "{name}: clean deck was rewritten");
    }
}

#[test]
fn fixing_is_idempotent_and_convergent_on_the_golden_corpus() {
    for case in golden_cases() {
        fix_and_check(case.code.code(), case.deck, case.kind);
    }
}

#[test]
fn fixing_is_idempotent_and_convergent_on_the_fix_corpus() {
    for case in fix_cases() {
        let fixed = fix_and_check(case.code.code(), case.before, case.kind)
            .unwrap_or_else(|| panic!("{}: before-deck must parse", case.code.code()));
        assert_eq!(fixed, case.after, "{}: wrong repair", case.code.code());
    }
}

#[test]
fn fixing_survives_the_fault_mutator_corpus() {
    let mut rng = SplitMix64::new(0x1970_CAFE_F1D0_0001);
    let mut parsed = 0usize;
    let mut rejected = 0usize;
    for round in 0..4 {
        for (name, text) in base_decks() {
            for fault in Fault::ALL {
                let mutated = mutate(&text, fault, &mut rng);
                let label = format!("{name}/{}/round{round}", fault.name());
                match fix_and_check(&label, &mutated, DeckKind::Idlz) {
                    Some(_) => parsed += 1,
                    None => rejected += 1,
                }
            }
        }
    }
    // The mutator produces both parseable and unparseable decks; the
    // property holds on every parseable one, and the split proves both
    // branches were exercised.
    assert!(parsed > 0, "no mutated deck parsed ({rejected} rejected)");
    assert!(rejected > 0, "no mutated deck was rejected ({parsed} parsed)");
}

//! The static-analysis contracts, end to end:
//!
//! 1. **Golden corpus** — every lint code in the registry is triggered by
//!    its minimal golden deck at the expected card with its default
//!    severity, and nothing else fires on that deck.
//! 2. **Catalog cleanliness** — every catalog model (as a spec and as a
//!    round-tripped deck) lints clean at default severity.
//! 3. **Pipeline wiring** — `PipelineBuilder::lint` denies bad decks at
//!    `Stage::DeckParse` with the typed diagnostics attached, keeps
//!    warn-level reports available on the parsed deck, and respects
//!    severity overrides.
//! 4. **Batch wiring** — `BatchOptions::lint` fails bad jobs with the
//!    same stage attribution and seeds the `lint.*` observability names.

use cafemio::batch::{run_batch, BatchJob, BatchOptions, ErrorPolicy, JobOutcome};
use cafemio::lint::{
    golden_cases, lint_deck_text, lint_specs, run_case, verify_corpus, DeckKind, LintCode,
    LintConfig, Severity,
};
use cafemio::pipeline::{PipelineBuilder, Stage, StageError};
use cafemio::SessionConfig;
use cafemio_bench::jobs::{corpus, standard_setup};
use cafemio_bench::mutate::base_decks;

/// The golden deck for one code, straight from the corpus registry.
fn golden_deck(code: LintCode) -> &'static str {
    golden_cases()
        .into_iter()
        .find(|case| case.code == code)
        .map(|case| case.deck)
        .unwrap_or_else(|| panic!("no golden deck for {code}"))
}

// ---------------------------------------------------------------------
// Golden corpus

#[test]
fn every_lint_code_fires_on_its_golden_deck_at_the_expected_card() {
    if let Err(problems) = verify_corpus() {
        panic!("golden corpus violations:\n{}", problems.join("\n"));
    }
}

#[test]
fn the_corpus_covers_the_whole_registry_with_card_spans() {
    let cases = golden_cases();
    let covered: std::collections::BTreeSet<LintCode> =
        cases.iter().map(|case| case.code).collect();
    // Session-level codes (O003) are derived from session state, not
    // deck text, so they have no golden deck by construction.
    let deck_derivable = LintCode::ALL
        .iter()
        .filter(|code| !LintCode::SESSION.contains(code))
        .count();
    assert_eq!(covered.len(), deck_derivable, "registry gaps");
    assert!(covered.len() >= 10, "acceptance floor: ten distinct codes");
    for case in &cases {
        let report = run_case(case).unwrap();
        let diagnostic = report
            .diagnostics()
            .iter()
            .find(|d| d.code == case.code)
            .unwrap_or_else(|| panic!("{} never fired", case.code));
        assert_eq!(diagnostic.severity, case.code.default_severity());
        assert_eq!(diagnostic.span.card, Some(case.card), "{}", case.code);
        assert_eq!(diagnostic.span.field, case.field, "{}", case.code);
        assert!(!diagnostic.message.is_empty(), "{}", case.code);
        // Anything else the deck fires must be a declared co-trigger.
        for extra in report.diagnostics().iter().filter(|d| d.code != case.code) {
            assert!(
                case.also.contains(&extra.code),
                "{}: undeclared co-trigger {}",
                case.code,
                extra.code
            );
        }
    }
}

// ---------------------------------------------------------------------
// Catalog cleanliness

#[test]
fn every_catalog_model_lints_clean() {
    for entry in cafemio::models::catalog() {
        let report = lint_specs(&[(entry.spec)()], &LintConfig::new());
        assert!(
            report.is_clean(),
            "{}: {:?}",
            entry.name,
            report.diagnostics()
        );
    }
}

#[test]
fn every_round_tripped_catalog_deck_lints_clean() {
    for (name, text) in base_decks() {
        let report = lint_deck_text(&text, &LintConfig::new()).unwrap();
        assert!(report.is_clean(), "{name}: {:?}", report.diagnostics());
    }
}

// ---------------------------------------------------------------------
// Pipeline wiring

#[test]
fn the_pipeline_denies_a_bad_deck_at_parse_with_typed_diagnostics() {
    let deck = golden_deck(LintCode::OverlappingSubdivisions);
    let err = PipelineBuilder::new()
        .config(SessionConfig::new().lint(LintConfig::new()))
        .parse(deck)
        .unwrap_err();
    assert_eq!(err.stage(), Stage::DeckParse);
    match err.source_error() {
        StageError::Lint(lint) => {
            assert_eq!(lint.diagnostics.len(), 1);
            assert_eq!(lint.diagnostics[0].code, LintCode::OverlappingSubdivisions);
            assert_eq!(lint.diagnostics[0].severity, Severity::Deny);
            assert!(lint.diagnostics[0].span.card.is_some());
        }
        other => panic!("expected a lint error, got {other:?}"),
    }
}

#[test]
fn warn_level_findings_survive_on_the_parsed_deck_without_failing() {
    let deck = golden_deck(LintCode::BandwidthHostileNumbering);
    let parsed = PipelineBuilder::new()
        .config(SessionConfig::new().lint(LintConfig::new()))
        .parse(deck)
        .unwrap();
    let report = parsed.lint_report().expect("lint mode stores the report");
    assert_eq!(report.denied_count(), 0);
    assert_eq!(report.warning_count(), 1);
    assert_eq!(
        report.diagnostics()[0].code,
        LintCode::BandwidthHostileNumbering
    );
}

#[test]
fn severity_overrides_rewrite_the_verdict_in_both_directions() {
    // A default-deny code, allowed: the deck parses.
    let denied = golden_deck(LintCode::OverlappingSubdivisions);
    let parsed = PipelineBuilder::new()
        .config(SessionConfig::new().lint(LintConfig::new().allow(LintCode::OverlappingSubdivisions)))
        .parse(denied)
        .unwrap();
    assert!(parsed.lint_report().unwrap().is_clean());

    // A default-warn code, escalated two ways: per-code and wholesale.
    let warned = golden_deck(LintCode::DeadShapeLine);
    for config in [
        LintConfig::new().with(LintCode::DeadShapeLine, Severity::Deny),
        LintConfig::new().deny_warnings(),
    ] {
        let err = PipelineBuilder::new()
            .config(SessionConfig::new().lint(config))
            .parse(warned)
            .unwrap_err();
        assert_eq!(err.stage(), Stage::DeckParse);
        assert!(matches!(err.source_error(), StageError::Lint(_)), "{err}");
    }
}

// ---------------------------------------------------------------------
// Session-level dataflow (O003): the contour request is checked against
// what the analysis kind actually produces — plane stress has no
// circumferential component, so requesting one is a dataflow hazard the
// deck text alone cannot reveal.

#[test]
fn requesting_an_unproduced_component_warns_by_default_and_denies_on_demand() {
    use cafemio::pipeline::StressComponent;
    let (_, deck) = base_decks().into_iter().next().expect("non-empty corpus");
    let recover = |config: LintConfig| {
        PipelineBuilder::new()
            .config(SessionConfig::new().lint(config))
            .parse(&deck)
            .and_then(|p| p.idealize())
            .and_then(|i| i.setup(standard_setup))
            .and_then(|m| m.solve())
            .and_then(|s| s.recover())
            .expect("catalog deck analyzes under plane stress")
    };

    // Default severity is warn: the session gate lets the request
    // through. What happens next is OSPL's business — the all-zero σθ
    // field has nothing to contour, which is precisely the wasted run
    // the lint exists to flag — but it must not be a *lint* failure.
    let options = cafemio::ospl::ContourOptions::default();
    if let Err(err) = recover(LintConfig::new())
        .contour_with(StressComponent::Circumferential, &options)
    {
        assert!(
            !matches!(err.source_error(), StageError::Lint(_)),
            "warn-level O003 must not fail the stage: {err}"
        );
    }
    // A produced component never trips the gate, even at deny.
    let strict = LintConfig::new().with(LintCode::ComponentNotProduced, Severity::Deny);
    recover(strict.clone())
        .contour_with(StressComponent::Effective, &options)
        .expect("produced components pass the session gate");

    // Escalated to deny, the request fails at Stage::Contour with the
    // typed diagnostic attached.
    let err = recover(strict)
        .contour_with(StressComponent::Circumferential, &options)
        .unwrap_err();
    assert_eq!(err.stage(), Stage::Contour);
    match err.source_error() {
        StageError::Lint(lint) => {
            assert_eq!(lint.diagnostics[0].code, LintCode::ComponentNotProduced);
        }
        other => panic!("expected a lint error, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Batch wiring

#[test]
fn the_batch_engine_fails_linted_jobs_with_stage_attribution() {
    let jobs = vec![
        BatchJob::new("clean", base_decks()[0].1.clone(), standard_setup),
        BatchJob::new(
            "overlap",
            golden_deck(LintCode::OverlappingSubdivisions).to_owned(),
            standard_setup,
        ),
    ];
    let report = run_batch(
        &jobs,
        &BatchOptions::new()
            .config(SessionConfig::new().lint(LintConfig::new()))
            .error_policy(ErrorPolicy::CollectAll),
    );
    assert!(matches!(report.outcomes[0], JobOutcome::Completed(_)));
    match &report.outcomes[1] {
        JobOutcome::Failed(err) => {
            assert_eq!(err.stage(), Stage::DeckParse);
            assert!(matches!(err.source_error(), StageError::Lint(_)), "{err}");
        }
        other => panic!("expected a lint failure, got {other:?}"),
    }
    assert_eq!(report.perf.counter("lint.denied"), Some(1));
    assert!(report.perf.counter("lint.diagnostics").unwrap_or(0) >= 1);
    assert!(report.perf.span_nanos("lint.deck") > 0);
}

#[test]
fn the_models_corpus_passes_the_batch_lint_gate() {
    let jobs = corpus();
    let report = run_batch(&jobs, &BatchOptions::new().config(SessionConfig::new().lint(LintConfig::new())));
    assert_eq!(report.completed(), jobs.len());
    assert_eq!(report.perf.counter("lint.diagnostics"), Some(0));
    assert_eq!(report.perf.counter("lint.denied"), Some(0));
}

// ---------------------------------------------------------------------
// OSPL decks ride the same engine

#[test]
fn ospl_golden_decks_use_the_ospl_entry_point() {
    for case in golden_cases() {
        if case.kind != DeckKind::Ospl {
            continue;
        }
        let report = run_case(&case).unwrap();
        assert_eq!(report.diagnostics()[0].code, case.code, "{}", case.code);
    }
}

//! The batch engine's contracts, end to end over the models corpus:
//!
//! 1. **Determinism** — an N-worker run is bit-identical to the 1-worker
//!    run: same plots, same fields, same error attribution, same result
//!    order.
//! 2. **Failure accounting** — a collect-all run over ≥50 mutated decks
//!    reports every failure with the fault's expected `Stage`, keeps
//!    every result in submission order, and never panics.
//! 3. **Fail-fast** — the first failure stops scheduling; unstarted jobs
//!    are reported as skipped, started ones still finish.

use std::panic::{catch_unwind, AssertUnwindSafe};

use cafemio::batch::{run_batch, BatchOptions, BatchReport, ErrorPolicy, JobOutcome};
use cafemio_bench::jobs::{corpus, faulted_corpus};

/// A printable fingerprint of a whole batch run: every outcome's full
/// Debug rendering (f64 Debug is shortest-round-trip, so two equal
/// fingerprints mean bit-identical floats) in submission order.
fn fingerprint(report: &BatchReport) -> String {
    report
        .outcomes
        .iter()
        .enumerate()
        .map(|(i, outcome)| format!("[{i}] {outcome:?}\n"))
        .collect()
}

#[test]
fn multi_worker_runs_are_bit_identical_to_single_worker() {
    let jobs = corpus();
    assert!(jobs.len() >= 4, "models corpus too small: {}", jobs.len());
    let serial = run_batch(&jobs, &BatchOptions::new().workers(1));
    assert_eq!(serial.completed(), jobs.len(), "corpus must complete");
    let reference = fingerprint(&serial);
    for workers in [2, 4, 8] {
        let parallel = run_batch(&jobs, &BatchOptions::new().workers(workers));
        assert_eq!(serial.outcomes, parallel.outcomes, "{workers} workers");
        assert_eq!(reference, fingerprint(&parallel), "{workers} workers");
        assert_eq!(
            parallel.perf.counter("batch.completed"),
            Some(jobs.len() as u64)
        );
    }
}

#[test]
fn collect_all_attributes_every_induced_failure_in_submission_order() {
    // ≥50 mutated decks (mixed with clean ones), every fault kind.
    let cases = faulted_corpus(0x000B_A7C4_5EED, 50);
    assert!(cases.len() >= 50, "only {} cases", cases.len());
    let jobs: Vec<_> = cases.iter().map(|(_, job)| job.clone()).collect();
    let report = catch_unwind(AssertUnwindSafe(|| {
        run_batch(
            &jobs,
            &BatchOptions::new()
                .workers(4)
                .error_policy(ErrorPolicy::CollectAll),
        )
    }))
    .expect("batch run panicked");

    assert_eq!(report.outcomes.len(), cases.len());
    assert_eq!(report.skipped(), 0, "collect-all must not skip");
    for ((expected_stage, job), outcome) in cases.iter().zip(&report.outcomes) {
        match expected_stage {
            None => assert!(
                matches!(outcome, JobOutcome::Completed(_)),
                "{}: clean deck did not complete: {outcome:?}",
                job.name()
            ),
            Some(stage) => {
                let err = outcome
                    .error()
                    .unwrap_or_else(|| panic!("{}: faulted deck succeeded", job.name()));
                assert_eq!(err.stage(), *stage, "{}: {err}", job.name());
            }
        }
    }
    let failures = cases.iter().filter(|(stage, _)| stage.is_some()).count();
    assert_eq!(report.failed(), failures);
    assert_eq!(report.perf.counter("batch.failed"), Some(failures as u64));
}

#[test]
fn faulted_runs_are_also_deterministic_across_worker_counts() {
    let cases = faulted_corpus(7, 50);
    let jobs: Vec<_> = cases.into_iter().map(|(_, job)| job).collect();
    let options = BatchOptions::new().error_policy(ErrorPolicy::CollectAll);
    let serial = run_batch(&jobs, &options.clone().workers(1));
    let parallel = run_batch(&jobs, &options.workers(4));
    assert_eq!(serial.outcomes, parallel.outcomes);
    assert_eq!(fingerprint(&serial), fingerprint(&parallel));
}

#[test]
fn fail_fast_stops_scheduling_but_reports_the_failure() {
    let cases = faulted_corpus(3, 50);
    let jobs: Vec<_> = cases.into_iter().map(|(_, job)| job).collect();
    let report = run_batch(
        &jobs,
        &BatchOptions::new()
            .workers(1)
            .max_in_flight(1)
            .error_policy(ErrorPolicy::FailFast),
    );
    assert!(report.failed() >= 1);
    assert!(report.skipped() > 0, "nothing was skipped");
    // Everything before the first failure completed, in order.
    let first_failure = report
        .outcomes
        .iter()
        .position(|o| matches!(o, JobOutcome::Failed(_)))
        .expect("a failure");
    for outcome in &report.outcomes[..first_failure] {
        assert!(matches!(outcome, JobOutcome::Completed(_)));
    }
}

//! h-convergence: refining an IDLZ idealization drives the finite element
//! answers toward the closed-form values — the check a 1970 analyst ran
//! by re-keypunching a finer subdivision card, done here with
//! `TriMesh::refined`.

use cafemio::fem::StressField;
use cafemio::idlz::Idealization;
use cafemio::models::plate_with_hole as hole;
use cafemio::prelude::*;

#[test]
fn kirsch_factor_improves_under_refinement() {
    let coarse_mesh = Idealization::run(&hole::spec()).unwrap().mesh;
    let fine_mesh = coarse_mesh.refined();
    assert_eq!(fine_mesh.element_count(), 4 * coarse_mesh.element_count());

    let kt = |mesh: &TriMesh| -> f64 {
        let model = hole::tension_model(mesh);
        let solution = model.solve().unwrap();
        let stresses = StressField::compute(&model, &solution).unwrap();
        let crown = mesh
            .nodes()
            .find(|(_, n)| {
                n.position.x.abs() < 1e-9 && (n.position.y - hole::HOLE_RADIUS).abs() < 1e-9
            })
            .map(|(id, _)| id)
            .expect("crown node survives refinement");
        stresses.node(crown).radial / hole::TENSION
    };
    let kt_coarse = kt(&coarse_mesh);
    let kt_fine = kt(&fine_mesh);
    // The finite-width Kirsch factor is a bit above 3; the CST
    // under-predicts and refinement must close the gap monotonically.
    assert!(
        kt_fine > kt_coarse,
        "refinement should raise Kt: {kt_coarse} -> {kt_fine}"
    );
    assert!(kt_fine > 2.9, "fine Kt = {kt_fine}");
}

#[test]
fn refined_idealization_still_plots() {
    let mesh = Idealization::run(&hole::spec()).unwrap().mesh.refined();
    let model = hole::tension_model(&mesh);
    let plot = PipelineBuilder::new()
        .component(StressComponent::Effective)
        .model(model)
        .solve()
        .unwrap()
        .recover()
        .unwrap()
        .contour()
        .unwrap()
        .remove(0);
    assert!(plot.contours.drawn_contours() > 10);
}

#[test]
fn tip_deflection_converges_on_refined_strip() {
    // A shear-loaded cantilever: one refinement level moves the tip
    // deflection toward the next one by a shrinking amount (Cauchy-style
    // convergence check without needing the exact beam factor).
    let spec = cafemio::models::plate::spec(8, 2, 8.0, 1.0);
    let m0 = Idealization::run(&spec).unwrap().mesh;
    let m1 = m0.refined();
    let m2 = m1.refined();
    let tip = |mesh: &TriMesh| -> f64 {
        let mut model = FemModel::new(
            mesh.clone(),
            AnalysisKind::PlaneStress { thickness: 1.0 },
            Material::isotropic(1.0e7, 0.3),
        );
        for (id, node) in mesh.nodes() {
            if node.position.x < 1e-9 {
                model.fix_both(id);
            }
            if (node.position.x - 8.0).abs() < 1e-9 {
                model.add_force(id, 0.0, -10.0);
            }
        }
        // Refinement adds nodes on the tip face: normalize the load by
        // counting loaded nodes would change totals; instead measure the
        // deflection per unit load via max displacement scaled by loaded
        // node count.
        let loaded = mesh
            .nodes()
            .filter(|(_, n)| (n.position.x - 8.0).abs() < 1e-9)
            .count() as f64;
        model.solve().unwrap().max_displacement() / loaded
    };
    let (d0, d1, d2) = (tip(&m0), tip(&m1), tip(&m2));
    let step1 = (d1 - d0).abs();
    let step2 = (d2 - d1).abs();
    assert!(
        step2 < step1,
        "refinement steps must shrink: {step1} then {step2} ({d0}, {d1}, {d2})"
    );
}

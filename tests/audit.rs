//! Audit-mode integration tests: one deliberate violation per audit
//! check, each asserting the typed [`AuditError`] names the right stage;
//! plus the clean-path wiring through the staged sessions and the batch
//! engine, and the punched-card round-trip the audit corpus rides on.

use cafemio::audit::{
    check_contours, check_differential, check_equilibrium, check_idealization,
    check_permutation, check_solution, AuditError, AuditOptions, AuditStage,
};
use cafemio::cards::{Field, Format, FormatReader, FormatWriter};
use cafemio::fem::{AnalysisKind, FemModel, Material};
use cafemio::geom::Point;
use cafemio::idlz::{Idealization, IdealizationSpec, ShapeLine, Subdivision};
use cafemio::mesh::{BoundaryKind, NodalField, TriMesh};
use cafemio::ospl::{ContourOptions, Ospl};
use cafemio::pipeline::{PipelineBuilder, Stage, StageError, StressComponent};
use cafemio::SessionConfig;
use cafemio_bench::jobs::standard_setup;
use cafemio_bench::mutate::base_decks;

/// The 4 × 2 plate spec the pipeline doctests use, idealized.
fn plate() -> (IdealizationSpec, cafemio::idlz::IdealizationResult) {
    let mut spec = IdealizationSpec::new("AUDIT PLATE");
    spec.add_subdivision(Subdivision::rectangular(1, (0, 0), (6, 3)).unwrap());
    spec.add_shape_line(
        1,
        ShapeLine::straight((0, 0), (6, 0), Point::new(0.0, 0.0), Point::new(3.0, 0.0)),
    );
    spec.add_shape_line(
        1,
        ShapeLine::straight((0, 3), (6, 3), Point::new(0.0, 1.5), Point::new(3.0, 1.5)),
    );
    let result = Idealization::run(&spec).unwrap();
    (spec, result)
}

fn pulled_square() -> FemModel {
    let mut mesh = TriMesh::new();
    let a = mesh.add_node(Point::new(0.0, 0.0), BoundaryKind::Boundary);
    let b = mesh.add_node(Point::new(1.0, 0.0), BoundaryKind::Boundary);
    let c = mesh.add_node(Point::new(1.0, 1.0), BoundaryKind::Boundary);
    let d = mesh.add_node(Point::new(0.0, 1.0), BoundaryKind::Boundary);
    mesh.add_element([a, b, c]).unwrap();
    mesh.add_element([a, c, d]).unwrap();
    let mut model = FemModel::new(
        mesh,
        AnalysisKind::PlaneStress { thickness: 1.0 },
        Material::isotropic(30.0e6, 0.3),
    );
    model.fix_both(a);
    model.fix_both(d);
    model.add_force(b, 50.0, 0.0);
    model.add_force(c, 50.0, 0.0);
    model
}

// ---------------------------------------------------------------------
// One deliberate violation per audit check.

#[test]
fn an_inverted_element_is_flagged_at_idealize() {
    let (spec, mut result) = plate();
    // Swap two nodes of one element: clockwise orientation, negative
    // signed area.
    let victim = result.mesh.elements().next().map(|(id, _)| id).unwrap();
    result.mesh.element_mut(victim).nodes.swap(0, 1);
    let err = check_idealization(&spec, &result, &AuditOptions::new()).unwrap_err();
    assert_eq!(err.stage(), AuditStage::Idealize);
    assert!(matches!(err, AuditError::InvertedElement { .. }), "{err}");
}

#[test]
fn a_node_off_its_shape_line_is_flagged_at_idealize() {
    let (spec, mut result) = plate();
    let victim = result
        .mesh
        .nodes()
        .min_by(|(_, a), (_, b)| {
            f64::hypot(a.position.x, a.position.y)
                .partial_cmp(&f64::hypot(b.position.x, b.position.y))
                .unwrap()
        })
        .map(|(id, _)| id)
        .unwrap();
    result.mesh.node_mut(victim).position.y += 2.0e-3;
    let err = check_idealization(&spec, &result, &AuditOptions::new()).unwrap_err();
    assert_eq!(err.stage(), AuditStage::Idealize);
    assert!(matches!(err, AuditError::NodeOffShapeLine { .. }), "{err}");
}

#[test]
fn a_doctored_reform_report_is_flagged_at_idealize() {
    let (spec, mut result) = plate();
    result.reform.needles_after += 1;
    let err = check_idealization(&spec, &result, &AuditOptions::new()).unwrap_err();
    assert_eq!(err.stage(), AuditStage::Idealize);
    assert!(
        matches!(
            err,
            AuditError::QualityMismatch {
                what: "needle_count",
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn a_misreported_bandwidth_is_flagged_at_idealize() {
    let (spec, mut result) = plate();
    result.stats.bandwidth_after = result.stats.bandwidth_after.wrapping_add(1);
    let err = check_idealization(&spec, &result, &AuditOptions::new()).unwrap_err();
    assert_eq!(err.stage(), AuditStage::Idealize);
    assert!(matches!(err, AuditError::BandwidthMisreported { .. }), "{err}");
}

#[test]
fn a_regressed_bandwidth_is_flagged_at_idealize() {
    let (spec, mut result) = plate();
    // Keep the stats self-consistent with the mesh but claim renumbering
    // started from a narrower bandwidth than it ended with.
    result.stats.bandwidth_before = result.stats.bandwidth_after.saturating_sub(1);
    let err = check_idealization(&spec, &result, &AuditOptions::new()).unwrap_err();
    assert_eq!(err.stage(), AuditStage::Idealize);
    assert!(matches!(err, AuditError::BandwidthRegressed { .. }), "{err}");
}

#[test]
fn a_non_bijective_permutation_is_flagged_at_idealize() {
    for broken in [vec![0usize, 0, 1], vec![0, 1, 5], vec![0, 1]] {
        let err = check_permutation(&broken, 3).unwrap_err();
        assert_eq!(err.stage(), AuditStage::Idealize);
        assert!(
            matches!(err, AuditError::PermutationNotBijective { .. }),
            "{err}"
        );
    }
}

#[test]
fn a_wrong_solution_is_flagged_at_solve() {
    let model = pulled_square();
    // A solution to twice the load is not a solution to this model.
    let forged = model.with_load_factor(2.0).solve().unwrap();
    let err = check_solution(&model, &forged, &AuditOptions::new()).unwrap_err();
    assert_eq!(err.stage(), AuditStage::Solve);
    assert!(matches!(err, AuditError::ResidualTooLarge { .. }), "{err}");
}

#[test]
fn forged_reactions_are_flagged_at_solve() {
    // Global equilibrium is mathematically entailed by a zero residual,
    // so the only way to violate it alone is through the raw-vector
    // entry point the solution check calls internally.
    let err = check_equilibrium(
        AnalysisKind::PlaneStress { thickness: 1.0 },
        &[0, 1],
        &[-1.0, 0.0, 0.0, 0.0],
        &[0.0, 0.0, 30.0, 0.0],
        1e-6,
    )
    .unwrap_err();
    assert_eq!(err.stage(), AuditStage::Solve);
    match err {
        AuditError::Unbalanced { direction, .. } => assert_eq!(direction, "x"),
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn a_backend_disagreement_is_flagged_at_solve() {
    let model = pulled_square();
    let forged = model.with_load_factor(2.0).solve().unwrap();
    let err = check_differential(&model, &forged, &AuditOptions::strict()).unwrap_err();
    assert_eq!(err.stage(), AuditStage::Solve);
    assert!(matches!(err, AuditError::SolverDivergence { .. }), "{err}");
}

#[test]
fn a_forged_isogram_level_is_flagged_at_contour() {
    let (_, result) = plate();
    let field = NodalField::new(
        "S",
        result
            .mesh
            .nodes()
            .map(|(_, n)| n.position.x + 3.0 * n.position.y)
            .collect(),
    );
    let mut contours = Ospl::run(&result.mesh, &field, &ContourOptions::new()).unwrap();
    let isogram = contours
        .isograms
        .iter_mut()
        .find(|i| !i.segments.is_empty())
        .unwrap();
    isogram.level = 1.0e9;
    let err = check_contours(&result.mesh, &field, &contours, &AuditOptions::new()).unwrap_err();
    assert_eq!(err.stage(), AuditStage::Contour);
    assert!(matches!(err, AuditError::LevelOutOfRange { .. }), "{err}");
}

#[test]
fn a_displaced_segment_endpoint_is_flagged_at_contour() {
    let (_, result) = plate();
    let field = NodalField::new(
        "S",
        result
            .mesh
            .nodes()
            .map(|(_, n)| n.position.x + 3.0 * n.position.y)
            .collect(),
    );
    let mut contours = Ospl::run(&result.mesh, &field, &ContourOptions::new()).unwrap();
    let isogram = contours
        .isograms
        .iter_mut()
        .find(|i| !i.segments.is_empty())
        .unwrap();
    isogram.segments[0].a.x += 0.0437;
    isogram.segments[0].a.y += 0.0291;
    let err = check_contours(&result.mesh, &field, &contours, &AuditOptions::new()).unwrap_err();
    assert_eq!(err.stage(), AuditStage::Contour);
    assert!(matches!(err, AuditError::SegmentOffEdge { .. }), "{err}");
}

// ---------------------------------------------------------------------
// Clean-path wiring.

#[test]
fn the_whole_catalog_passes_a_strict_staged_audit() {
    for (name, text) in base_decks() {
        let plots = PipelineBuilder::new()
            .component(StressComponent::Effective)
            .config(SessionConfig::new().audit(AuditOptions::strict()))
            .parse(&text)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .idealize()
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .setup(standard_setup)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .solve()
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .recover()
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .contour()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!plots.is_empty(), "{name}");
    }
}

#[test]
fn a_pipeline_audit_failure_is_attributed_to_the_broken_stage() {
    // An impossible residual tolerance makes the audit itself fail on a
    // perfectly good model: the error must surface as StageError::Audit
    // attributed to the solve stage.
    let err = PipelineBuilder::new()
        .config(SessionConfig::new().audit(AuditOptions::new().with_residual_tolerance(0.0)))
        .model(pulled_square())
        .solve()
        .unwrap_err();
    assert_eq!(err.stage(), Stage::Solve);
    assert!(
        matches!(err.source_error(), StageError::Audit(a)
            if a.stage() == AuditStage::Solve),
        "{err}"
    );
}

#[test]
fn batch_audit_counters_are_reachable_from_the_prelude() {
    // Everything the batch audit emits — options, counters, spans — must
    // be usable with nothing but the prelude in scope.
    use cafemio::prelude::*;

    let (_, text) = base_decks().into_iter().next().unwrap();
    let jobs: Vec<BatchJob> = (0..2)
        .map(|i| BatchJob::new(format!("audit-{i}"), text.clone(), standard_setup))
        .collect();
    let report = run_batch(&jobs, &BatchOptions::new().config(SessionConfig::new().audit(AuditOptions::strict())));
    assert_eq!(report.completed(), jobs.len());
    assert!(report.perf.counter("audit.checks").unwrap_or(0) > 0);
    assert_eq!(report.perf.counter("audit.violations"), Some(0));
    for span in ["audit.idealize", "audit.solve", "audit.contour"] {
        assert!(
            report.perf.spans.iter().any(|s| s.name == span),
            "missing {span}"
        );
    }
}

// ---------------------------------------------------------------------
// The punched-card round-trip the audit corpus rides on (the FORMAT
// writer's sign-column fix, exercised across every catalog deck).

#[test]
fn corpus_nodal_cards_round_trip_through_write_and_read() {
    let tight = Format::parse("(2F8.5, 2I5)").unwrap();
    for (name, text) in base_decks() {
        let sets = PipelineBuilder::new()
            .parse(&text)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .idealize()
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .into_sets();
        for set in sets {
            let nodal = Format::parse(set.spec.nodal_format()).unwrap();
            for format in [&nodal, &tight] {
                let writer = FormatWriter::new(format);
                let reader = FormatReader::new(format);
                for (id, node) in set.result.mesh.nodes() {
                    // Negated coordinates force the sign-column path the
                    // writer used to get wrong (`-.12345` vs a dropped
                    // sign); skip values the narrow field genuinely
                    // cannot hold.
                    for flip in [1.0, -1.0] {
                        let fields = vec![
                            Field::Real(flip * node.position.x),
                            Field::Real(flip * node.position.y),
                            Field::Int(node.boundary.to_flag()),
                            Field::Int(id.index() as i64 + 1),
                        ];
                        let Ok(records) = writer.write_all(&fields) else {
                            continue;
                        };
                        // After the first write quantizes the values, the
                        // read → write cycle must be a fixed point in both
                        // fields and punched text.
                        let first = reader.read_all(records.iter().map(|r| r.as_str())).unwrap();
                        let rewritten = writer.write_all(&first).unwrap();
                        let second =
                            reader.read_all(rewritten.iter().map(|r| r.as_str())).unwrap();
                        assert_eq!(first, second, "{name}: {records:?} vs {rewritten:?}");
                        let repunched = writer.write_all(&second).unwrap();
                        assert_eq!(rewritten, repunched, "{name}: unstable punch");
                    }
                }
            }
        }
    }
}

//! Every public error variant renders a useful message and plays well
//! with `std::error::Error` chaining — the debuggability contract of the
//! public API.

use std::error::Error as _;

use cafemio::cards::{Card, CardError, Deck, Format, FormatReader, FormatWriter};
use cafemio::fem::FemError;
use cafemio::geom::{Arc, Point};
use cafemio::idlz::{Idealization, IdealizationSpec, IdlzError, ShapeLine, Subdivision};
use cafemio::ospl::OsplError;

#[test]
fn card_errors_name_the_problem() {
    let too_long = Card::new(&"X".repeat(99)).unwrap_err();
    assert!(too_long.to_string().contains("99 columns"));

    let bad_format = "(Q9)".parse::<Format>().unwrap_err();
    assert!(bad_format.to_string().contains("cannot parse format"));

    let format: Format = "(I5)".parse().unwrap();
    let bad_number = FormatReader::new(&format)
        .read_record("  ABC")
        .unwrap_err();
    assert!(bad_number.to_string().contains("column 1"));

    let mismatch = FormatWriter::new(&format)
        .write_record(&[cafemio::cards::Field::Alpha("X".into())])
        .unwrap_err();
    assert!(matches!(mismatch, CardError::KindMismatch { .. }));
    assert!(mismatch.to_string().contains("integer"));
}

#[test]
fn idlz_errors_carry_subdivision_context() {
    let bad_sub = Subdivision::rectangular(7, (5, 5), (3, 8)).unwrap_err();
    assert!(bad_sub.to_string().starts_with("subdivision 7"));

    // A folded shaping error names both element counts.
    let mut spec = IdealizationSpec::new("FOLD");
    spec.add_subdivision(Subdivision::rectangular(1, (0, 0), (4, 2)).unwrap());
    spec.add_shape_line(
        1,
        ShapeLine::straight((0, 0), (4, 0), Point::new(0.0, 0.0), Point::new(4.0, 0.0)),
    );
    spec.add_shape_line(
        1,
        ShapeLine::straight((0, 2), (4, 2), Point::new(0.0, 1.0), Point::new(4.0, -1.0)),
    );
    let fold = Idealization::run(&spec).unwrap_err();
    assert!(fold.to_string().contains("folds the surface"));

    // Card errors chain as sources through IdlzError.
    let deck = Deck::from_text("  XYZ\n").unwrap();
    let err = cafemio::idlz::deck::parse_deck(&deck).unwrap_err();
    assert!(matches!(err, IdlzError::Card(_)));
    assert!(err.source().is_some(), "source chain intact");
}

#[test]
fn arc_errors_chain_through_shaping() {
    let mut spec = IdealizationSpec::new("BAD ARC");
    spec.add_subdivision(Subdivision::rectangular(3, (0, 0), (2, 1)).unwrap());
    // Radius smaller than half the chord.
    spec.add_shape_line(
        3,
        ShapeLine::arc((0, 0), (2, 0), Point::new(0.0, 0.0), Point::new(10.0, 0.0), 1.0),
    );
    let err = Idealization::run(&spec).unwrap_err();
    match &err {
        IdlzError::Arc { subdivision, .. } => assert_eq!(*subdivision, 3),
        other => panic!("unexpected error {other:?}"),
    }
    assert!(err.to_string().contains("radius is smaller"));
    assert!(err.source().is_some());
    // The underlying ArcError is reachable by downcast.
    let source = err.source().unwrap();
    assert!(source.downcast_ref::<cafemio::geom::ArcError>().is_some());
}

#[test]
fn fem_errors_describe_the_failure() {
    let singular = FemError::SingularMatrix { equation: 42 };
    assert!(singular.to_string().contains("equation 42"));
    assert!(singular.to_string().contains("under-constrained"));

    let no_convergence = FemError::NoConvergence {
        iterations: 5,
        what: "contact active set",
    };
    assert!(no_convergence
        .to_string()
        .contains("did not converge in 5 iterations"));
}

#[test]
fn ospl_errors_describe_the_failure() {
    let limit = OsplError::LimitExceeded {
        what: "nodes",
        attempted: 900,
        limit: 800,
    };
    assert!(limit.to_string().contains("900 nodes (limit 800)"));
    assert_eq!(
        OsplError::NoContours.to_string(),
        "field is constant or empty; nothing to contour"
    );
}

#[test]
fn geometry_errors_are_terse_and_lowercase() {
    let err = Arc::from_endpoints_radius(Point::ORIGIN, Point::new(10.0, 0.0), 1.0).unwrap_err();
    let text = err.to_string();
    assert!(text.chars().next().unwrap().is_lowercase());
    assert!(!text.ends_with('.'));
}

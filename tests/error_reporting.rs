//! Every public error variant renders a useful message and plays well
//! with `std::error::Error` chaining — the debuggability contract of the
//! public API.

use std::error::Error as _;

use cafemio::cards::{Card, CardError, Deck, Format, FormatReader, FormatWriter};
use cafemio::fem::FemError;
use cafemio::geom::{Arc, Point};
use cafemio::idlz::{Idealization, IdealizationSpec, IdlzError, ShapeLine, Subdivision};
use cafemio::ospl::OsplError;

#[test]
fn card_errors_name_the_problem() {
    let too_long = Card::new(&"X".repeat(99)).unwrap_err();
    assert!(too_long.to_string().contains("99 columns"));

    let bad_format = "(Q9)".parse::<Format>().unwrap_err();
    assert!(bad_format.to_string().contains("cannot parse format"));

    let format: Format = "(I5)".parse().unwrap();
    let bad_number = FormatReader::new(&format)
        .read_record("  ABC")
        .unwrap_err();
    assert!(bad_number.to_string().contains("column 1"));

    let mismatch = FormatWriter::new(&format)
        .write_record(&[cafemio::cards::Field::Alpha("X".into())])
        .unwrap_err();
    assert!(matches!(mismatch, CardError::KindMismatch { .. }));
    assert!(mismatch.to_string().contains("integer"));
}

#[test]
fn idlz_errors_carry_subdivision_context() {
    let bad_sub = Subdivision::rectangular(7, (5, 5), (3, 8)).unwrap_err();
    assert!(bad_sub.to_string().starts_with("subdivision 7"));

    // A folded shaping error names both element counts.
    let mut spec = IdealizationSpec::new("FOLD");
    spec.add_subdivision(Subdivision::rectangular(1, (0, 0), (4, 2)).unwrap());
    spec.add_shape_line(
        1,
        ShapeLine::straight((0, 0), (4, 0), Point::new(0.0, 0.0), Point::new(4.0, 0.0)),
    );
    spec.add_shape_line(
        1,
        ShapeLine::straight((0, 2), (4, 2), Point::new(0.0, 1.0), Point::new(4.0, -1.0)),
    );
    let fold = Idealization::run(&spec).unwrap_err();
    assert!(fold.to_string().contains("folds the surface"));

    // Card errors chain as sources through IdlzError and point at the
    // offending card.
    let deck = Deck::from_text("  XYZ\n").unwrap();
    let err = cafemio::idlz::deck::parse_deck(&deck).unwrap_err();
    assert_eq!(err.card_index(), Some(0));
    assert!(matches!(
        err,
        IdlzError::AtCard { ref source, .. } if matches!(**source, IdlzError::Card(_))
    ));
    assert!(err.source().is_some(), "source chain intact");
    assert!(err.source().unwrap().source().is_some(), "CardError reachable");
}

#[test]
fn arc_errors_chain_through_shaping() {
    let mut spec = IdealizationSpec::new("BAD ARC");
    spec.add_subdivision(Subdivision::rectangular(3, (0, 0), (2, 1)).unwrap());
    // Radius smaller than half the chord.
    spec.add_shape_line(
        3,
        ShapeLine::arc((0, 0), (2, 0), Point::new(0.0, 0.0), Point::new(10.0, 0.0), 1.0),
    );
    let err = Idealization::run(&spec).unwrap_err();
    match &err {
        IdlzError::Arc { subdivision, .. } => assert_eq!(*subdivision, 3),
        other => panic!("unexpected error {other:?}"),
    }
    assert!(err.to_string().contains("radius is smaller"));
    assert!(err.source().is_some());
    // The underlying ArcError is reachable by downcast.
    let source = err.source().unwrap();
    assert!(source.downcast_ref::<cafemio::geom::ArcError>().is_some());
}

#[test]
fn fem_errors_describe_the_failure() {
    let singular = FemError::SingularMatrix { equation: 42 };
    assert!(singular.to_string().contains("equation 42"));
    assert!(singular.to_string().contains("under-constrained"));

    let no_convergence = FemError::NoConvergence {
        iterations: 5,
        what: "contact active set",
    };
    assert!(no_convergence
        .to_string()
        .contains("did not converge in 5 iterations"));
}

#[test]
fn ospl_errors_describe_the_failure() {
    let limit = OsplError::LimitExceeded {
        what: "nodes",
        attempted: 900,
        limit: 800,
    };
    assert!(limit.to_string().contains("900 nodes (limit 800)"));
    assert_eq!(
        OsplError::NoContours.to_string(),
        "field is constant or empty; nothing to contour"
    );
}

/// A minimal valid single-data-set deck (the Appendix-B sample plate).
const PLATE_DECK: &str = concat!(
    "    1\n",
    "SIMPLE PLATE\n",
    "    0    0    0    1\n",
    "    1    0    0    4    2         0    0\n",
    "    1    2\n",
    "    0    0    4    0  0.0000  0.0000  2.0000  0.0000  0.0000\n",
    "    0    2    4    2  0.0000  0.5000  2.0000  0.5000  0.0000\n",
    "(2F9.5, 51X, I3, 5X, I3)\n",
    "(3I5, 62X, I3)\n",
);

// Golden pipeline errors: the exact rendered text is the contract — it
// is what a batch run prints for a rejected deck, so it must stay
// deterministic (stage name + underlying error, no timings).

#[test]
fn golden_bad_subdivision_card() {
    // Type-4 card whose upper-right corner equals its lower-left.
    let bad = PLATE_DECK.replace(
        "    1    0    0    4    2         0    0",
        "    1    0    0    0    0         0    0",
    );
    let err = cafemio::pipeline::PipelineBuilder::new()
        .parse(&bad)
        .and_then(|parsed| parsed.idealize())
        .unwrap_err();
    assert_eq!(err.stage(), cafemio::pipeline::Stage::DeckParse);
    assert_eq!(
        err.to_string(),
        "deck parsing failed: card 4: subdivision 1: upper-right corner (0, 0) must \
         exceed lower-left (0, 0) in both coordinates"
    );
}

#[test]
fn golden_arc_past_quarter_turn() {
    // Top side becomes an arc whose chord equals its diameter: a
    // half-turn, far past the program's 90-degree restriction.
    let bad = PLATE_DECK.replace(
        "    0    2    4    2  0.0000  0.5000  2.0000  0.5000  0.0000",
        "    0    2    4    2  0.0000  0.5000  2.0000  0.5000  1.0000",
    );
    let err = cafemio::pipeline::PipelineBuilder::new()
        .parse(&bad)
        .and_then(|parsed| parsed.idealize())
        .unwrap_err();
    assert_eq!(err.stage(), cafemio::pipeline::Stage::Idealize);
    assert_eq!(
        err.to_string(),
        "idealization failed: arc in subdivision 1: arc subtends more than 90 degrees"
    );
}

#[test]
fn golden_singular_stiffness_matrix() {
    use cafemio::pipeline::{PipelineError, Stage, StageError};
    // Factorization failure, as `solve_and_contour` wraps it.
    let err = PipelineError::at(
        Stage::Solve,
        StageError::Fem(FemError::SingularMatrix { equation: 42 }),
    );
    assert_eq!(
        err.to_string(),
        "solution failed: stiffness matrix not positive definite at equation 42 \
         (model may be under-constrained)"
    );
}

#[test]
fn golden_unconstrained_model_end_to_end() {
    // The deterministic singular case: no displacement constraint at
    // all is rejected structurally, before factorization can smear the
    // zero pivots into roundoff.
    let err = cafemio::pipeline::PipelineBuilder::new()
        .component(cafemio::pipeline::StressComponent::Effective)
        .parse(PLATE_DECK)
        .and_then(|parsed| parsed.idealize())
        .and_then(|idealized| {
            idealized.setup(|mesh| {
                Ok(cafemio::fem::FemModel::new(
                    mesh.clone(),
                    cafemio::fem::AnalysisKind::PlaneStress { thickness: 1.0 },
                    cafemio::fem::Material::isotropic(30.0e6, 0.3),
                ))
            })
        })
        .and_then(|ready| ready.solve())
        .unwrap_err();
    assert_eq!(err.stage(), cafemio::pipeline::Stage::Solve);
    assert_eq!(
        err.to_string(),
        "solution failed: model has no displacement constraints (stiffness \
         matrix is singular: all rigid-body modes are free)"
    );
    // Stage provenance includes the live span stack at capture time.
    assert!(err.span_context().contains(&"pipeline.solve"));
}

#[test]
fn geometry_errors_are_terse_and_lowercase() {
    let err = Arc::from_endpoints_radius(Point::ORIGIN, Point::new(10.0, 0.0), 1.0).unwrap_err();
    let text = err.to_string();
    assert!(text.chars().next().unwrap().is_lowercase());
    assert!(!text.ends_with('.'));
}

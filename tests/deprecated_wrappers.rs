//! Golden compatibility for the deprecated free functions and the
//! deprecated per-option setters.
//!
//! `run_deck`, `idealize_deck_text`, and `solve_and_contour` survive as
//! thin wrappers over the staged-session API, and the per-option setters
//! on `PipelineBuilder` / `BatchOptions` survive as delegating wrappers
//! over [`SessionConfig`]; these tests pin the contract that they still
//! compile and produce **identical** output to the API they delegate to.
//! This file is the one place in the repository allowed to call them —
//! everywhere else `deprecated` is denied.
#![allow(deprecated)]

use cafemio::pipeline::{idealize_deck_text, run_deck, solve_and_contour};
use cafemio::prelude::*;
use cafemio_bench::jobs::standard_setup;
use cafemio_bench::mutate::base_decks;

#[test]
fn solve_and_contour_matches_the_session_bit_for_bit() {
    let (_, text) = &base_decks()[0];
    let idealized = PipelineBuilder::new().parse(text).unwrap().idealize().unwrap();
    let model = standard_setup(&idealized.sets()[0].result.mesh).unwrap();
    let options = ContourOptions::new();
    for component in [
        StressComponent::Effective,
        StressComponent::Radial,
        StressComponent::Shear,
    ] {
        let old = solve_and_contour(&model, component, &options).unwrap();
        let new = PipelineBuilder::new()
            .model(model.clone())
            .solve()
            .unwrap()
            .recover()
            .unwrap()
            .contour_with(component, &options)
            .unwrap()
            .remove(0);
        assert_eq!(old, new, "{component}: wrapper diverged from session");
        // Belt and braces: the Debug rendering round-trips every f64, so
        // equal strings mean bit-identical floats.
        assert_eq!(format!("{old:?}"), format!("{new:?}"));
    }
}

#[test]
fn idealize_deck_text_matches_the_session() {
    for (name, text) in base_decks() {
        let old = idealize_deck_text(&text).unwrap();
        let new: Vec<_> = PipelineBuilder::new()
            .parse(&text)
            .unwrap()
            .idealize()
            .unwrap()
            .into_sets()
            .into_iter()
            .map(|set| (set.spec, set.result))
            .collect();
        assert_eq!(old.len(), new.len(), "{name}");
        assert_eq!(format!("{old:?}"), format!("{new:?}"), "{name}");
    }
}

#[test]
fn run_deck_matches_the_full_session_chain() {
    let (_, text) = &base_decks()[0];
    let options = ContourOptions::new();
    let old = run_deck(text, standard_setup, StressComponent::Effective, &options).unwrap();
    let new = PipelineBuilder::new()
        .component(StressComponent::Effective)
        .contour_options(options)
        .parse(text)
        .unwrap()
        .idealize()
        .unwrap()
        .setup(standard_setup)
        .unwrap()
        .solve()
        .unwrap()
        .recover()
        .unwrap()
        .contour()
        .unwrap();
    assert_eq!(old, new, "wrapper diverged from session");
    assert_eq!(format!("{old:?}"), format!("{new:?}"));
}

#[test]
fn wrapper_errors_keep_their_stage_attribution() {
    // A deck mid-truncation still reports DeckParse through the wrapper.
    let (_, text) = &base_decks()[0];
    let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
    let err = idealize_deck_text(&truncated).unwrap_err();
    assert_eq!(err.stage(), Stage::DeckParse);
}

#[test]
fn deprecated_pipeline_setters_match_session_config_bit_for_bit() {
    let (_, text) = &base_decks()[0];
    let run = |builder: PipelineBuilder| {
        builder
            .component(StressComponent::Effective)
            .parse(text)
            .unwrap()
            .idealize()
            .unwrap()
            .setup(standard_setup)
            .unwrap()
            .solve()
            .unwrap()
            .recover()
            .unwrap()
            .contour()
            .unwrap()
    };
    let old = run(PipelineBuilder::new()
        .audit(AuditOptions::strict())
        .lint(LintConfig::new())
        .capability(Capability::Historical)
        .solver(SolverBackend::Skyline)
        .cg_options(CgOptions::new()));
    let new = run(PipelineBuilder::new().config(
        SessionConfig::new()
            .audit(AuditOptions::strict())
            .lint(LintConfig::new())
            .capability(Capability::Historical)
            .solver(SolverBackend::Skyline)
            .cg_options(CgOptions::new()),
    ));
    assert_eq!(old, new, "setter path diverged from SessionConfig path");
    assert_eq!(format!("{old:?}"), format!("{new:?}"));
}

#[test]
fn deprecated_batch_setters_configure_the_same_session() {
    let old = BatchOptions::new()
        .audit(AuditOptions::strict())
        .lint(LintConfig::new())
        .capability(Capability::LargeMesh)
        .solver(SolverBackend::SparseCg)
        .cg_options(CgOptions::new().with_max_iterations(7));
    let new = BatchOptions::new().config(
        SessionConfig::new()
            .audit(AuditOptions::strict())
            .lint(LintConfig::new())
            .capability(Capability::LargeMesh)
            .solver(SolverBackend::SparseCg)
            .cg_options(CgOptions::new().with_max_iterations(7)),
    );
    assert_eq!(
        old.session_config().fingerprint(),
        new.session_config().fingerprint(),
        "setter path and SessionConfig path disagree on the fingerprint"
    );
    assert_eq!(old.capability_mode(), new.capability_mode());
    assert_eq!(old.solver_backend(), new.solver_backend());
    assert_eq!(
        old.cg_solver_options().max_iterations,
        new.cg_solver_options().max_iterations
    );
    assert!(old.audit_options().is_some() && new.audit_options().is_some());
    assert!(old.lint_options().is_some() && new.lint_options().is_some());

    // And the two run identically through the engine.
    let (_, text) = &base_decks()[0];
    let jobs = vec![BatchJob::new("golden", text.clone(), standard_setup)];
    let options = BatchOptions::new().workers(1);
    let report_old = run_batch(&jobs, &options.clone().audit(AuditOptions::strict()));
    let report_new = run_batch(
        &jobs,
        &options.config(SessionConfig::new().audit(AuditOptions::strict())),
    );
    assert_eq!(
        format!("{:?}", report_old.outcomes),
        format!("{:?}", report_new.outcomes)
    );
}

//! Golden compatibility for the deprecated free functions.
//!
//! `run_deck`, `idealize_deck_text`, and `solve_and_contour` survive as
//! thin wrappers over the staged-session API; these tests pin the
//! contract that they still compile and produce **identical** output to
//! the sessions they delegate to. This file is the one place in the
//! repository allowed to call them — everywhere else `deprecated` is
//! denied.
#![allow(deprecated)]

use cafemio::pipeline::{idealize_deck_text, run_deck, solve_and_contour};
use cafemio::prelude::*;
use cafemio_bench::jobs::standard_setup;
use cafemio_bench::mutate::base_decks;

#[test]
fn solve_and_contour_matches_the_session_bit_for_bit() {
    let (_, text) = &base_decks()[0];
    let idealized = PipelineBuilder::new().parse(text).unwrap().idealize().unwrap();
    let model = standard_setup(&idealized.sets()[0].result.mesh).unwrap();
    let options = ContourOptions::new();
    for component in [
        StressComponent::Effective,
        StressComponent::Radial,
        StressComponent::Shear,
    ] {
        let old = solve_and_contour(&model, component, &options).unwrap();
        let new = PipelineBuilder::new()
            .model(model.clone())
            .solve()
            .unwrap()
            .recover()
            .unwrap()
            .contour_with(component, &options)
            .unwrap()
            .remove(0);
        assert_eq!(old, new, "{component}: wrapper diverged from session");
        // Belt and braces: the Debug rendering round-trips every f64, so
        // equal strings mean bit-identical floats.
        assert_eq!(format!("{old:?}"), format!("{new:?}"));
    }
}

#[test]
fn idealize_deck_text_matches_the_session() {
    for (name, text) in base_decks() {
        let old = idealize_deck_text(&text).unwrap();
        let new: Vec<_> = PipelineBuilder::new()
            .parse(&text)
            .unwrap()
            .idealize()
            .unwrap()
            .into_sets()
            .into_iter()
            .map(|set| (set.spec, set.result))
            .collect();
        assert_eq!(old.len(), new.len(), "{name}");
        assert_eq!(format!("{old:?}"), format!("{new:?}"), "{name}");
    }
}

#[test]
fn run_deck_matches_the_full_session_chain() {
    let (_, text) = &base_decks()[0];
    let options = ContourOptions::new();
    let old = run_deck(text, standard_setup, StressComponent::Effective, &options).unwrap();
    let new = PipelineBuilder::new()
        .component(StressComponent::Effective)
        .contour_options(options)
        .parse(text)
        .unwrap()
        .idealize()
        .unwrap()
        .setup(standard_setup)
        .unwrap()
        .solve()
        .unwrap()
        .recover()
        .unwrap()
        .contour()
        .unwrap();
    assert_eq!(old, new, "wrapper diverged from session");
    assert_eq!(format!("{old:?}"), format!("{new:?}"));
}

#[test]
fn wrapper_errors_keep_their_stage_attribution() {
    // A deck mid-truncation still reports DeckParse through the wrapper.
    let (_, text) = &base_decks()[0];
    let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
    let err = idealize_deck_text(&truncated).unwrap_err();
    assert_eq!(err.stage(), Stage::DeckParse);
}

//! Integration tests for the `cafemio-serve` deck service.
//!
//! Each test boots a real server on an ephemeral port and talks to it
//! over raw TCP: one golden request per typed error class asserting the
//! status code and JSON error body, a graceful-drain test proving no
//! accepted job is lost or answered twice, and a determinism test
//! diffing served summaries against a direct pipeline run.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cafemio::batch::BatchOptions;
use cafemio::fem::{CgOptions, SolverBackend};
use cafemio::lint::LintConfig;
use cafemio::pipeline::PipelineBuilder;
use cafemio::SessionConfig;
use cafemio_bench::mutate::base_decks;
use cafemio_serve::http::percent_encode;
use cafemio_serve::{analysis_summary_json, default_setup, ServeOptions, Server};

/// One blocking HTTP exchange: connect, send, read to EOF, return the
/// status code, raw header block, and body text.
fn request_full(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("set timeout");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header terminator");
    let head = String::from_utf8_lossy(&response[..split]).into_owned();
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .expect("parseable status line");
    (status, head, String::from_utf8_lossy(&response[split + 4..]).into_owned())
}

/// The value of a response header, case-insensitive on the name.
fn header_value<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines().find_map(|line| {
        let (key, value) = line.split_once(':')?;
        key.trim()
            .eq_ignore_ascii_case(name)
            .then(|| value.trim())
    })
}

/// Like [`request_full`], but dropping the header block.
fn request(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, String) {
    let (status, _, body) = request_full(addr, method, target, body);
    (status, body)
}

/// A valid catalog deck (name, text) for requests that must succeed.
fn good_deck() -> (String, String) {
    let (name, deck) = base_decks().into_iter().next().expect("non-empty corpus");
    (name.to_string(), deck)
}

/// A deck the default lint config denies.
fn denied_deck() -> &'static str {
    cafemio::lint::golden_cases()
        .into_iter()
        .find(|c| c.code == cafemio::lint::LintCode::DuplicateSubdivisionId)
        .expect("golden corpus covers every code")
        .deck
}

#[test]
fn unparseable_deck_answers_400_with_typed_body() {
    let server = Server::start(ServeOptions::new()).expect("start");
    let addr = server.local_addr();
    let (status, body) = request(addr, "POST", "/analyze?name=garbage", b"THIS IS NOT A DECK");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"status\": 400"), "{body}");
    assert!(body.contains("\"kind\": \"deck_parse\""), "{body}");
    server.shutdown();
}

#[test]
fn lint_denial_answers_422_with_typed_body() {
    let server = Server::start(ServeOptions::new()).expect("start");
    let addr = server.local_addr();
    let (status, body) = request(addr, "POST", "/analyze?name=denied", denied_deck().as_bytes());
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("\"status\": 422"), "{body}");
    assert!(body.contains("\"kind\": \"lint_denied\""), "{body}");
    server.shutdown();
}

#[test]
fn cg_no_convergence_answers_422_with_typed_body() {
    // A one-iteration CG budget cannot converge on any catalog deck, so
    // the solve stage fails with the typed CgNoConvergence error.
    let server = Server::start(
        ServeOptions::new().batch(
            BatchOptions::new().config(
                SessionConfig::new()
                    .solver(SolverBackend::SparseCg)
                    .cg_options(CgOptions::new().with_max_iterations(1)),
            ),
        ),
    )
    .expect("start");
    let addr = server.local_addr();
    let (name, deck) = good_deck();
    let target = format!("/analyze?name={}", percent_encode(&name));
    let (status, body) = request(addr, "POST", &target, deck.as_bytes());
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("\"kind\": \"cg_no_convergence\""), "{body}");
    assert!(body.contains("\"stage\": \"solution\""), "{body}");
    server.shutdown();
}

#[test]
fn oversized_body_answers_413_before_analysis() {
    let server = Server::start(ServeOptions::new().max_body_bytes(64)).expect("start");
    let addr = server.local_addr();
    let (_, deck) = good_deck();
    assert!(deck.len() > 64, "catalog decks exceed the tiny test limit");
    let (status, body) = request(addr, "POST", "/analyze?name=big", deck.as_bytes());
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("\"kind\": \"body_too_large\""), "{body}");
    server.shutdown();
}

#[test]
fn unknown_paths_and_methods_answer_404_and_405() {
    let server = Server::start(ServeOptions::new()).expect("start");
    let addr = server.local_addr();
    let (status, body) = request(addr, "GET", "/no-such-endpoint", b"");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("\"kind\": \"not_found\""), "{body}");
    let (status, body) = request(addr, "GET", "/analyze", b"");
    assert_eq!(status, 405, "{body}");
    assert!(body.contains("\"kind\": \"method_not_allowed\""), "{body}");
    server.shutdown();
}

#[test]
fn lint_endpoint_repairs_a_fixable_deck_and_reports_the_fix() {
    let case = cafemio::lint::fix_cases()
        .into_iter()
        .find(|c| c.code == cafemio::lint::LintCode::DeadShapeLine)
        .expect("fix corpus covers D006");
    let server = Server::start(ServeOptions::new()).expect("start");
    let addr = server.local_addr();
    let (status, head, body) =
        request_full(addr, "POST", "/lint?name=dead-line", case.before.as_bytes());
    assert_eq!(status, 200, "{body}");
    assert_eq!(header_value(&head, "X-Cafemio-Fixed"), Some("1"), "{head}");
    assert!(body.contains("\"fixes_applied\": 1"), "{body}");
    assert!(
        body.contains(&format!("\"code\": \"{}\"", case.code.code())),
        "{body}"
    );
    assert!(body.contains("\"clean\": true"), "{body}");

    // The repaired deck in the body is exactly the corpus after-deck —
    // and posting it back is a no-op with zero fixes.
    let escaped = format!(
        "\"{}\"",
        case.after.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
    );
    assert!(body.contains(&escaped), "{body}");
    let (status, head, again) =
        request_full(addr, "POST", "/lint?name=dead-line", case.after.as_bytes());
    assert_eq!(status, 200, "{again}");
    assert_eq!(header_value(&head, "X-Cafemio-Fixed"), Some("0"), "{head}");
    assert!(again.contains("\"fixes_applied\": 0"), "{again}");
    server.shutdown();
}

#[test]
fn lint_endpoint_answers_422_when_denials_survive_and_400_on_garbage() {
    let server = Server::start(ServeOptions::new()).expect("start");
    let addr = server.local_addr();
    // No machine fix exists for a duplicate-id denial: typed 422.
    let (status, head, body) =
        request_full(addr, "POST", "/lint?name=denied", denied_deck().as_bytes());
    assert_eq!(status, 422, "{body}");
    assert_eq!(header_value(&head, "X-Cafemio-Fixed"), Some("0"), "{head}");
    assert!(body.contains("\"clean\": false"), "{body}");
    assert!(body.contains("\"machine_fixable\": false"), "{body}");
    // An unparseable deck cannot be linted at all: typed 400.
    let (status, body) = request(addr, "POST", "/lint?name=garbage", b"THIS IS NOT A DECK");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"deck_parse\""), "{body}");
    server.shutdown();
}

/// Worker-pool gate: while closed, every accepted job blocks inside its
/// setup callback, pinning the dispatcher at capacity.
#[derive(Default)]
struct Gate {
    closed: Mutex<bool>,
    opened: Condvar,
}

impl Gate {
    fn close(&self) {
        *self.closed.lock().unwrap_or_else(|e| e.into_inner()) = true;
    }

    fn open(&self) {
        *self.closed.lock().unwrap_or_else(|e| e.into_inner()) = false;
        self.opened.notify_all();
    }

    fn wait_open(&self) {
        let mut closed = self.closed.lock().unwrap_or_else(|e| e.into_inner());
        while *closed {
            closed = self.opened.wait(closed).unwrap_or_else(|e| e.into_inner());
        }
    }
}

#[test]
fn saturated_admission_answers_503_and_held_jobs_still_finish() {
    let gate = Arc::new(Gate::default());
    let setup_gate = Arc::clone(&gate);
    let server = Server::start(
        ServeOptions::new()
            .batch(BatchOptions::new().workers(1).max_in_flight(1))
            .setup(Arc::new(move |mesh| {
                setup_gate.wait_open();
                default_setup(mesh)
            })),
    )
    .expect("start");
    let addr = server.local_addr();
    let (name, deck) = good_deck();
    let target = format!("/analyze?name={}", percent_encode(&name));

    gate.close();
    let held = {
        let target = target.clone();
        let deck = deck.clone();
        std::thread::spawn(move || request(addr, "POST", &target, deck.as_bytes()))
    };
    // Wait until the single slot is pinned behind the gate.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = request(addr, "GET", "/healthz", b"");
        assert_eq!(status, 200, "{body}");
        if body.contains("\"in_flight\": 1") {
            break;
        }
        assert!(Instant::now() < deadline, "dispatcher never filled: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }

    let (status, body) = request(addr, "POST", &target, deck.as_bytes());
    gate.open();
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"kind\": \"saturated\""), "{body}");
    assert!(body.contains("\"status\": 503"), "{body}");

    let (status, body) = held.join().expect("holder thread");
    assert_eq!(status, 200, "held job must still complete: {body}");
    server.shutdown();
}

#[test]
fn drain_finishes_every_accepted_job_and_loses_none() {
    let server = Server::start(
        ServeOptions::new().batch(BatchOptions::new().workers(2).max_in_flight(4)),
    )
    .expect("start");
    let addr = server.local_addr();
    let corpus = base_decks();
    let clients = 6usize;

    let (shutdown, outcomes) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..clients {
            let (name, deck) = &corpus[i % corpus.len()];
            let target = format!("/analyze?name={}", percent_encode(name));
            let deck = deck.as_bytes();
            handles.push(scope.spawn(move || request(addr, "POST", &target, deck)));
        }
        // Let the fleet reach the server, then pull the plug mid-flight.
        std::thread::sleep(Duration::from_millis(10));
        let shutdown = request(addr, "POST", "/shutdown", b"");
        let outcomes: Vec<(u16, String)> = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        (shutdown, outcomes)
    });
    assert_eq!(shutdown.0, 200, "{}", shutdown.1);
    assert!(shutdown.1.contains("\"status\": \"draining\""), "{}", shutdown.1);

    // Every client gets exactly one complete response: 200 means its job
    // was accepted and finished, 503 means admission control refused it.
    let mut completed = 0u64;
    for (status, body) in &outcomes {
        match status {
            200 => completed += 1,
            503 => assert!(
                body.contains("\"kind\": \"draining\"") || body.contains("\"kind\": \"saturated\""),
                "{body}"
            ),
            other => panic!("drain client got unexpected status {other}: {body}"),
        }
    }

    let report = server.shutdown();
    let accepted = report.counter("batch.jobs").unwrap_or(0);
    let finished =
        report.counter("batch.completed").unwrap_or(0) + report.counter("batch.failed").unwrap_or(0);
    assert_eq!(accepted, finished, "drain lost accepted jobs");
    // Catalog decks cannot fail, so accepted jobs and 200 responses must
    // match one-to-one: nothing lost, nothing answered twice.
    assert_eq!(report.counter("batch.failed").unwrap_or(0), 0);
    assert_eq!(accepted, completed, "accepted jobs vs 200 responses");
}

#[test]
fn served_summary_is_byte_identical_to_direct_pipeline_run() {
    let server = Server::start(ServeOptions::new()).expect("start");
    let addr = server.local_addr();
    let (name, deck) = good_deck();
    let target = format!("/analyze?name={}", percent_encode(&name));

    let (status_a, body_a) = request(addr, "POST", &target, deck.as_bytes());
    let (status_b, body_b) = request(addr, "POST", &target, deck.as_bytes());
    assert_eq!((status_a, status_b), (200, 200));

    let parsed = PipelineBuilder::new()
        .config(SessionConfig::new().lint(LintConfig::new()))
        .parse(&deck)
        .expect("catalog deck parses");
    let lint = parsed.lint_report().cloned();
    let plots = parsed
        .idealize()
        .and_then(|i| i.setup(default_setup))
        .and_then(|m| m.solve())
        .and_then(|s| s.recover())
        .and_then(|r| r.contour())
        .expect("catalog deck analyzes");
    let expected = analysis_summary_json(&name, &plots, lint.as_ref());

    assert_eq!(body_a, body_b, "serve/serve runs must agree byte-for-byte");
    assert_eq!(body_a, expected, "serve/direct runs must agree byte-for-byte");
    server.shutdown();
}

#[test]
fn response_cache_marks_hits_and_answers_byte_identically() {
    let store = Arc::new(cafemio::cache::StageCache::new());
    let server = Server::start(
        ServeOptions::new().batch(
            BatchOptions::new().config(SessionConfig::new().cache(Arc::clone(&store))),
        ),
    )
    .expect("start");
    let addr = server.local_addr();
    let (name, deck) = good_deck();
    let target = format!("/analyze?name={}", percent_encode(&name));

    let (status_a, head_a, body_a) = request_full(addr, "POST", &target, deck.as_bytes());
    assert_eq!(status_a, 200, "{body_a}");
    assert_eq!(header_value(&head_a, "X-Cafemio-Cache"), Some("miss"), "{head_a}");

    let (status_b, head_b, body_b) = request_full(addr, "POST", &target, deck.as_bytes());
    assert_eq!(status_b, 200, "{body_b}");
    assert_eq!(header_value(&head_b, "X-Cafemio-Cache"), Some("hit"), "{head_b}");
    assert_eq!(body_a, body_b, "a cache hit must serve the identical bytes");

    // A different query names a different response: back to a miss
    // (although every pipeline stage underneath answers from the store).
    let renamed = format!("/analyze?name={}", percent_encode("other-name"));
    let (status_c, head_c, body_c) = request_full(addr, "POST", &renamed, deck.as_bytes());
    assert_eq!(status_c, 200, "{body_c}");
    assert_eq!(header_value(&head_c, "X-Cafemio-Cache"), Some("miss"), "{head_c}");

    // Errors are never memoized, so a bad deck always reports a miss.
    let bad = format!("/analyze?name={}", percent_encode("garbage"));
    for _ in 0..2 {
        let (status, head, body) = request_full(addr, "POST", &bad, b"THIS IS NOT A DECK");
        assert_eq!(status, 400, "{body}");
        assert_eq!(header_value(&head, "X-Cafemio-Cache"), Some("miss"), "{head}");
    }

    // /metrics surfaces the shared store's effectiveness counters.
    let (status, body) = request(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200, "{body}");
    for counter in ["cache.hits", "cache.misses", "cache.bytes", "cache.entries"] {
        assert!(body.contains(counter), "missing {counter} in {body}");
    }
    let stats = store.stats();
    assert!(stats.hits >= 1, "the hit response must come from the store: {stats:?}");
    server.shutdown();
}

#[test]
fn uncached_server_sends_no_cache_header() {
    let server = Server::start(ServeOptions::new()).expect("start");
    let addr = server.local_addr();
    let (name, deck) = good_deck();
    let target = format!("/analyze?name={}", percent_encode(&name));
    let (status, head, body) = request_full(addr, "POST", &target, deck.as_bytes());
    assert_eq!(status, 200, "{body}");
    assert_eq!(header_value(&head, "X-Cafemio-Cache"), None, "{head}");
    server.shutdown();
}

//! Integration: the coupled analysis chains the paper's figures imply —
//! Figure 14's temperatures feeding a thermal-stress analysis, and
//! Figure 13's "MODIFIED FOR CONTACT" seat resolved through load
//! increments, each ending in an OSPL plot.

use cafemio::fem::{solve_contact_increments, StressField};
use cafemio::idlz::Idealization;
use cafemio::models::{hatch, tbeam};
use cafemio::ospl::listing;
use cafemio::prelude::*;

#[test]
fn temperature_field_to_thermal_stress_to_contour() {
    let idealized = Idealization::run(&tbeam::spec()).unwrap();
    let history = tbeam::run_pulse(&idealized.mesh, 2.0, 100).unwrap();
    let temperatures = history.at_time(2.0);
    let model = tbeam::thermal_stress_model(&idealized.mesh, temperatures);
    let plot = PipelineBuilder::new()
        .component(StressComponent::Effective)
        .model(model)
        .solve()
        .unwrap()
        .recover()
        .unwrap()
        .contour()
        .unwrap()
        .remove(0);
    assert!(plot.contours.drawn_contours() > 3);
    // The stress scale is hundreds to thousands of psi for a ~250 °F
    // gradient in steel (E·α·ΔT ~ 30e6 × 6.5e-6 × 250 ≈ 49 000 psi upper
    // bound; the partially free flange sits well below it).
    let (_, hi) = plot.field.min_max().unwrap();
    assert!(hi > 500.0 && hi < 60_000.0, "peak effective {hi}");
    // The OSPL summary prints one row per level.
    let text = listing(&plot.contours);
    assert!(text.contains("PROGRAM OSPL"));
}

#[test]
fn contact_increments_to_contour() {
    let idealized = Idealization::run(&hatch::dssv_hatch_spec()).unwrap();
    let (model, supports) = hatch::dssv_contact_model(&idealized.mesh);
    let increments = solve_contact_increments(&model, &supports, 4, 20).unwrap();
    assert_eq!(increments.len(), 4);
    // Proportional loading: displacements grow monotonically with the
    // factor once the bearing set settles.
    let pole = cafemio::models::support::nodes_where(model.mesh(), |p| p.x.abs() < 1e-9);
    let mut last = 0.0f64;
    for inc in &increments {
        let w = inc.result.solution.displacement(pole[0]).1.abs();
        assert!(w >= last - 1e-12, "increment {}: {w} < {last}", inc.number);
        last = w;
    }
    // Final increment contours cleanly.
    let final_increment = increments.last().unwrap();
    let stresses = StressField::compute(&model, &final_increment.result.solution).unwrap();
    let plot = Ospl::run(
        model.mesh(),
        &stresses.effective(),
        &ContourOptions::new(),
    )
    .unwrap();
    assert!(plot.drawn_contours() > 3);
}

#[test]
fn thermal_stress_scales_with_the_pulse() {
    // Half the pulse, roughly half the thermal stress (linearity of the
    // whole chain through with_load_factor on the thermal load).
    let idealized = Idealization::run(&tbeam::spec()).unwrap();
    let history = tbeam::run_pulse(&idealized.mesh, 2.0, 100).unwrap();
    let model = tbeam::thermal_stress_model(&idealized.mesh, history.at_time(2.0));
    let half = model.with_load_factor(0.5);
    let full_solution = model.solve().unwrap();
    let half_solution = half.solve().unwrap();
    let full_peak = StressField::compute(&model, &full_solution)
        .unwrap()
        .effective()
        .min_max()
        .unwrap()
        .1;
    let half_peak = StressField::compute(&half, &half_solution)
        .unwrap()
        .effective()
        .min_max()
        .unwrap()
        .1;
    assert!(
        (half_peak - 0.5 * full_peak).abs() < 1e-6 * full_peak,
        "{half_peak} vs half of {full_peak}"
    );
}

//! Parity property tests for the spatial-acceleration layer: the BVH,
//! [`MeshIndex`], [`FieldProbe`], and the accelerated isogram extraction
//! must reproduce their brute-force definitions **bit for bit** — on
//! random geometry, on every catalog mesh, and on the mutated-deck
//! corpus the fault-injection suite drives.
//!
//! The workspace builds with no external dependencies, so these run each
//! property over seeded [`SplitMix64`] cases — deterministic run to run.

use cafemio::geom::{BoundingBox, Bvh, Point, Segment};
use cafemio::idlz::Idealization;
use cafemio::mesh::{BoundaryKind, FieldProbe, MeshIndex, NodalField, TriMesh};
use cafemio::ospl::{extract_isograms, extract_isograms_reference};
use cafemio::pipeline::PipelineBuilder;
use cafemio_bench::mutate::{base_decks, mutate, Fault, SplitMix64};

fn f64_in(rng: &mut SplitMix64, lo: f64, hi: f64) -> f64 {
    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    lo + unit * (hi - lo)
}

/// Random axis-aligned boxes, a few degenerate (point or segment) ones
/// among them.
fn random_boxes(rng: &mut SplitMix64, n: usize) -> Vec<BoundingBox> {
    (0..n)
        .map(|i| {
            let x = f64_in(rng, -10.0, 10.0);
            let y = f64_in(rng, -10.0, 10.0);
            let (w, h) = if i % 7 == 0 {
                (0.0, 0.0) // degenerate point box
            } else if i % 7 == 1 {
                (f64_in(rng, 0.0, 3.0), 0.0) // degenerate segment box
            } else {
                (f64_in(rng, 0.0, 3.0), f64_in(rng, 0.0, 3.0))
            };
            BoundingBox::from_points([Point::new(x, y), Point::new(x + w, y + h)])
        })
        .collect()
}

/// A structured grid with every interior node jittered: irregular but
/// valid triangles, the shape the catalog meshes take after smoothing.
fn jittered_grid(rng: &mut SplitMix64, n: usize) -> TriMesh {
    let mut mesh = TriMesh::new();
    let mut ids = Vec::new();
    for j in 0..=n {
        for i in 0..=n {
            let boundary = i == 0 || j == 0 || i == n || j == n;
            let jitter = if boundary { 0.0 } else { 0.3 };
            let p = Point::new(
                i as f64 + f64_in(rng, -jitter, jitter),
                j as f64 + f64_in(rng, -jitter, jitter),
            );
            let kind = if boundary {
                BoundaryKind::Boundary
            } else {
                BoundaryKind::Interior
            };
            ids.push(mesh.add_node(p, kind));
        }
    }
    let at = |i: usize, j: usize| ids[j * (n + 1) + i];
    for j in 0..n {
        for i in 0..n {
            mesh.add_element([at(i, j), at(i + 1, j), at(i + 1, j + 1)]).unwrap();
            mesh.add_element([at(i, j), at(i + 1, j + 1), at(i, j + 1)]).unwrap();
        }
    }
    mesh
}

/// A smooth synthetic field over the node positions — enough curvature
/// that contour levels cross elements at all angles.
fn position_field(mesh: &TriMesh) -> NodalField {
    let values: Vec<f64> = mesh
        .nodes()
        .map(|(_, n)| {
            let (x, y) = (n.position.x, n.position.y);
            3.0 * x * x - 2.0 * x * y + y + 0.5 * y * y
        })
        .collect();
    NodalField::new("SPATIAL", values)
}

#[test]
fn bvh_overlap_and_stab_queries_match_the_brute_force_scan() {
    let mut rng = SplitMix64::new(0xB_5EED);
    for round in 0..50 {
        let count = 1 + rng.below(120);
        let boxes = random_boxes(&mut rng, count);
        let bvh = Bvh::build(&boxes);
        let query = random_boxes(&mut rng, 1)[0];
        let brute_overlap: Vec<usize> = (0..boxes.len())
            .filter(|&i| boxes[i].intersects(&query))
            .collect();
        assert_eq!(bvh.overlapping(&query), brute_overlap, "round {round}");
        let p = Point::new(f64_in(&mut rng, -12.0, 12.0), f64_in(&mut rng, -12.0, 12.0));
        let brute_stab: Vec<usize> =
            (0..boxes.len()).filter(|&i| boxes[i].contains(p)).collect();
        assert_eq!(bvh.stabbing(p), brute_stab, "round {round}");
    }
}

#[test]
fn bvh_nearest_matches_the_brute_argmin_with_ties_to_the_lower_index() {
    let mut rng = SplitMix64::new(0xD15_7A9CE);
    for round in 0..50 {
        let count = 1 + rng.below(100);
        let boxes = random_boxes(&mut rng, count);
        // Snap half the rounds onto an integer lattice so exact distance
        // ties between distinct items actually occur.
        let boxes: Vec<BoundingBox> = if round % 2 == 0 {
            boxes
                .iter()
                .map(|b| {
                    BoundingBox::from_points([
                        Point::new(b.min().x.round(), b.min().y.round()),
                        Point::new(b.max().x.round(), b.max().y.round()),
                    ])
                })
                .collect()
        } else {
            boxes
        };
        let segments: Vec<Segment> = boxes
            .iter()
            .map(|b| Segment::new(b.min(), b.max()))
            .collect();
        let bvh = Bvh::build(&boxes);
        let p = Point::new(f64_in(&mut rng, -12.0, 12.0), f64_in(&mut rng, -12.0, 12.0));
        let distance = |i: usize| segments[i].distance_to_point(p);
        let mut brute: Option<(usize, f64)> = None;
        for i in 0..boxes.len() {
            let d = distance(i);
            if d.is_nan() {
                continue;
            }
            if brute.is_none_or(|(_, best)| d < best) {
                brute = Some((i, d));
            }
        }
        assert_eq!(bvh.nearest_by(p, distance), brute, "round {round}");
    }
}

#[test]
fn mesh_index_queries_match_their_brute_definitions_on_random_meshes() {
    let mut rng = SplitMix64::new(0x6E0);
    for round in 0..12 {
        let size = 2 + rng.below(6);
        let mesh = jittered_grid(&mut rng, size);
        let index = MeshIndex::new(&mesh);
        let segments: Vec<Segment> = mesh
            .edges()
            .keys()
            .map(|e| Segment::new(mesh.node(e.0).position, mesh.node(e.1).position))
            .collect();
        for _ in 0..40 {
            let p = Point::new(f64_in(&mut rng, -2.0, 9.0), f64_in(&mut rng, -2.0, 9.0));
            let brute_locate = mesh
                .elements()
                .map(|(id, _)| id)
                .find(|&id| mesh.triangle(id).contains(p));
            assert_eq!(index.locate(p), brute_locate, "round {round} probe {p:?}");
            let brute_distance = segments
                .iter()
                .map(|s| s.distance_to_point(p))
                .fold(f64::INFINITY, f64::min);
            assert_eq!(
                index.nearest_edge_distance(p),
                brute_distance,
                "round {round} probe {p:?}"
            );
        }
    }
}

#[test]
fn accelerated_isograms_match_the_reference_on_the_mutated_deck_corpus() {
    // Drive every base deck and a mutated variant of each fault through
    // idealization; whatever still yields a mesh (the SingularBc fault
    // leaves deck text untouched, and some mutations land harmlessly)
    // joins the corpus. On each mesh the interval-indexed extraction,
    // the element locator, and the nearest-edge query must agree with
    // their brute-force definitions exactly.
    let mut rng = SplitMix64::new(0xC0_FF_EE);
    let mut texts: Vec<String> = Vec::new();
    for (_, text) in base_decks() {
        for fault in Fault::ALL {
            texts.push(mutate(&text, fault, &mut rng));
        }
        texts.push(text);
    }
    let mut meshes_checked = 0usize;
    for text in &texts {
        let Ok(idealized) = PipelineBuilder::new()
            .parse(text)
            .and_then(|parsed| parsed.idealize())
        else {
            continue;
        };
        for mesh in idealized.meshes() {
            let field = position_field(mesh);
            let (min, max) = field.min_max().expect("non-empty field");
            let levels: Vec<f64> =
                (1..8).map(|k| min + (max - min) * k as f64 / 8.0).collect();
            let fast = extract_isograms(mesh, &field, &levels).unwrap();
            let slow = extract_isograms_reference(mesh, &field, &levels).unwrap();
            assert_eq!(fast, slow);
            let index = MeshIndex::new(mesh);
            let segments: Vec<Segment> = mesh
                .edges()
                .keys()
                .map(|e| Segment::new(mesh.node(e.0).position, mesh.node(e.1).position))
                .collect();
            let extents = mesh.bounding_box();
            for _ in 0..20 {
                let p = Point::new(
                    f64_in(&mut rng, extents.min().x - 1.0, extents.max().x + 1.0),
                    f64_in(&mut rng, extents.min().y - 1.0, extents.max().y + 1.0),
                );
                let brute_locate = mesh
                    .elements()
                    .map(|(id, _)| id)
                    .find(|&id| mesh.triangle(id).contains(p));
                assert_eq!(index.locate(p), brute_locate, "probe {p:?}");
                let brute_distance = segments
                    .iter()
                    .map(|s| s.distance_to_point(p))
                    .fold(f64::INFINITY, f64::min);
                assert_eq!(index.nearest_edge_distance(p), brute_distance, "probe {p:?}");
            }
            meshes_checked += 1;
        }
    }
    assert!(meshes_checked >= base_decks().len(), "corpus too small: {meshes_checked}");
}

#[test]
fn field_probe_agrees_with_the_brute_barycentric_scan_on_every_catalog_mesh() {
    let mut rng = SplitMix64::new(0x5A_3F1E);
    let mut meshes_checked = 0usize;
    for entry in cafemio::models::catalog() {
        let Ok(idealized) = Idealization::run(&(entry.spec)()) else {
            continue;
        };
        let mesh = idealized.mesh;
        let field = position_field(&mesh);
        let probe = FieldProbe::new(&mesh, &field).unwrap();
        let extents = mesh.bounding_box();
        // Random probes across (and slightly beyond) the extents, plus
        // every element centroid — points guaranteed inside.
        let mut points: Vec<Point> = (0..40)
            .map(|_| {
                Point::new(
                    f64_in(&mut rng, extents.min().x - 0.5, extents.max().x + 0.5),
                    f64_in(&mut rng, extents.min().y - 0.5, extents.max().y + 0.5),
                )
            })
            .collect();
        points.extend(mesh.elements().take(200).map(|(id, _)| {
            let v = mesh.triangle(id).vertices;
            Point::new(
                (v[0].x + v[1].x + v[2].x) / 3.0,
                (v[0].y + v[1].y + v[2].y) / 3.0,
            )
        }));
        for p in points {
            assert_eq!(
                probe.sample(p.x, p.y),
                probe.sample_reference(p.x, p.y),
                "{}: probe {p:?}",
                entry.name
            );
        }
        meshes_checked += 1;
    }
    assert!(meshes_checked > 0, "catalog yielded no meshes");
}

//! Determinism and reproducibility: the same input deck must produce the
//! same mesh, the same punched cards, and the same plot command stream,
//! run after run — the property that made card-driven batch workflows
//! auditable.

use cafemio::idlz::deck::{punch_element_cards, punch_nodal_cards, write_deck};
use cafemio::idlz::Idealization;
use cafemio::models::{catalog, joint};
use cafemio::plotter::render_svg;
use cafemio::prelude::*;

#[test]
fn idealization_is_deterministic() {
    for entry in catalog() {
        let a = Idealization::run(&(entry.spec)()).unwrap();
        let b = Idealization::run(&(entry.spec)()).unwrap();
        assert_eq!(a.mesh, b.mesh, "{}", entry.name);
        assert_eq!(a.stats.bandwidth_after, b.stats.bandwidth_after);
        assert_eq!(a.reform.swaps, b.reform.swaps);
    }
}

#[test]
fn punched_decks_are_byte_identical() {
    let spec = joint::spec();
    let run = |spec: &IdealizationSpec| {
        let result = Idealization::run(spec).unwrap();
        let nodal = punch_nodal_cards(&result.mesh, spec.nodal_format()).unwrap();
        let element = punch_element_cards(&result.mesh, spec.element_format()).unwrap();
        (nodal.to_text(), element.to_text())
    };
    let (n1, e1) = run(&spec);
    let (n2, e2) = run(&spec);
    assert_eq!(n1, n2);
    assert_eq!(e1, e2);
}

#[test]
fn input_decks_are_byte_identical() {
    let spec = joint::spec();
    let d1 = write_deck(std::slice::from_ref(&spec)).unwrap().to_text();
    let d2 = write_deck(std::slice::from_ref(&spec)).unwrap().to_text();
    assert_eq!(d1, d2);
}

#[test]
fn plot_streams_are_deterministic() {
    let entry = &catalog()[1];
    let a = Idealization::run(&(entry.spec)()).unwrap();
    let b = Idealization::run(&(entry.spec)()).unwrap();
    for (fa, fb) in a.frames.iter().zip(&b.frames) {
        assert_eq!(fa.commands(), fb.commands());
        assert_eq!(render_svg(fa), render_svg(fb));
    }
}

#[test]
fn contours_invariant_under_renumbering() {
    // Isograms are geometric: renumbering the nodes (and carrying the
    // field along) must not change any contour's level set.
    let result = Idealization::run(&joint::spec()).unwrap();
    let model = joint::pressure_model(&result.mesh);
    let solution = model.solve().unwrap();
    let stresses = StressField::compute(&model, &solution).unwrap();
    let field = stresses.effective();
    let before = Ospl::run(&result.mesh, &field, &ContourOptions::new()).unwrap();

    let mut mesh = result.mesh.clone();
    let mut field = field.clone();
    let perm = cafemio::mesh::reverse_cuthill_mckee(&mesh);
    mesh.renumber_nodes(&perm);
    field.renumber(&perm);
    let after = Ospl::run(&mesh, &field, &ContourOptions::new()).unwrap();

    assert_eq!(before.levels, after.levels);
    for (a, b) in before.isograms.iter().zip(&after.isograms) {
        assert_eq!(a.segments.len(), b.segments.len(), "level {}", a.level);
        assert!((a.length() - b.length()).abs() < 1e-9, "level {}", a.level);
    }
}

/// Runs `f` twice — once with the parallel hot paths vetoed, once with
/// them enabled — and returns both results. Always re-enables
/// parallelism afterwards.
fn serial_then_parallel<T>(mut f: impl FnMut() -> T) -> (T, T) {
    use cafemio::instrument::par::set_parallel;
    // The veto is global: hold a lock so concurrently-running tests
    // can't re-enable parallelism mid-comparison.
    static VETO: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = VETO.lock().unwrap();
    set_parallel(false);
    let serial = f();
    set_parallel(true);
    let parallel = f();
    (serial, parallel)
}

#[test]
fn parallel_assembly_is_bit_identical_to_serial() {
    // The element-stiffness fan-out must not change the result at all:
    // stiffness matrices are computed in parallel but scattered serially
    // in element order, so every floating-point addition happens in the
    // same order as the serial run.
    let result = Idealization::run(&joint::spec()).unwrap();
    let model = joint::pressure_model(&result.mesh);
    let (serial, parallel) = serial_then_parallel(|| model.solve().unwrap());
    assert_eq!(serial.dofs().len(), parallel.dofs().len());
    for (i, (s, p)) in serial.dofs().iter().zip(parallel.dofs()).enumerate() {
        assert_eq!(s.to_bits(), p.to_bits(), "dof {i}: {s} vs {p}");
    }
    // The skyline path fans out the same way.
    let (serial, parallel) = serial_then_parallel(|| model.solve_skyline().unwrap());
    for (s, p) in serial.dofs().iter().zip(parallel.dofs()) {
        assert_eq!(s.to_bits(), p.to_bits());
    }
}

#[test]
fn parallel_isogram_extraction_is_bit_identical_to_serial() {
    // Levels are traced in parallel but each level sweeps the elements
    // in the same order as the serial loop, so every crossing point is
    // computed identically.
    let result = Idealization::run(&joint::spec()).unwrap();
    let model = joint::pressure_model(&result.mesh);
    let solution = model.solve().unwrap();
    let stresses = StressField::compute(&model, &solution).unwrap();
    let field = stresses.effective();
    let (serial, parallel) =
        serial_then_parallel(|| Ospl::run(&result.mesh, &field, &ContourOptions::new()).unwrap());
    assert_eq!(serial.levels, parallel.levels);
    assert_eq!(serial.isograms.len(), parallel.isograms.len());
    for (a, b) in serial.isograms.iter().zip(&parallel.isograms) {
        assert_eq!(a.segments.len(), b.segments.len(), "level {}", a.level);
        for (sa, sb) in a.segments.iter().zip(&b.segments) {
            assert_eq!(sa.a.x.to_bits(), sb.a.x.to_bits());
            assert_eq!(sa.a.y.to_bits(), sb.a.y.to_bits());
            assert_eq!(sa.b.x.to_bits(), sb.b.x.to_bits());
            assert_eq!(sa.b.y.to_bits(), sb.b.y.to_bits());
            assert_eq!(sa.a_on_boundary, sb.a_on_boundary);
            assert_eq!(sa.b_on_boundary, sb.b_on_boundary);
        }
    }
}

#[test]
fn solver_is_deterministic() {
    let result = Idealization::run(&joint::spec()).unwrap();
    let model = joint::pressure_model(&result.mesh);
    let s1 = model.solve().unwrap();
    let s2 = model.solve().unwrap();
    assert_eq!(s1.dofs(), s2.dofs());
    // All three solver paths agree to tight tolerance.
    let sky = model.solve_skyline().unwrap();
    let dense = model.solve_dense().unwrap();
    let scale = s1.max_displacement();
    for i in 0..s1.dofs().len() {
        assert!((s1.dofs()[i] - sky.dofs()[i]).abs() < 1e-9 * scale);
        assert!((s1.dofs()[i] - dense.dofs()[i]).abs() < 1e-8 * scale);
    }
}

//! Determinism and reproducibility: the same input deck must produce the
//! same mesh, the same punched cards, and the same plot command stream,
//! run after run — the property that made card-driven batch workflows
//! auditable.

use cafemio::idlz::deck::{punch_element_cards, punch_nodal_cards, write_deck};
use cafemio::idlz::Idealization;
use cafemio::models::{catalog, joint};
use cafemio::plotter::render_svg;
use cafemio::prelude::*;

#[test]
fn idealization_is_deterministic() {
    for entry in catalog() {
        let a = Idealization::run(&(entry.spec)()).unwrap();
        let b = Idealization::run(&(entry.spec)()).unwrap();
        assert_eq!(a.mesh, b.mesh, "{}", entry.name);
        assert_eq!(a.stats.bandwidth_after, b.stats.bandwidth_after);
        assert_eq!(a.reform.swaps, b.reform.swaps);
    }
}

#[test]
fn punched_decks_are_byte_identical() {
    let spec = joint::spec();
    let run = |spec: &IdealizationSpec| {
        let result = Idealization::run(spec).unwrap();
        let nodal = punch_nodal_cards(&result.mesh, spec.nodal_format()).unwrap();
        let element = punch_element_cards(&result.mesh, spec.element_format()).unwrap();
        (nodal.to_text(), element.to_text())
    };
    let (n1, e1) = run(&spec);
    let (n2, e2) = run(&spec);
    assert_eq!(n1, n2);
    assert_eq!(e1, e2);
}

#[test]
fn input_decks_are_byte_identical() {
    let spec = joint::spec();
    let d1 = write_deck(std::slice::from_ref(&spec)).unwrap().to_text();
    let d2 = write_deck(std::slice::from_ref(&spec)).unwrap().to_text();
    assert_eq!(d1, d2);
}

#[test]
fn plot_streams_are_deterministic() {
    let entry = &catalog()[1];
    let a = Idealization::run(&(entry.spec)()).unwrap();
    let b = Idealization::run(&(entry.spec)()).unwrap();
    for (fa, fb) in a.frames.iter().zip(&b.frames) {
        assert_eq!(fa.commands(), fb.commands());
        assert_eq!(render_svg(fa), render_svg(fb));
    }
}

#[test]
fn contours_invariant_under_renumbering() {
    // Isograms are geometric: renumbering the nodes (and carrying the
    // field along) must not change any contour's level set.
    let result = Idealization::run(&joint::spec()).unwrap();
    let model = joint::pressure_model(&result.mesh);
    let solution = model.solve().unwrap();
    let stresses = StressField::compute(&model, &solution).unwrap();
    let field = stresses.effective();
    let before = Ospl::run(&result.mesh, &field, &ContourOptions::new()).unwrap();

    let mut mesh = result.mesh.clone();
    let mut field = field.clone();
    let perm = cafemio::mesh::reverse_cuthill_mckee(&mesh);
    mesh.renumber_nodes(&perm);
    field.renumber(&perm);
    let after = Ospl::run(&mesh, &field, &ContourOptions::new()).unwrap();

    assert_eq!(before.levels, after.levels);
    for (a, b) in before.isograms.iter().zip(&after.isograms) {
        assert_eq!(a.segments.len(), b.segments.len(), "level {}", a.level);
        assert!((a.length() - b.length()).abs() < 1e-9, "level {}", a.level);
    }
}

#[test]
fn solver_is_deterministic() {
    let result = Idealization::run(&joint::spec()).unwrap();
    let model = joint::pressure_model(&result.mesh);
    let s1 = model.solve().unwrap();
    let s2 = model.solve().unwrap();
    assert_eq!(s1.dofs(), s2.dofs());
    // All three solver paths agree to tight tolerance.
    let sky = model.solve_skyline().unwrap();
    let dense = model.solve_dense().unwrap();
    let scale = s1.max_displacement();
    for i in 0..s1.dofs().len() {
        assert!((s1.dofs()[i] - sky.dofs()[i]).abs() < 1e-9 * scale);
        assert!((s1.dofs()[i] - dense.dofs()[i]).abs() < 1e-8 * scale);
    }
}

#!/usr/bin/env bash
# Verification gate, shared by local runs and CI.
#
#   scripts/verify.sh              # every stage
#   scripts/verify.sh build test   # a selection
#
# Stages:
#   build   release build of the whole workspace
#   test    workspace test suite (includes the fault-injection suite)
#   doc     rustdoc with warnings denied
#   clippy  clippy on all targets with warnings denied
#   fuzz    fixed-seed fault-injection smoke (panic-free pipeline gate)
#   bench   figures binary + BENCH_pipeline.json structural validation
#   batch   batch engine over the models corpus + BENCH_batch.json validation
#   audit   strict-audit bug sweep over the faulted corpus + BENCH_audit.json
#   lint    srclint source gate + decklint golden-corpus gate + BENCH_lint.json
#   large_mesh  100k-element sparse-CG smoke + BENCH_sparse.json
set -euo pipefail
cd "$(dirname "$0")/.."

run_build() {
  echo "== build (release)"
  cargo build --release --workspace
}

run_test() {
  echo "== tests"
  cargo test -q --workspace
}

run_doc() {
  echo "== rustdoc (warnings are errors)"
  RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
}

run_clippy() {
  echo "== clippy (warnings are errors)"
  cargo clippy --workspace --all-targets -- -D warnings
}

run_fuzz() {
  echo "== fuzz smoke (fixed-seed fault injection)"
  cargo run --release -p cafemio-bench --bin fuzz_smoke
}

run_bench() {
  echo "== bench smoke (stage timings artifact)"
  # Regenerate only the timing profile (the filter matches no figure id).
  cargo run --release -p cafemio-bench --bin figures -- NONE_SELECTED
  cargo run --release -p cafemio-bench --bin bench_smoke
}

run_batch() {
  echo "== batch smoke (concurrent batch engine + throughput artifact)"
  cargo run --release -p cafemio-bench --bin batch_bench
  cargo run --release -p cafemio-bench --bin batch_smoke
}

run_audit() {
  echo "== audit sweep (strict per-stage invariants over the faulted corpus)"
  cargo run --release -p cafemio-bench --bin audit_sweep
}

run_lint() {
  echo "== static analysis (repo source gate + deck lint golden corpus)"
  cargo run --release -p cafemio-bench --bin srclint
  cargo run --release -p cafemio-bench --bin decklint -- --golden
}

run_large_mesh() {
  echo "== large-mesh smoke (100k-element sparse-CG solve + residual audit)"
  cargo run --release -p cafemio-bench --bin large_mesh_smoke
}

stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
  stages=(build test doc clippy fuzz bench batch audit lint large_mesh)
fi

for stage in "${stages[@]}"; do
  case "$stage" in
    build) run_build ;;
    test) run_test ;;
    doc) run_doc ;;
    clippy) run_clippy ;;
    fuzz) run_fuzz ;;
    bench) run_bench ;;
    batch) run_batch ;;
    audit) run_audit ;;
    lint) run_lint ;;
    large_mesh) run_large_mesh ;;
    *)
      echo "verify: unknown stage '$stage'" >&2
      exit 2
      ;;
  esac
done

echo "verify: all requested gates passed (${stages[*]})"

#!/usr/bin/env bash
# Verification gate, shared by local runs and CI.
#
#   scripts/verify.sh              # every stage
#   scripts/verify.sh build test   # a selection
#
# Every cargo invocation runs --locked so neither local runs nor CI can
# drift from Cargo.lock.
#
# Stages:
#   build   release build of the whole workspace
#   test    workspace test suite (includes the fault-injection suite)
#   doc     rustdoc with warnings denied
#   clippy  clippy on all targets with warnings denied
#   fuzz    fixed-seed fault-injection smoke (panic-free pipeline gate)
#   bench   figures binary + BENCH_pipeline.json structural validation
#   batch   batch engine over the models corpus + BENCH_batch.json validation
#   audit   strict-audit bug sweep over the faulted corpus + BENCH_audit.json
#   lint    srclint source gate + decklint golden-corpus gate + BENCH_lint.json
#   lint-fix  auto-fix engine gate: fix-corpus round-trip + pipeline
#             parity, fixpoint property tests over the fault-mutator
#             corpus, LINTS.md drift check, BENCH_lint.json validation
#   large_mesh  100k-element sparse-CG smoke + BENCH_sparse.json
#   serve   deck service under concurrent load + BENCH_serve.json
#   cache   edit-replay stage-cache bench (warm ≡ cold) + BENCH_cache.json
#
# Every bench-producing stage finishes by running the consolidated
# bench_validate gate on its artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

validate_artifact() {
  cargo run --locked --release -p cafemio-bench --bin bench_validate -- "$1"
}

run_build() {
  echo "== build (release)"
  cargo build --locked --release --workspace
}

run_test() {
  echo "== tests"
  cargo test --locked -q --workspace
}

run_doc() {
  echo "== rustdoc (warnings are errors)"
  RUSTDOCFLAGS="-D warnings" cargo doc --locked --no-deps --workspace
}

run_clippy() {
  echo "== clippy (warnings are errors)"
  cargo clippy --locked --workspace --all-targets -- -D warnings
}

run_fuzz() {
  echo "== fuzz smoke (fixed-seed fault injection)"
  cargo run --locked --release -p cafemio-bench --bin fuzz_smoke
}

run_bench() {
  echo "== bench smoke (stage timings artifact)"
  # Regenerate only the timing profile (the filter matches no figure id).
  cargo run --locked --release -p cafemio-bench --bin figures -- NONE_SELECTED
  validate_artifact BENCH_pipeline.json
}

run_batch() {
  echo "== batch smoke (concurrent batch engine + throughput artifact)"
  cargo run --locked --release -p cafemio-bench --bin batch_bench
  validate_artifact BENCH_batch.json
}

run_audit() {
  echo "== audit sweep (strict per-stage invariants over the faulted corpus)"
  cargo run --locked --release -p cafemio-bench --bin audit_sweep
  validate_artifact BENCH_audit.json
}

run_lint() {
  echo "== static analysis (repo source gate + deck lint golden corpus)"
  cargo run --locked --release -p cafemio-bench --bin srclint
  cargo run --locked --release -p cafemio-bench --bin decklint -- --golden
  validate_artifact BENCH_lint.json
}

run_lint_fix() {
  echo "== lint-fix (auto-fix round-trip + parity gate + doc drift)"
  # The golden gate replays every before/after fix pair (idempotence +
  # mesh parity) and writes the fix counters into BENCH_lint.json.
  cargo run --locked --release -p cafemio-bench --bin decklint -- --golden
  # Fixpoint properties over the fault-mutator corpus.
  cargo test --locked -q --test lint_fix
  # The committed lint catalog must match the registry.
  cargo run --locked --release -p cafemio-bench --bin decklint -- --doc-check
  validate_artifact BENCH_lint.json
}

run_large_mesh() {
  echo "== large-mesh smoke (100k-element sparse-CG solve + residual audit)"
  cargo run --locked --release -p cafemio-bench --bin large_mesh_smoke
  validate_artifact BENCH_sparse.json
}

run_serve() {
  echo "== serve smoke (deck service under concurrent load + graceful drain)"
  cargo run --locked --release -p cafemio-bench --bin load_gen -- --connections 8
  validate_artifact BENCH_serve.json
}

run_cache() {
  echo "== cache replay (warm-vs-cold edit replay over the catalog)"
  cargo run --locked --release -p cafemio-bench --bin cache_replay
  validate_artifact BENCH_cache.json
}

stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
  stages=(build test doc clippy fuzz bench batch audit lint lint-fix large_mesh serve cache)
fi

for stage in "${stages[@]}"; do
  case "$stage" in
    build) run_build ;;
    test) run_test ;;
    doc) run_doc ;;
    clippy) run_clippy ;;
    fuzz) run_fuzz ;;
    bench) run_bench ;;
    batch) run_batch ;;
    audit) run_audit ;;
    lint) run_lint ;;
    lint-fix|lint_fix) run_lint_fix ;;
    large_mesh) run_large_mesh ;;
    serve) run_serve ;;
    cache) run_cache ;;
    *)
      echo "verify: unknown stage '$stage'" >&2
      exit 2
      ;;
  esac
done

echo "verify: all requested gates passed (${stages[*]})"

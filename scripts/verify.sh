#!/usr/bin/env bash
# Full verification gate: build, tests, docs (warnings denied), clippy
# (warnings denied). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release)"
cargo build --release --workspace

echo "== tests"
cargo test -q --workspace

echo "== rustdoc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: all gates passed"

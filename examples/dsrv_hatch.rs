//! The Figure 9 workload: the DSRV hatch — the shape the paper uses to
//! show how little data a complex boundary needs ("100 boundary nodes
//! needed coordinates of only 24 nodes and the radii of eleven circular
//! arcs"), and the target of the element-reforming pass.
//!
//! ```sh
//! cargo run --example dsrv_hatch
//! ```

use std::error::Error;
use std::fs;

use cafemio::idlz::listing;
use cafemio::models::hatch;
use cafemio::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    let spec = hatch::dsrv_spec();
    let result = Idealization::run(&spec)?;

    // The boundary-economy claim of Figure 9.
    let econ = hatch::boundary_economy(&spec, &result.mesh);
    println!(
        "boundary economy: {} boundary nodes located from {} coordinate pairs + {} arc radii",
        econ.boundary_nodes, econ.coordinates_supplied, econ.radii_supplied
    );
    println!(
        "  ({:.1} boundary nodes per supplied coordinate; the paper's Figure 9 ratio is 4.2)",
        econ.boundary_nodes as f64 / econ.coordinates_supplied as f64
    );

    // The printed listing (the analyst's permanent record).
    fs::create_dir_all("target")?;
    let text = listing(&spec, &result);
    fs::write("target/dsrv_hatch_listing.txt", &text)?;
    println!(
        "wrote target/dsrv_hatch_listing.txt ({} lines)",
        text.lines().count()
    );

    // Idealization plots, before and after shaping.
    for (frame, stem) in result.frames.iter().zip(["initial", "final"]) {
        let path = format!("target/dsrv_hatch_{stem}.svg");
        fs::write(&path, render_svg(frame))?;
        println!("wrote {path}");
    }

    // Pressure analysis + effective stress contours.
    let model = hatch::dsrv_pressure_model(&result.mesh);
    let plot = PipelineBuilder::new()
        .component(StressComponent::Effective)
        .model(model)
        .solve()?
        .recover()?
        .contour()?
        .remove(0);
    let (lo, hi) = plot.field.min_max().expect("non-empty field");
    println!(
        "effective stress under {} psi: {lo:.0} .. {hi:.0} psi, interval {}",
        hatch::DSRV_PRESSURE,
        plot.contours.interval
    );
    fs::write(
        "target/dsrv_hatch_effective.svg",
        render_svg(&plot.contours.frame),
    )?;
    print!("{}", AsciiCanvas::render(&plot.contours.frame, 90, 30));
    Ok(())
}

//! Quickstart: idealize a plate with IDLZ, analyze it, and contour the
//! effective stress with OSPL.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Writes `target/quickstart.svg` and prints a line-printer preview of
//! the contour plot — the same proofing view a 1970 analyst used while
//! the SC-4020 film was in the queue.

use std::error::Error;
use std::fs;

use cafemio::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    // ---- 1. Idealization (program IDLZ) -------------------------------
    // A 4 in × 2 in plate, 8 × 4 subdivision cells.
    let mut spec = IdealizationSpec::new("QUICKSTART PLATE");
    spec.add_subdivision(Subdivision::rectangular(1, (0, 0), (8, 4))?);
    spec.add_shape_line(
        1,
        ShapeLine::straight((0, 0), (8, 0), Point::new(0.0, 0.0), Point::new(4.0, 0.0)),
    );
    spec.add_shape_line(
        1,
        ShapeLine::straight((0, 4), (8, 4), Point::new(0.0, 2.0), Point::new(4.0, 2.0)),
    );
    let idealized = Idealization::run(&spec)?;
    println!(
        "IDLZ: {} nodes, {} elements, bandwidth {} -> {}",
        idealized.mesh.node_count(),
        idealized.mesh.element_count(),
        idealized.stats.bandwidth_before,
        idealized.stats.bandwidth_after,
    );
    println!(
        "      input data = {} values, punched output = {} values ({:.1} %)",
        idealized.stats.input_values,
        idealized.stats.output_values,
        100.0 * idealized.stats.input_fraction(),
    );

    // ---- 2. Analysis (the substrate the paper's Reference 1 provided) -
    let mut model = FemModel::new(
        idealized.mesh.clone(),
        AnalysisKind::PlaneStress { thickness: 0.25 },
        Material::isotropic(30.0e6, 0.3),
    );
    for (id, node) in idealized.mesh.nodes() {
        if node.position.x < 1e-9 {
            model.fix_x(id);
            if node.position.y < 1e-9 {
                model.fix_y(id);
            }
        }
        // A shear load along the right edge gives a field worth looking at.
        if (node.position.x - 4.0).abs() < 1e-9 {
            model.add_force(id, 120.0, -60.0);
        }
    }

    // ---- 3. Output plotting (program OSPL) ----------------------------
    let plot = PipelineBuilder::new()
        .component(StressComponent::Effective)
        .model(model)
        .solve()?
        .recover()?
        .contour()?
        .remove(0);
    println!(
        "OSPL: interval {} (automatic), {} contours, {} segments",
        plot.contours.interval,
        plot.contours.drawn_contours(),
        plot.contours.segment_count(),
    );

    fs::create_dir_all("target")?;
    fs::write("target/quickstart.svg", render_svg(&plot.contours.frame))?;
    println!("wrote target/quickstart.svg\n");
    print!("{}", AsciiCanvas::render(&plot.contours.frame, 100, 34));
    Ok(())
}

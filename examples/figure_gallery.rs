//! Regenerates the idealization plots of every structure in the paper's
//! figures, with printed listings — the quickest way to eyeball the whole
//! model catalog.
//!
//! ```sh
//! cargo run --example figure_gallery
//! ```

use std::error::Error;
use std::fs;

use cafemio::idlz::listing;
use cafemio::models::catalog;
use cafemio::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    let out_dir = "target/gallery";
    fs::create_dir_all(out_dir)?;
    println!(
        "{:<22} {:>6} {:>9} {:>10} {:>10}  figures",
        "model", "nodes", "elements", "bandwidth", "input %"
    );
    for entry in catalog() {
        let spec = (entry.spec)();
        let result = Idealization::run(&spec)?;
        println!(
            "{:<22} {:>6} {:>9} {:>10} {:>9.1}%  {}",
            entry.name,
            result.mesh.node_count(),
            result.mesh.element_count(),
            result.stats.bandwidth_after,
            100.0 * result.stats.input_fraction(),
            entry.figures,
        );
        for (frame, stem) in result.frames.iter().zip(["initial", "final"]) {
            fs::write(
                format!("{out_dir}/{}_{stem}.svg", entry.name),
                render_svg(frame),
            )?;
        }
        fs::write(
            format!("{out_dir}/{}_listing.txt", entry.name),
            listing(&spec, &result),
        )?;
    }
    println!("\nplots and listings written to {out_dir}/");
    Ok(())
}

//! The full 1970 card-deck data path, end to end:
//!
//! 1. keypunch an Appendix-B input deck for IDLZ,
//! 2. run IDLZ; punch nodal and element cards in the user's FORTRAN
//!    format (the Type-7 cards),
//! 3. run the analysis on the punched mesh,
//! 4. assemble an Appendix-C deck for OSPL and plot the isograms.
//!
//! ```sh
//! cargo run --example card_decks
//! ```

use std::error::Error;

use cafemio::cards::Deck;
use cafemio::idlz::deck::{parse_deck, punch_element_cards, punch_nodal_cards};
use cafemio::ospl::deck::{parse_ospl_deck, write_ospl_deck};
use cafemio::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    // ---- 1. The analyst's input deck (Appendix B) ----------------------
    let input = concat!(
        "    1\n",
        "CANTILEVER STRIP FROM CARDS\n",
        "    1    1    1    1\n",
        "    1    0    0   10    2         0    0\n",
        "    1    2\n",
        "    0    0   10    0  0.0000  0.0000  5.0000  0.0000  0.0000\n",
        "    0    2   10    2  0.0000  1.0000  5.0000  1.0000  0.0000\n",
        "(2F9.5, 51X, I3, 5X, I3)\n",
        "(3I5, 62X, I3)\n",
    );
    let deck = Deck::from_text(input)?;
    println!("input deck: {} cards", deck.len());

    // ---- 2. IDLZ --------------------------------------------------------
    let specs = parse_deck(&deck)?;
    let spec = &specs[0];
    let result = Idealization::run(spec)?;
    let nodal_cards = punch_nodal_cards(&result.mesh, spec.nodal_format())?;
    let element_cards = punch_element_cards(&result.mesh, spec.element_format())?;
    println!(
        "IDLZ punched {} nodal + {} element cards; a sample nodal card:",
        nodal_cards.len(),
        element_cards.len()
    );
    println!("  |{}|", nodal_cards.card(4).text());

    // ---- 3. Analysis ----------------------------------------------------
    let mut model = FemModel::new(
        result.mesh.clone(),
        AnalysisKind::PlaneStress { thickness: 0.5 },
        Material::isotropic(10.0e6, 0.33),
    );
    for (id, node) in result.mesh.nodes() {
        if node.position.x < 1e-9 {
            model.fix_x(id);
            model.fix_y(id); // clamped end
        }
        if (node.position.x - 5.0).abs() < 1e-9 {
            model.add_force(id, 0.0, -40.0); // tip shear
        }
    }
    let solution = model.solve()?;
    let stresses = StressField::compute(&model, &solution)?;
    let field = stresses.meridional();

    // ---- 4. OSPL via its own card deck (Appendix C) ---------------------
    let ospl_deck = write_ospl_deck(
        &result.mesh,
        &field,
        &ContourOptions::new(),
        ("CANTILEVER BENDING STRESS", "FROM PUNCHED CARDS"),
    )?;
    println!("OSPL input deck: {} cards", ospl_deck.len());
    let ospl_input = parse_ospl_deck(&ospl_deck)?;
    let plot = Ospl::run(&ospl_input.mesh, &ospl_input.field, &ospl_input.options)?;
    println!(
        "OSPL: interval {}, {} contours; bending stress is antisymmetric:",
        plot.interval,
        plot.drawn_contours()
    );
    let (lo, hi) = field.min_max().expect("non-empty field");
    println!("  sigma-y range {lo:.0} .. {hi:.0} psi");
    print!("{}", AsciiCanvas::render(&plot.frame, 100, 30));
    Ok(())
}

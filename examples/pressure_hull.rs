//! The Figure 15/16 workload: GRP orthotropic pressure-hull cylinders
//! with titanium end closures, stiffened vs. unstiffened, under external
//! submergence pressure — idealized with IDLZ, solved with the
//! axisymmetric substrate, and contoured with OSPL.
//!
//! ```sh
//! cargo run --example pressure_hull
//! ```

use std::error::Error;
use std::fs;

use cafemio::models::cylinder;
use cafemio::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    fs::create_dir_all("target")?;
    for (label, spec) in [
        ("unstiffened", cylinder::unstiffened_spec()),
        ("stiffened", cylinder::stiffened_spec()),
    ] {
        let idealized = Idealization::run(&spec)?;
        let model = cylinder::pressure_model(&idealized.mesh);
        println!(
            "{label}: {} nodes, {} elements, dof bandwidth {}",
            idealized.mesh.node_count(),
            idealized.mesh.element_count(),
            model.dof_bandwidth(),
        );
        let solution = model.solve()?;
        println!(
            "  max displacement {:.4} in under {} psi",
            solution.max_displacement(),
            cylinder::PRESSURE
        );
        let stresses = StressField::compute(&model, &solution)?;
        for component in [
            StressComponent::Circumferential,
            StressComponent::Shear,
            StressComponent::Effective,
        ] {
            let field = component.field(&stresses);
            let (lo, hi) = field.min_max().expect("non-empty field");
            let plot = Ospl::run(model.mesh(), &field, &ContourOptions::new())?;
            println!(
                "  {component}: {lo:.0} .. {hi:.0} psi, interval {}, {} contours",
                plot.interval,
                plot.drawn_contours()
            );
            let path = format!(
                "target/hull_{label}_{}.svg",
                component.to_string().to_lowercase().replace(' ', "_")
            );
            fs::write(&path, render_svg(&plot.frame))?;
            println!("    wrote {path}");
        }
    }
    println!(
        "\nThe stiffened hull deflects less at mid-bay; compare the two\n\
         circumferential-stress SVGs the way Figure 15c and 16d compare."
    );
    Ok(())
}

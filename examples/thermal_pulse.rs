//! The Figure 14 workload: a T-beam exposed to a thermal radiation
//! pulse, with the temperature distribution contoured at t = 2 s and
//! t = 3 s.
//!
//! ```sh
//! cargo run --example thermal_pulse
//! ```

use std::error::Error;
use std::fs;

use cafemio::models::tbeam;
use cafemio::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    let idealized = Idealization::run(&tbeam::spec())?;
    println!(
        "T-beam: {} nodes, {} elements; pulse {} BTU/(s in^2) for {} s",
        idealized.mesh.node_count(),
        idealized.mesh.element_count(),
        tbeam::PULSE_FLUX,
        tbeam::PULSE_DURATION,
    );
    let history = tbeam::run_pulse(&idealized.mesh, 3.0, 300)?;
    fs::create_dir_all("target")?;
    for t in [2.0, 3.0] {
        let field = history.at_time(t);
        let (lo, hi) = field.min_max().expect("non-empty field");
        let plot = Ospl::run(&idealized.mesh, field, &ContourOptions::new())?;
        println!(
            "t = {t} s: {lo:.0} .. {hi:.0} degF, contour interval {}, {} isograms",
            plot.interval,
            plot.drawn_contours()
        );
        let path = format!("target/tbeam_t{t}.svg");
        fs::write(&path, render_svg(&plot.frame))?;
        println!("  wrote {path}");
        print!("{}", AsciiCanvas::render(&plot.frame, 90, 26));
    }
    println!(
        "As in Figure 14, the t = 3 s plot is flatter than t = 2 s: the\n\
         pulse ended at t = 1 s and the flange heat soaks into the web."
    );

    // The engineering consumer of Figure 14's field: thermal stress.
    let model = tbeam::thermal_stress_model(&idealized.mesh, history.at_time(2.0));
    let plot = PipelineBuilder::new()
        .component(StressComponent::Effective)
        .model(model)
        .solve()?
        .recover()?
        .contour()?
        .remove(0);
    let (lo, hi) = plot.field.min_max().expect("non-empty field");
    println!(
        "\nthermal stress at t = 2 s: effective {lo:.0} .. {hi:.0} psi \
         ({} isograms, interval {})",
        plot.contours.drawn_contours(),
        plot.contours.interval
    );
    fs::write("target/tbeam_thermal_stress.svg", render_svg(&plot.contours.frame))?;
    println!("  wrote target/tbeam_thermal_stress.svg");
    Ok(())
}

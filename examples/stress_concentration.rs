//! The Kirsch problem: a plate with a circular hole under remote tension.
//! One subdivision wraps from the hole arc to the square outer corner —
//! the pattern behind every "crowd elements where it matters" idealization
//! in the paper.
//!
//! ```sh
//! cargo run --example stress_concentration
//! ```

use std::error::Error;
use std::fs;

use cafemio::models::plate_with_hole as hole;
use cafemio::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    let idealized = Idealization::run(&hole::spec())?;
    println!(
        "quarter plate: {} nodes, {} elements; hole r = {}, width = {}",
        idealized.mesh.node_count(),
        idealized.mesh.element_count(),
        hole::HOLE_RADIUS,
        hole::WIDTH,
    );
    let model = hole::tension_model(&idealized.mesh);
    let solution = model.solve()?;
    let stresses = StressField::compute(&model, &solution)?;
    // The concentration factor at the hole crown.
    let crown = idealized
        .mesh
        .nodes()
        .find(|(_, n)| n.position.x.abs() < 1e-9 && (n.position.y - hole::HOLE_RADIUS).abs() < 1e-9)
        .map(|(id, _)| id)
        .expect("crown node");
    println!(
        "Kt at the hole crown = {:.2}  (Kirsch infinite-plate value: 3.00)",
        stresses.node(crown).radial / hole::TENSION
    );
    let plot = PipelineBuilder::new()
        .component(StressComponent::Effective)
        .model(model)
        .solve()?
        .recover()?
        .contour()?
        .remove(0);
    fs::create_dir_all("target")?;
    fs::write(
        "target/stress_concentration.svg",
        render_svg(&plot.contours.frame),
    )?;
    println!(
        "contours: interval {}, {} isograms -> target/stress_concentration.svg\n",
        plot.contours.interval,
        plot.contours.drawn_contours()
    );
    print!("{}", AsciiCanvas::render(&plot.contours.frame, 80, 34));
    Ok(())
}

//! Root package of the `cafemio` workspace.
//!
//! This package carries the workspace-wide integration tests (`tests/`) and
//! the runnable examples (`examples/`). The library itself re-exports the
//! umbrella crate so examples can write `use cafemio_repro as cafemio;` if
//! they wish, though they normally import `cafemio` directly.

pub use cafemio::*;
